"""Ablation — randomized robots beat the deterministic bound.

The paper's Theorem 1.1 is a *deterministic* characterization; its
related work (Yamauchi & Yamashita, DISC 2014) notes randomized robots
can form any pattern.  This bench contrasts the two on a
deterministically-unsolvable instance (regular octagon -> cube), under
both random and worst-case symmetric local frames.
"""

import numpy as np

from conftest import print_table

from repro.core.configuration import Configuration
from repro.core.formability import is_formable
from repro.core.symmetricity import symmetricity
from repro.patterns.library import named_pattern
from repro.robots.adversary import random_frames, symmetric_frames
from repro.robots.algorithms.randomized import (
    make_randomized_formation_algorithm,
)
from repro.robots.scheduler import FsyncScheduler


def run_case():
    octagon = named_pattern("octagon")
    cube = named_pattern("cube")
    config = Configuration(octagon)
    rho = symmetricity(config)
    witness = rho.witness(rho.maximal[0])
    rows = [{
        "algorithm": "deterministic (Theorem 1.1)",
        "frames": "any",
        "octagon -> cube": "impossible "
        f"(predicted formable = {is_formable(config, Configuration(cube))})",
    }]
    for label, frames in [
            ("random", random_frames(8, np.random.default_rng(0))),
            ("sigma(P)=C8", symmetric_frames(config, witness,
                                             np.random.default_rng(1)))]:
        algorithm = make_randomized_formation_algorithm(
            cube, np.random.default_rng(7))
        scheduler = FsyncScheduler(algorithm, frames, target=cube)
        result = scheduler.run(
            octagon, stop_condition=lambda c: c.is_similar_to(cube),
            max_rounds=40)
        rows.append({
            "algorithm": "randomized jiggle + psi_PF",
            "frames": label,
            "octagon -> cube": f"formed in {result.rounds} rounds"
            if result.reached else "FAILED",
        })
    return rows


def test_randomized_ablation(benchmark):
    rows = benchmark.pedantic(run_case, rounds=1, iterations=1)
    print_table("Randomized vs deterministic", rows)
    assert all("FAILED" not in str(r["octagon -> cube"]) for r in rows)
