"""Experiment RUNNER — the cache hierarchy and the parallel fan-out.

Times the experiment drivers through the zero-copy runner (the rows
are asserted bit-identical for any ``--jobs``; see the equivalence
suites) and the L3 cold-vs-warm cost of the catalog/lattice artifacts.
Each benchmark records the post-run cache-hierarchy counters into
``extra_info`` so the emitted ``BENCH_*.json`` carries hit/miss
evidence next to the timings.
"""

import tempfile
from pathlib import Path

import pytest

from repro import perf
from repro.api import ExperimentSpec, run_experiment
from repro.groups.catalog import icosahedral_group
from repro.groups.subgroups import enumerate_concrete_subgroups
from repro.perf import disk
from repro.perf.stats import hierarchy_stats


def _rows(name: str, **spec_kwargs):
    return run_experiment(name, ExperimentSpec(**spec_kwargs)).rows


def _snapshot(benchmark) -> None:
    stats = hierarchy_stats()
    benchmark.extra_info["cache_stats"] = {
        level: {k: v for k, v in counters.items()
                if isinstance(v, (int, float))}
        for level, counters in stats.items()
    }


@pytest.fixture()
def isolated_l3(tmp_path):
    disk.configure(root=tmp_path / "l3")
    yield
    disk.configure()


def test_lemma7_runner(benchmark, jobs, isolated_l3):
    def setup():
        perf.clear_caches()
        return ("lemma7",), {"trials": 6, "seed": 0, "jobs": jobs}

    rows = benchmark.pedantic(_rows, setup=setup, rounds=3,
                              iterations=1)
    assert all(row["all_in_rho"] for row in rows)
    _snapshot(benchmark)


def test_theorem11_runner(benchmark, jobs, isolated_l3):
    def setup():
        perf.clear_caches()
        return ("theorem11",), {"seed": 0, "jobs": jobs}

    rows = benchmark.pedantic(_rows, setup=setup, rounds=3,
                              iterations=1)
    assert all(row.consistent for row in rows)
    _snapshot(benchmark)


def _catalog_and_lattice():
    group = icosahedral_group()
    return enumerate_concrete_subgroups(group)


def test_catalog_lattice_cold(benchmark):
    """Cold start: a fresh L3 root every round — full group closure
    plus the full subgroup enumeration."""
    roots = []

    def setup():
        perf.clear_caches()
        root = Path(tempfile.mkdtemp(prefix="repro-bench-l3-"))
        roots.append(root)
        disk.configure(root=root)
        return (), {}

    try:
        lattice = benchmark.pedantic(_catalog_and_lattice, setup=setup,
                                     rounds=3, iterations=1)
    finally:
        disk.configure()
    assert len(lattice) == 59
    _snapshot(benchmark)


def test_catalog_lattice_warm(benchmark, tmp_path):
    """Warm start: same L3 root, fresh L1 — the catalog stack and the
    pickled lattice are served from disk."""
    disk.configure(root=tmp_path / "l3-warm")
    try:
        _catalog_and_lattice()  # populate

        def setup():
            perf.clear_caches()
            return (), {}

        lattice = benchmark.pedantic(_catalog_and_lattice, setup=setup,
                                     rounds=5, iterations=1,
                                     warmup_rounds=1)
    finally:
        disk.configure()
    assert len(lattice) == 59
    _snapshot(benchmark)
