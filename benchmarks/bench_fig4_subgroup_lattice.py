"""Experiment F4 — regenerate Figure 4 (subgroup lattice).

Paper: the Hasse diagram of the subgroups of the polyhedral groups.
Measured: cover edges of the ⪯ relation restricted to those types.
"""

from conftest import print_table

from repro.analysis.lattice import (
    PAPER_FIGURE4_EDGES,
    polyhedral_lattice_edges,
)


def test_figure4(benchmark):
    edges = benchmark.pedantic(polyhedral_lattice_edges,
                               rounds=3, iterations=1)
    rows = [{"edge": f"{a} -> {b}",
             "in_paper": (a, b) in PAPER_FIGURE4_EDGES}
            for a, b in sorted(edges)]
    print_table("Figure 4 — subgroup lattice cover edges", rows)
    assert edges == PAPER_FIGURE4_EDGES
