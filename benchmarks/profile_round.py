#!/usr/bin/env python
"""Profile one swarm-scale Look-Compute-Move round (``make profile``).

Runs a single ``FsyncScheduler.step`` under cProfile — by default the
batched engine at n=1024 with the same mean-field contraction the
swarm benchmarks use — and prints the top functions by cumulative
time.  One untimed warmup step keeps allocator and BLAS first-touch
out of the profile, so the output is the steady-state round.

    PYTHONPATH=src python benchmarks/profile_round.py --n 1024 --top 20
    PYTHONPATH=src python benchmarks/profile_round.py --per-robot

Reading it: on the batched engine the Look ``matmul`` and the
``compute_batch`` array kernels should dominate, with no
``Observation`` construction in sight; ``--per-robot`` profiles the
reference loop for comparison, where the per-robot Python calls are
the expected cost.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats

import numpy as np


class _SwarmContract:
    """The swarm benchmarks' mean-field contraction, both engines."""

    def __call__(self, observation):
        views = np.asarray(observation.points)
        me = views[observation.self_index]
        return me + 0.25 * (views.mean(axis=0) - me)

    def compute_batch(self, batch):
        own = batch.own_rows()
        return own + 0.25 * (batch.local.mean(axis=1) - own)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=1024,
                        help="swarm size (default 1024)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows of profile output (default 20)")
    parser.add_argument(
        "--per-robot", action="store_true",
        help="profile the per-robot reference engine instead of the "
             "batched one")
    args = parser.parse_args(argv)

    from repro.robots.adversary import identity_frames
    from repro.robots.scheduler import FsyncScheduler

    rng = np.random.default_rng(args.n)
    points = [rng.normal(size=3) for _ in range(args.n)]
    scheduler = FsyncScheduler(_SwarmContract(), identity_frames(args.n),
                               batched=not args.per_robot)
    scheduler.step(points)  # warmup: first-touch allocation, BLAS init

    engine = "per-robot reference" if args.per_robot else "batched"
    print(f"one {engine} round at n={args.n}, top {args.top} by "
          f"cumulative time:")
    profiler = cProfile.Profile()
    profiler.enable()
    scheduler.step(points)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(args.top)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
