#!/usr/bin/env python
"""Run the scaling benchmarks and emit a dated ``BENCH_<date>.json``.

Thin driver around pytest-benchmark::

    PYTHONPATH=src python benchmarks/run_benchmarks.py
    PYTHONPATH=src python benchmarks/run_benchmarks.py \
        --baseline BENCH_2026-08-01.json --output BENCH_2026-08-06.json

The emitted file condenses the pytest-benchmark JSON into one record
per benchmark (mean/stddev/rounds, in milliseconds) so successive
files diff cleanly; ``--baseline`` embeds a previous file's numbers
next to the fresh ones with the speedup factor.  See
``docs/PERFORMANCE.md`` for how to read the output.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import shlex
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_pytest_benchmarks(selector: str) -> dict:
    """Run the benchmark suite, returning the pytest-benchmark JSON.

    ``selector`` is split shell-style, so compound selectors like
    ``"benchmarks/bench_experiment_runner.py -k lemma7 --jobs 4"``
    pass through as separate pytest arguments.
    """
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        raw_path = Path(handle.name)
    command = [
        sys.executable, "-m", "pytest", *shlex.split(selector),
        "--benchmark-only", f"--benchmark-json={raw_path}",
        "-q", "-p", "no:cacheprovider",
    ]
    result = subprocess.run(command, cwd=REPO_ROOT)
    if result.returncode != 0:
        raise SystemExit(f"benchmark run failed (exit {result.returncode})")
    data = json.loads(raw_path.read_text())
    raw_path.unlink(missing_ok=True)
    return data


def condense(raw: dict) -> list[dict]:
    """One compact record per benchmark, times in milliseconds."""
    records = []
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        record = {
            "name": bench["name"],
            "group": bench.get("group"),
            "mean_ms": round(stats["mean"] * 1000.0, 4),
            "stddev_ms": round(stats["stddev"] * 1000.0, 4),
            "min_ms": round(stats["min"] * 1000.0, 4),
            "rounds": stats["rounds"],
        }
        extra = bench.get("extra_info") or {}
        if extra:
            # Carry benchmark-recorded evidence (e.g. the cache
            # hierarchy's hit/miss counters) into the condensed file.
            record["extra_info"] = extra
        records.append(record)
    records.sort(key=lambda r: r["name"])
    return records


def attach_baseline(records: list[dict], baseline_path: Path) -> None:
    """Embed baseline means and speedups into ``records`` in place."""
    baseline = json.loads(baseline_path.read_text())
    baseline_records = baseline.get("benchmarks", baseline)
    if isinstance(baseline_records, dict):
        baseline_records = baseline_records.get("benchmarks", [])
    by_name = {}
    for entry in baseline_records:
        mean = entry.get("mean_ms")
        if mean is None and "stats" in entry:  # raw pytest-benchmark file
            mean = entry["stats"]["mean"] * 1000.0
        if mean is not None:
            by_name[entry["name"]] = float(mean)
    for record in records:
        base = by_name.get(record["name"])
        if base is None:
            continue
        record["baseline_mean_ms"] = round(base, 4)
        if record["mean_ms"] > 0:
            record["speedup"] = round(base / record["mean_ms"], 2)


def provenance() -> dict | None:
    """Package and artifact-schema versions, if repro is importable.

    The driver shells out to pytest for the measurements, so its own
    process may run without ``src`` on the path — degrade to ``None``
    rather than fail the benchmark run.
    """
    try:
        from repro import __version__
        from repro.obs import (
            MANIFEST_SCHEMA_VERSION,
            METRICS_SCHEMA_VERSION,
            TRACE_SCHEMA_VERSION,
        )
    except ImportError:
        return None
    return {
        "package": {"name": "repro", "version": __version__},
        "schemas": {
            "trace": TRACE_SCHEMA_VERSION,
            "metrics": METRICS_SCHEMA_VERSION,
            "manifest": MANIFEST_SCHEMA_VERSION,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--select", default="benchmarks/bench_scaling.py",
        help="pytest selector for the benchmarks to run")
    parser.add_argument(
        "--output", default=None,
        help="output path (default: BENCH_<today>.json in the repo root)")
    parser.add_argument(
        "--date", default=os.environ.get("REPRO_BENCH_DATE"),
        help="date stamp for the artifact (default: REPRO_BENCH_DATE or "
             "today); pin it to make reruns byte-identical")
    parser.add_argument(
        "--baseline", default=None,
        help="previous BENCH_*.json (or raw pytest-benchmark JSON) to "
             "embed as before-numbers with speedup factors")
    args = parser.parse_args(argv)

    # Wall-clock only stamps the artifact; pass --date (or set
    # REPRO_BENCH_DATE) for byte-identical reruns.
    date = args.date or datetime.date.today().isoformat()  # reprolint: disable=REP005 -- artifact timestamp, overridable via --date/REPRO_BENCH_DATE
    output = Path(args.output) if args.output else \
        REPO_ROOT / f"BENCH_{date}.json"

    raw = run_pytest_benchmarks(args.select)
    records = condense(raw)
    if args.baseline:
        attach_baseline(records, Path(args.baseline))

    payload = {
        "date": date,
        "selector": args.select,
        "machine": raw.get("machine_info", {}).get("machine"),
        "python": raw.get("machine_info", {}).get("python_version"),
        "benchmarks": records,
    }
    info = provenance()
    if info is not None:
        payload["provenance"] = info
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    for record in records:
        line = f"  {record['name']:45s} {record['mean_ms']:10.2f} ms"
        if "speedup" in record:
            line += (f"  (was {record['baseline_mean_ms']:.2f} ms, "
                     f"{record['speedup']}x)")
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
