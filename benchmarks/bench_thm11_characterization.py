"""Experiment T11 — Theorem 1.1: the formability characterization.

Paper: F is formable from P iff varrho(P) ⊆ varrho(F).  Measured,
both directions: solvable instances are formed under random and
worst-case symmetric frames; unsolvable instances keep the blocking
sigma(P) symmetry forever (Lemma 2) under the adversarial frames.
"""

from conftest import print_table

from repro.api import ExperimentSpec, run_experiment


def test_theorem11(benchmark, jobs):
    rows = benchmark.pedantic(
        lambda: run_experiment("theorem11", ExperimentSpec(
            jobs=jobs)).rows,
        rounds=1, iterations=1)
    print_table("Theorem 1.1 — characterization sweep", [
        {"initial": r.initial, "target": r.target,
         "predicted": r.predicted_formable,
         "formed(random)": r.formed_random,
         "formed(worst)": r.formed_worst_case,
         "lower_bound": r.lower_bound_held,
         "consistent": r.consistent}
        for r in rows])
    assert all(r.consistent for r in rows)
