"""Experiment 2D — the Suzuki–Yamashita baseline the paper generalizes.

Paper (prior work restated in Section 1): 2D FSYNC robots form F from
P iff rho(P) divides rho(F).  Measured with the planar simulator.
"""

from conftest import print_table

from repro.api import run_experiment


def test_2d_baseline(benchmark):
    rows = benchmark.pedantic(
        lambda: run_experiment("baseline_2d").rows,
        rounds=1, iterations=1)
    print_table("2D baseline — divisibility characterization", rows)
    for row in rows:
        if row["predicted"]:
            assert row["formed"], row
        assert row["predicted"] == (row["rho_F"] % row["rho_P"] == 0)
