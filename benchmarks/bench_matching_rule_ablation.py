"""Ablation — the screw rule vs naive greedy conflict resolution.

Lemma 14's point: nearest-target ties form cycles around a rotation
axis; a naive 'first nearest wins' assignment collapses symmetric
robots onto the same target (not a perfect matching), while the
paper's screw rule resolves every cycle.  Reproduced on the Figure 31
conflict instance.
"""

import numpy as np

from conftest import print_table

from repro.geometry.tolerance import DEFAULT_TOL
from repro.core.configuration import Configuration
from repro.geometry.rotations import rotation_about_axis
from repro.groups.catalog import octahedral_group
from repro.robots.algorithms.matching import match_configuration_to_pattern


def conflict_instance():
    group = octahedral_group()
    diagonal = np.array([1.0, 1.0, 1.0]) / np.sqrt(3)
    seed_p = diagonal + 0.12 * np.array([1.0, -1.0, 0.0]) / np.sqrt(2)
    robots = group.orbit(seed_p / np.linalg.norm(seed_p))
    spin = rotation_about_axis(diagonal, np.pi / 3.0)
    targets = group.orbit(spin @ (seed_p / np.linalg.norm(seed_p)))
    return robots, targets


def naive_greedy(config, targets, slack):
    used = [False] * len(targets)
    destinations = []
    balanced = True
    for p in config.points:
        dists = [float(np.linalg.norm(p - f)) for f in targets]
        order = np.argsort(dists)
        nearest = int(order[0])
        if used[nearest]:
            balanced = False
        used[nearest] = True
        destinations.append(targets[nearest])
    return destinations, balanced and all(used)


def run_case():
    robots, targets = conflict_instance()
    config = Configuration(robots)
    slack = DEFAULT_TOL.geometric_slack(1.0)

    # Screw rule (the library's matcher).
    destinations = match_configuration_to_pattern(config, targets)
    remaining = list(map(tuple, np.round(targets, 6)))
    screw_perfect = True
    for d in destinations:
        key = tuple(np.round(d, 6))
        if key in remaining:
            remaining.remove(key)
        else:
            screw_perfect = False
    screw_perfect = screw_perfect and not remaining

    _, greedy_perfect = naive_greedy(config, targets, slack)
    return [
        {"rule": "screw rule (Lemma 14)", "perfect matching": screw_perfect},
        {"rule": "naive greedy", "perfect matching": greedy_perfect},
    ]


def test_matching_rule_ablation(benchmark):
    rows = benchmark.pedantic(run_case, rounds=1, iterations=1)
    print_table("Conflict resolution ablation (Figure 31 instance)", rows)
    assert rows[0]["perfect matching"] is True
    assert rows[1]["perfect matching"] is False
