"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or
validates a theorem/lemma empirically), asserts the paper-vs-measured
match, and prints the rows in the paper's shape.  Run with::

    pytest benchmarks/ --benchmark-only

Timing data comes from pytest-benchmark; the printed tables appear
with ``-s`` (and are also recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", action="store", type=int, default=1,
        help="worker processes for experiment trial fan-out "
             "(results are bit-identical for any value)")


@pytest.fixture
def jobs(request) -> int:
    return request.config.getoption("--jobs")


def print_table(title: str, rows: list[dict]) -> None:
    """Print result rows as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0].keys())
    widths = {k: max(len(str(k)), *(len(str(r.get(k))) for r in rows))
              for k in keys}
    header = " | ".join(str(k).ljust(widths[k]) for k in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(" | ".join(str(row.get(k)).ljust(widths[k]) for k in keys))
