"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or
validates a theorem/lemma empirically), asserts the paper-vs-measured
match, and prints the rows in the paper's shape.  Run with::

    pytest benchmarks/ --benchmark-only

Timing data comes from pytest-benchmark; the printed tables appear
with ``-s`` (and are also recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", action="store", type=int, default=1,
        help="worker processes for experiment trial fan-out "
             "(results are bit-identical for any value)")
    parser.addoption(
        "--backend", action="store", default=None,
        help="array backend for the benchmarked kernels (numpy, numba, "
             "cupy; default: REPRO_BACKEND or numpy; an unavailable "
             "backend falls back to numpy with a warning)")


@pytest.fixture
def jobs(request) -> int:
    return request.config.getoption("--jobs")


@pytest.fixture
def bench_backend(request) -> str:
    """Activate the ``--backend`` selection; returns the active name.

    The name that actually resolved (after any fallback) is what
    benchmarks record in ``extra_info``, so a BENCH artifact can never
    claim accelerator numbers that silently ran on the reference.
    """
    from repro.backend import backend_name, set_backend

    requested = request.config.getoption("--backend")
    if requested is not None:
        set_backend(requested)
    return backend_name()


def print_table(title: str, rows: list[dict]) -> None:
    """Print result rows as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0].keys())
    widths = {k: max(len(str(k)), *(len(str(r.get(k))) for r in rows))
              for k in keys}
    header = " | ".join(str(k).ljust(widths[k]) for k in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(" | ".join(str(row.get(k)).ljust(widths[k]) for k in keys))
