"""Experiment T3 — regenerate Table 3 (symmetricity of U_{G,mu}).

Paper: varrho(U_{G,1} ∪ U_{G,mu}) per row (for the 3D groups the
paper notes varrho(U_{G,mu}) alone is identical).  Measured: the
symmetricity computed by concrete subgroup enumeration; rows compare
downward closures because the paper lists some non-maximal members
(e.g. C3 alongside T).
"""

from conftest import print_table

from repro.analysis.tables import table3_symmetricity


def test_table3(benchmark):
    rows = benchmark.pedantic(table3_symmetricity, rounds=1, iterations=1)
    print_table("Table 3 — symmetricity of U_{G,mu}", rows)
    assert all(row["match"] for row in rows)
