"""Experiment F1 — Figure 1: cube -> regular octagon / square antiprism.

Paper: from a cube (gamma = O) the robots can form a regular octagon
or a square antiprism (both dihedral) because the symmetricity D4 is
shared.  Measured: full psi_PF runs under random local frames.
"""

from conftest import print_table

from repro.api import ExperimentSpec, run_experiment


def test_figure1(benchmark, jobs):
    rows = benchmark.pedantic(
        lambda: run_experiment("figure1", ExperimentSpec(
            trials=3, jobs=jobs)).rows,
        rounds=1, iterations=1)
    print_table("Figure 1 — cube formations", rows)
    for row in rows:
        assert row["formed"] == row["trials"], row
