"""Experiment L7 — Lemma 7: one go-to-center step breaks the 3D group.

Paper: from each of the seven transitive polyhedra, a single
synchronized go-to-center step yields gamma(P') in varrho(P).
Measured: the distribution of gamma(P') over random local frames.
"""

from conftest import print_table

from repro.api import ExperimentSpec, run_experiment


def test_lemma7(benchmark, jobs):
    rows = benchmark.pedantic(
        lambda: run_experiment("lemma7", ExperimentSpec(
            trials=3, jobs=jobs)).rows,
        rounds=1, iterations=1)
    print_table("Lemma 7 — go-to-center outcomes", rows)
    assert all(row["all_in_rho"] for row in rows)
