"""Experiment T41 — Theorem 4.1: psi_SYM terminates in <= 7 steps.

Paper: psi_SYM reaches a terminal configuration P' with
gamma(P') in varrho(P) in at most 7 steps.  Measured: maximum round
counts over polyhedra and composite configurations.
"""

from conftest import print_table

from repro.api import ExperimentSpec, run_experiment


def test_theorem41(benchmark, jobs):
    rows = benchmark.pedantic(
        lambda: run_experiment("theorem41", ExperimentSpec(
            trials=2, jobs=jobs)).rows,
        rounds=1, iterations=1)
    print_table("Theorem 4.1 — psi_SYM", rows)
    assert all(row["bound_7_holds"] for row in rows)
    assert all(row["gamma_in_rho"] for row in rows)
