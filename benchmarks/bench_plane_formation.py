"""Experiment PF — the DISC 2015 plane formation predecessor.

Paper ([21], used as this paper's foundation): plane formation is
unsolvable exactly from the configurations whose symmetricity contains
a 3D rotation group.  Measured on the seven go-to-center polyhedra.
"""

from conftest import print_table

from repro.api import run_experiment

EXPECTED = {
    "tetrahedron": True, "octahedron": True, "cube": True,
    "cuboctahedron": False, "icosahedron": False,
    "dodecahedron": True, "icosidodecahedron": True,
}


def test_plane_formation(benchmark):
    rows = benchmark.pedantic(
        lambda: run_experiment("plane_formation").rows,
        rounds=1, iterations=1)
    print_table("Plane formation (DISC 2015)", rows)
    for row in rows:
        assert row["plane_formable"] == EXPECTED[row["initial"]], row
        if row["plane_formable"]:
            assert row["formed"], row
