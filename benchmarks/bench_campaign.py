"""Campaign THROUGHPUT — warm worker pool vs. per-experiment dispatch.

The campaign runner's claim (docs/PERFORMANCE.md, "Campaign
throughput") is that one pool of long-lived workers amortizes process
startup, import cost and L2 attach across a whole grid of cells,
where the per-experiment path pays them once per ``run_experiment``
call.  These benchmarks measure exactly that trade on the same grid:

* ``test_campaign_warm_pool`` — the grid through ``run_campaign``
  on a 4-worker :class:`repro.campaign.pool.WarmPool`;
* ``test_campaign_per_experiment_dispatch`` — the same cells as a
  loop of ``run_experiment(..., jobs=4)`` calls, each building (and
  tearing down) its own process pool;
* ``test_campaign_smoke_warm`` — a 3-cell inline campaign for the
  smoke set: spec compile, digests, store round-trip.

Every round gets a fresh store directory so resume never
short-circuits the measurement.
"""

import shutil
import tempfile
from pathlib import Path

from repro import perf
from repro.api import ExperimentSpec, run_experiment
from repro.campaign import run_campaign
from repro.campaign.spec import campaign_from_mapping

# The measured grid: enough small-to-medium cells that scheduling and
# startup costs dominate any single cell's compute.
_GRID = {
    "name": "bench",
    "defaults": {"trials": 4},
    "experiments": [
        {"name": "lemma7", "seed": [0, 1, 2, 3]},
        {"name": "baseline_2d", "seed": [0, 1]},
        {"name": "figure1", "seed": [0, 1], "trials": 2},
    ],
}

_SMOKE_GRID = {
    "name": "bench-smoke",
    "defaults": {"trials": 2},
    "experiments": [
        {"name": "lemma7", "seed": [0, 1]},
        {"name": "baseline_2d", "seed": 0},
    ],
}


def _run_campaign_fresh(mapping: dict, jobs: int) -> None:
    campaign = campaign_from_mapping(mapping)
    root = Path(tempfile.mkdtemp(prefix="repro-bench-campaign-"))
    try:
        result = run_campaign(campaign, jobs=jobs,
                              store_path=root / "results.jsonl")
        assert result.cells_executed == len(campaign.cells)
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _run_dispatch(mapping: dict, jobs: int) -> None:
    campaign = campaign_from_mapping(mapping)
    for cell in campaign.cells:
        perf.clear_caches()
        spec = ExperimentSpec(
            trials=cell.spec.trials, seed=cell.spec.seed, jobs=jobs,
            cache=cell.spec.cache, backend=cell.spec.backend)
        run_experiment(cell.experiment, spec)


def test_campaign_smoke_warm(benchmark):
    def setup():
        perf.clear_caches()
        return (_SMOKE_GRID, 1), {}

    benchmark.pedantic(_run_campaign_fresh, setup=setup, rounds=1,
                       iterations=1)


def test_campaign_warm_pool(benchmark):
    def setup():
        perf.clear_caches()
        return (_GRID, 4), {}

    benchmark.pedantic(_run_campaign_fresh, setup=setup, rounds=3,
                       iterations=1)


def test_campaign_per_experiment_dispatch(benchmark):
    def setup():
        perf.clear_caches()
        return (_GRID, 4), {}

    benchmark.pedantic(_run_dispatch, setup=setup, rounds=3,
                       iterations=1)
