#!/usr/bin/env python
"""Query-server THROUGHPUT — cold evaluation vs. warm coalesced serving.

The service's claim (docs/SERVICE.md, "Why a warm server") is that a
long-lived server answering over warm worker caches beats cold
per-query evaluation, and that congruence-keyed coalescing collapses
concurrent duplicate queries onto one computation.  This driver
measures exactly that against a real server subprocess booted through
``python -m repro.cli serve``:

* **cold** — distinct symmetricity/formability queries, each a fresh
  congruence class, answered sequentially (every one pays the kernel);
* **warm** — the same queries re-asked; the worker's L1 caches are hot
  so the server answers from memoized group structure;
* **burst** — one congruence class asked by many concurrent clients;
  the coalescer dispatches once and fans the answer out.

``--smoke`` additionally pins the service contract: responses are
byte-identical to direct :func:`repro.api.evaluate_query` calls, warm
throughput is at least ``--warm-factor`` times cold, the coalesce and
cache counters are visible in ``/v1/metrics``, and SIGTERM drains the
server to a clean exit 0.  ``--output`` records a dated BENCH JSON
next to the pytest-benchmark artifacts.

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --output BENCH_2026-08-08-serve.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import signal
import subprocess
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import (  # noqa: E402
    FormabilityQuery,
    SymmetricityQuery,
    as_points,
    evaluate_query,
)
from repro.obs import clock  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.protocol import canonical_result_text  # noqa: E402

OCTAHEDRON = as_points([[1.0, 0, 0], [0, 1, 0], [0, 0, 1],
                        [-1.0, 0, 0], [0, -1, 0], [0, 0, -1]])


def _distinct_queries() -> list:
    """A spread of congruence classes: every query is a cold kernel."""
    queries = [
        SymmetricityQuery(points="cube"),
        SymmetricityQuery(points="icosahedron"),
        SymmetricityQuery(points="octagon"),
        SymmetricityQuery(points=OCTAHEDRON),
        FormabilityQuery(initial="cube", target="octagon"),
        FormabilityQuery(initial="octagon", target="cube"),
    ]
    # Symmetry-free perturbations: each scale breaks congruence with
    # the others, so none of these coalesce or share cache entries.
    for scale in (2.0, 3.0, 5.0):
        points = tuple(tuple(c * scale for c in row)
                       for row in OCTAHEDRON[:-1]) + \
            ((0.0, 0.0, -scale - 1.0),)
        queries.append(SymmetricityQuery(points=points))
    return queries


class Server:
    """A ``repro serve`` subprocess with a parsed ephemeral address."""

    def __init__(self, workers: int):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--workers", str(workers), "--port", "0"],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        banner = self.process.stdout.readline().strip()
        prefix = "serving on "
        if not banner.startswith(prefix):
            self.process.kill()
            raise SystemExit(f"unexpected server banner: {banner!r}")
        host, _, port = banner[len(prefix):].rpartition(":")
        self.host, self.port = host, int(port)

    def drain(self) -> tuple[int, str]:
        """SIGTERM the server; return (exit code, remaining output)."""
        self.process.send_signal(signal.SIGTERM)
        output = self.process.stdout.read()
        return self.process.wait(timeout=60), output

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10)


def _timed(label: str, func, count: int) -> dict:
    start = clock.monotonic()
    func()
    elapsed = clock.monotonic() - start
    qps = count / elapsed if elapsed > 0 else float("inf")
    record = {
        "name": label,
        "queries": count,
        "mean_ms": round(1000.0 * elapsed / count, 4),
        "qps": round(qps, 2),
    }
    print(f"  {label}: {count} queries in {elapsed:.3f}s "
          f"({record['qps']} q/s)")
    return record


def measure(server: Server, *, burst: int, repeats: int) -> dict:
    queries = _distinct_queries()
    client = ServeClient(server.host, server.port, timeout=300.0)
    results = {}

    # Cold: every congruence class pays its kernel exactly once.
    texts = []

    def cold():
        for query in queries:
            texts.append(canonical_result_text(client.query(query)))

    results["cold"] = _timed("serve_cold_distinct", cold, len(queries))

    # Warm: identical queries against now-hot worker caches.
    def warm():
        for _ in range(repeats):
            for query in queries:
                client.query(query)

    results["warm"] = _timed("serve_warm_repeat", warm,
                             repeats * len(queries))

    # Burst: concurrent duplicates collapse onto one dispatch.  The
    # class is fresh (not in the cold/warm set) so the one dispatched
    # computation is slow enough for every sibling to pile onto it.
    burst_points = tuple(tuple(c * 7.0 for c in row)
                         for row in OCTAHEDRON[:-1]) + ((0.0, 0.0, -8.0),)

    def one(i, out):
        with ServeClient(server.host, server.port,
                         timeout=300.0) as peer:
            out[i] = peer.query(SymmetricityQuery(points=burst_points))

    def fan_out():
        slots = [None] * burst
        threads = [threading.Thread(target=one, args=(i, slots))
                   for i in range(burst)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert all(slots), "burst client dropped a response"

    results["burst"] = _timed(f"serve_burst_{burst}_coalesced",
                              fan_out, burst)
    results["metrics"] = client.metrics()
    results["texts"] = texts
    client.close()
    return results


def smoke_check(results: dict, drained: tuple[int, str],
                warm_factor: float) -> None:
    queries = _distinct_queries()
    expected = [canonical_result_text(evaluate_query(q))
                for q in queries]
    assert results["texts"] == expected, \
        "served responses differ from direct repro.api evaluation"
    print("  smoke: responses byte-identical to repro.api")

    cold_qps = results["cold"]["qps"]
    warm_qps = results["warm"]["qps"]
    assert warm_qps >= warm_factor * cold_qps, (
        f"warm throughput {warm_qps} q/s is under "
        f"{warm_factor}x cold ({cold_qps} q/s)")
    print(f"  smoke: warm/cold = {warm_qps / cold_qps:.1f}x "
          f"(floor {warm_factor}x)")

    counters = results["metrics"]["serve"]["counters"]
    assert counters.get("serve.coalesced", 0) >= 1, \
        "burst produced no serve.coalesced hits"
    assert "serve.dispatched" in counters
    cache = results["metrics"]["cache"]
    assert cache, "cache counters absent from /v1/metrics"
    print(f"  smoke: serve.coalesced={counters['serve.coalesced']}, "
          f"cache counters={len(cache)}")

    code, output = drained
    assert code == 0, f"drain exited {code}: {output!r}"
    assert "drained" in output
    print("  smoke: SIGTERM drain exited 0")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2,
                        help="server worker processes (default 2)")
    parser.add_argument("--burst", type=int, default=8,
                        help="concurrent duplicate clients (default 8)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="warm passes over the query set")
    parser.add_argument("--warm-factor", type=float, default=2.0,
                        help="smoke floor for warm/cold throughput")
    parser.add_argument("--smoke", action="store_true",
                        help="assert the service contract, not just time it")
    parser.add_argument("--output", type=Path, default=None,
                        help="write a dated BENCH JSON to this path")
    parser.add_argument(
        "--date", default=os.environ.get("REPRO_BENCH_DATE"),
        help="override the artifact date stamp (YYYY-MM-DD)")
    args = parser.parse_args(argv)

    print(f"booting repro serve --workers {args.workers} ...")
    server = Server(args.workers)
    try:
        print(f"  serving on {server.host}:{server.port}")
        results = measure(server, burst=args.burst,
                          repeats=args.repeats)
        drained = server.drain()
    finally:
        server.kill()

    if args.smoke:
        smoke_check(results, drained, args.warm_factor)

    if args.output:
        # Wall-clock only stamps the artifact; pass --date (or set
        # REPRO_BENCH_DATE) for reproducible output.
        date = args.date or datetime.date.today().isoformat()  # reprolint: disable=REP005 -- artifact timestamp, overridable via --date/REPRO_BENCH_DATE
        counters = results["metrics"]["serve"]["counters"]
        from repro import __version__
        from repro.obs import (
            MANIFEST_SCHEMA_VERSION,
            METRICS_SCHEMA_VERSION,
            TRACE_SCHEMA_VERSION,
        )
        from repro.serve.protocol import WIRE_SCHEMA_VERSION

        payload = {
            "date": date,
            "selector": "benchmarks/bench_serve.py",
            "machine": platform.machine(),
            "python": platform.python_version(),
            "benchmarks": [results["cold"], results["warm"],
                           results["burst"]],
            "serve": {
                "workers": args.workers,
                "warm_over_cold": round(
                    results["warm"]["qps"] / results["cold"]["qps"], 2),
                "counters": {name: value
                             for name, value in sorted(counters.items())},
            },
            "provenance": {
                "package": {"name": "repro", "version": __version__},
                "schemas": {
                    "trace": TRACE_SCHEMA_VERSION,
                    "metrics": METRICS_SCHEMA_VERSION,
                    "manifest": MANIFEST_SCHEMA_VERSION,
                    "wire": WIRE_SCHEMA_VERSION,
                },
            },
        }
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
