"""Experiment SCALE — scaling ablations (not in the paper).

Measures the cost of the building blocks as the number of robots
grows: gamma(P) detection, the symmetricity computation, and a full
psi_PF formation round.  Also ablates the epsilon parameter of
go-to-center (the paper fixes epsilon = edge/100; Lemma 7's argument
is an epsilon -> 0 limit, so the outcome must be insensitive for all
small epsilon).
"""

import numpy as np
import pytest

from conftest import print_table

from repro.core.configuration import Configuration
from repro.core.symmetricity import symmetricity
from repro.groups.detection import detect_rotation_group
from repro.patterns import polyhedra
from repro.robots.adversary import random_frames
from repro.robots.algorithms import go_to_center
from repro.robots.algorithms.pattern_formation import (
    make_pattern_formation_algorithm,
)
from repro.robots.scheduler import FsyncScheduler


@pytest.mark.parametrize("n", [8, 16, 32, 64, 128, 256])
def test_detection_scaling(benchmark, n):
    rng = np.random.default_rng(n)
    points = [rng.normal(size=3) for _ in range(n)]
    report = benchmark(detect_rotation_group, points)
    assert report.kind == "finite"


@pytest.mark.parametrize("name", ["cube", "icosahedron",
                                  "icosidodecahedron"])
def test_symmetricity_scaling(benchmark, name):
    """Cold ϱ(P) cost: pattern construction happens in setup, never
    inside the timed region, and the congruence caches are cleared
    before each round so every measurement is a full computation."""
    from repro import perf
    from repro.patterns.library import named_pattern

    points = named_pattern(name)

    def setup():
        perf.clear_caches()
        return (Configuration(points),), {}

    rho = benchmark.pedantic(symmetricity, setup=setup,
                             rounds=3, iterations=1)
    assert rho.maximal


@pytest.mark.parametrize("name", ["cube", "icosahedron"])
def test_symmetricity_scaling_warm(benchmark, name):
    """Warm ϱ(P) cost: the congruence class is already cached, so the
    timed region covers alignment plus conjugation only."""
    from repro import perf
    from repro.patterns.library import named_pattern

    points = named_pattern(name)
    perf.clear_caches()
    symmetricity(Configuration(points))  # populate the class entry

    rho = benchmark.pedantic(
        lambda: symmetricity(Configuration(points)),
        rounds=3, iterations=2)
    assert rho.maximal
    assert perf.cache_stats()["symmetry"]["hits"] >= 1


def _formation_run(n):
    rng = np.random.default_rng(n)
    initial = [rng.normal(size=3) for _ in range(n)]
    target = polyhedra.regular_polygon_pattern(n)
    frames = random_frames(n, rng)
    algorithm = make_pattern_formation_algorithm(target)
    scheduler = FsyncScheduler(algorithm, frames, target=target)
    return lambda: scheduler.run(
        initial, stop_condition=lambda c: c.is_similar_to(target),
        max_rounds=30)


@pytest.mark.parametrize("n", [6, 10, 16])
def test_formation_round_scaling(benchmark, n):
    """Cold full ψ_PF run: the congruence caches are cleared in setup
    (outside the timed region) before every round, so each measurement
    pays the once-per-class detection/embedding/matching cost, and
    enough rounds run for a real stddev."""
    from repro import perf

    run = _formation_run(n)

    def setup():
        perf.clear_caches()
        return (), {}

    result = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert result.reached


@pytest.mark.parametrize("n", [6, 10, 16])
def test_formation_round_scaling_warm(benchmark, n):
    """Warm full ψ_PF run: every congruence class of the execution is
    already cached, so the timed region covers the batched Look phase,
    certified alignments, and payload conjugation only."""
    from repro import perf

    run = _formation_run(n)
    perf.clear_caches()
    run()  # populate every class the execution touches

    result = benchmark.pedantic(run, rounds=5, iterations=1)
    assert result.reached
    assert perf.cache_stats()["round"]["hits"] > 0


def test_epsilon_ablation(benchmark):
    """Lemma 7 outcome is insensitive to epsilon (for small epsilon)."""
    from repro.core.symmetricity import symmetricity
    from repro.patterns.library import named_pattern

    original = go_to_center.EPSILON_FRACTION
    rows = []

    def sweep():
        results = []
        for fraction in (0.001, 0.005, 0.01, 0.05):
            go_to_center.EPSILON_FRACTION = fraction
            points = named_pattern("cube")
            rho = symmetricity(Configuration(points))
            frames = random_frames(8, np.random.default_rng(7))
            scheduler = FsyncScheduler(
                go_to_center.go_to_center_algorithm, frames)
            after = Configuration(scheduler.step(points))
            spec = after.symmetry.spec
            results.append({"epsilon_fraction": fraction,
                            "gamma_after": str(spec),
                            "in_rho": spec in rho.specs})
        return results

    try:
        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    finally:
        go_to_center.EPSILON_FRACTION = original
    print_table("epsilon ablation (go-to-center, cube)", rows)
    assert all(row["in_rho"] for row in rows)


# ---------------------------------------------------------------------------
# Swarm scale (ROADMAP north star: n in the thousands).  These sizes
# are where the O(n²) candidate-axis enumeration used to dominate; the
# k-d shell pruning keeps detection near-linear, so the curve through
# n=4096 must stay under the old n=256 cost.  All three benchmarks
# honor the ``--backend`` flag and record the backend that actually
# ran in ``extra_info``.
# ---------------------------------------------------------------------------

SWARM_SIZES = [256, 1024, 4096]


@pytest.mark.parametrize("n", SWARM_SIZES)
def test_swarm_detection_scaling(benchmark, bench_backend, n):
    """γ(P) detection on generic (asymmetric) swarms: the cost is the
    axis-candidate sweep, which the shell pruning bends sub-quadratic."""
    rng = np.random.default_rng(n)
    points = [rng.normal(size=3) for _ in range(n)]
    report = benchmark(detect_rotation_group, points)
    benchmark.extra_info["backend"] = bench_backend
    benchmark.extra_info["n"] = n
    assert report.kind == "finite"


@pytest.mark.parametrize("n", SWARM_SIZES)
def test_swarm_decomposition_scaling(benchmark, bench_backend, n):
    """Orbit decomposition of a maximally symmetric swarm (a regular
    n-gon: one orbit, group order 2n) — one k-d range query per orbit
    instead of a greedy O(|G|·n²) claim sweep."""
    from repro.core.decomposition import orbit_decomposition

    points = polyhedra.regular_polygon_pattern(n)
    config = Configuration(points)
    group = config.symmetry.group
    orbits = benchmark(orbit_decomposition, config, group)
    benchmark.extra_info["backend"] = bench_backend
    benchmark.extra_info["group_order"] = group.order
    assert len(orbits) == 1


class _SwarmContract:
    """Mean-field contraction exposing both Compute engines.

    The per-robot ``__call__`` is the reference; ``compute_batch``
    answers the whole round from the ``(n, n, 3)`` local-view tensor.
    Both express the same map (a robot's own local position is the
    origin, so the destination is a quarter of the local centroid)."""

    def __call__(self, observation):
        views = np.asarray(observation.points)
        me = views[observation.self_index]
        return me + 0.25 * (views.mean(axis=0) - me)

    def compute_batch(self, batch):
        own = batch.own_rows()
        return own + 0.25 * (batch.local.mean(axis=1) - own)


@pytest.mark.parametrize("n", SWARM_SIZES)
def test_swarm_round_scaling(benchmark, bench_backend, n):
    """One full Look–Compute–Move cycle on the batched round engine:
    the Look einsum, one ``compute_batch`` over the local-view tensor,
    and the vectorized Move — no per-robot Python objects on the hot
    path.  One warmup round keeps allocator/BLAS first-touch out of
    the measurement (a run's rounds after the first are the steady
    state).  ``test_swarm_round_fallback_scaling`` keeps the
    per-robot reference engine's cost on record next to it."""
    from repro.robots.adversary import identity_frames

    rng = np.random.default_rng(n)
    points = [rng.normal(size=3) for _ in range(n)]

    scheduler = FsyncScheduler(_SwarmContract(), identity_frames(n))
    destinations = benchmark.pedantic(
        scheduler.step, args=(points,), rounds=3, iterations=1,
        warmup_rounds=1)
    benchmark.extra_info["backend"] = bench_backend
    assert len(destinations) == n


@pytest.mark.parametrize("n", [256, 1024])
def test_swarm_round_fallback_scaling(benchmark, bench_backend, n):
    """The same round through the per-robot reference loop (one
    ``Observation`` per robot): the cost the batched engine removes."""
    from repro.robots.adversary import identity_frames

    rng = np.random.default_rng(n)
    points = [rng.normal(size=3) for _ in range(n)]

    scheduler = FsyncScheduler(_SwarmContract(), identity_frames(n),
                               batched=False)
    destinations = benchmark.pedantic(
        scheduler.step, args=(points,), rounds=3, iterations=1,
        warmup_rounds=1)
    benchmark.extra_info["backend"] = bench_backend
    assert len(destinations) == n
