"""Experiment T1 — regenerate Table 1 (the three polyhedral groups).

Paper: per group, the number of rotations and axes of each fold and
the group order.  Measured: computed from the concrete matrix groups.
"""

from conftest import print_table

from repro.analysis.tables import table1_polyhedral_groups


def test_table1(benchmark):
    rows = benchmark.pedantic(table1_polyhedral_groups,
                              rounds=3, iterations=1)
    print_table("Table 1 — polyhedral groups", rows)
    assert all(row["match"] for row in rows)
