"""Experiment T2 — regenerate Table 2 (transitive sets U_{G,mu}).

Paper: the folding/cardinality table of orbits of T, O, I, with the
polyhedra they form.  Measured: orbits generated from seed points of
the prescribed folding, identified up to similarity.
"""

from conftest import print_table

from repro.analysis.tables import table2_transitive_sets


def test_table2(benchmark):
    rows = benchmark.pedantic(table2_transitive_sets,
                              rounds=3, iterations=1)
    print_table("Table 2 — transitive sets", rows)
    assert all(row["match"] for row in rows)
