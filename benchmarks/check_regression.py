#!/usr/bin/env python
"""Gate a fresh benchmark run against a committed baseline.

Compares two condensed benchmark files (the ``BENCH_*.json`` /
``bench-smoke.json`` shape emitted by ``run_benchmarks.py``; raw
pytest-benchmark JSON is also accepted) record-by-record by benchmark
name and fails when any shared benchmark got slower than the
threshold factor::

    python benchmarks/check_regression.py bench-smoke.json \
        BENCH_2026-08-08-smoke-baseline.json --threshold 1.5 \
        --reference "test_detection_scaling[64]"

``--reference`` names a benchmark present in both files whose ratio
is divided out of every comparison: it cancels overall machine speed,
so a committed baseline recorded on one machine can gate runs on
another (CI runners included) without re-recording.  What remains is
the *relative* profile across benchmarks — exactly the thing a real
regression shifts and a slower machine does not.  Benchmarks present
in only one file are reported and skipped, never failed: the gate
must not punish adding or retiring benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_means(path: Path) -> dict[str, float]:
    """``{benchmark name: mean milliseconds}`` from either file shape."""
    data = json.loads(path.read_text())
    records = data.get("benchmarks", []) if isinstance(data, dict) else data
    means: dict[str, float] = {}
    for entry in records:
        mean = entry.get("mean_ms")
        if mean is None and "stats" in entry:  # raw pytest-benchmark file
            mean = entry["stats"]["mean"] * 1000.0
        if mean is not None and float(mean) > 0.0:
            means[entry["name"]] = float(mean)
    return means


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path,
                        help="the just-measured benchmark JSON")
    parser.add_argument("baseline", type=Path,
                        help="the committed baseline JSON")
    parser.add_argument(
        "--threshold", type=float, default=1.5,
        help="fail when fresh/baseline exceeds this factor (default 1.5)")
    parser.add_argument(
        "--reference", default=None,
        help="benchmark whose fresh/baseline ratio is divided out of "
             "every comparison (cancels machine-speed differences)")
    args = parser.parse_args(argv)

    for path in (args.fresh, args.baseline):
        if not path.exists():
            print(f"check_regression: {path} not found", file=sys.stderr)
            return 2
    fresh = load_means(args.fresh)
    baseline = load_means(args.baseline)
    shared = sorted(set(fresh) & set(baseline))
    if not shared:
        print("check_regression: no benchmark names in common",
              file=sys.stderr)
        return 2

    norm = 1.0
    if args.reference is not None:
        if args.reference not in fresh or args.reference not in baseline:
            print(f"check_regression: reference {args.reference!r} "
                  f"missing from one of the files", file=sys.stderr)
            return 2
        norm = fresh[args.reference] / baseline[args.reference]
        print(f"reference {args.reference}: machine factor {norm:.2f}x")

    failures = []
    for name in shared:
        if name == args.reference:
            continue
        ratio = (fresh[name] / baseline[name]) / norm
        verdict = "ok"
        if ratio > args.threshold:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"  {name:50s} {baseline[name]:10.3f} -> "
              f"{fresh[name]:10.3f} ms  x{ratio:5.2f}  {verdict}")
    for name in sorted(set(fresh) ^ set(baseline)):
        side = "fresh only" if name in fresh else "baseline only"
        print(f"  {name:50s} ({side}; skipped)")

    if failures:
        print(f"check_regression: {len(failures)} benchmark(s) slower "
              f"than {args.threshold}x baseline: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"check_regression: {len(shared)} benchmark(s) within "
          f"{args.threshold}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
