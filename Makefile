PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench bench-smoke bench-json

test:
	$(PYTHON) -m pytest -q

# Lint is best-effort: ruff ships via the `lint` extra and is not part
# of the runtime image, so the target degrades to a no-op (with a
# notice) when it is missing rather than breaking `make`.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	elif command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed (pip install -e .[lint]); skipping lint"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks --benchmark-only

# Fast correctness pass over the detection benchmarks: runs each
# benchmarked callable once with timing disabled.
bench-smoke:
	$(PYTHON) -m pytest benchmarks -k detection --benchmark-disable -q

bench-json:
	$(PYTHON) benchmarks/run_benchmarks.py
