PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench bench-smoke bench-smoke-json bench-json

test:
	$(PYTHON) -m pytest -q

# Lint is best-effort: ruff ships via the `lint` extra and is not part
# of the runtime image, so the target degrades to a no-op (with a
# notice) when it is missing rather than breaking `make`.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	elif command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed (pip install -e .[lint]); skipping lint"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks --benchmark-only

# Fast correctness pass over the detection benchmarks: runs each
# benchmarked callable once with timing disabled.
bench-smoke:
	$(PYTHON) -m pytest benchmarks -k detection --benchmark-disable -q

# CI artifact: one quick timed pass over the same detection
# benchmarks, condensed to bench-smoke.json at the repo root.
# (--benchmark-disable produces no JSON, so this uses minimal rounds.)
bench-smoke-json:
	$(PYTHON) benchmarks/run_benchmarks.py --output bench-smoke.json \
		--select "benchmarks/bench_scaling.py -k detection \
		--benchmark-min-rounds=1 --benchmark-max-time=0.1 \
		--benchmark-warmup=off"

bench-json:
	$(PYTHON) benchmarks/run_benchmarks.py
