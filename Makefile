PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint reprolint typecheck bench bench-smoke bench-smoke-json bench-gate bench-json trace-smoke campaign-smoke serve-smoke profile

test:
	$(PYTHON) -m pytest -q

# Lint = general style (ruff, best-effort: ships via the `lint` extra
# and is not part of the runtime image, so that half degrades to a
# no-op with a notice) + domain invariants (reprolint, pure stdlib,
# always enforced; see docs/STATIC_ANALYSIS.md).
lint: reprolint
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	elif command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed (pip install -e .[lint]); skipping lint"; \
	fi

reprolint:
	$(PYTHON) -m repro.lint src benchmarks \
		--cache-dir .repro-lint-cache

# Type check the strictly-annotated subset (lint framework + geometry
# core + the repro.api/campaign/serve facades).  mypy comes from the
# `lint` extra; degrade politely without it.
typecheck:
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy src/repro/lint src/repro/geometry \
			src/repro/api.py src/repro/campaign src/repro/serve; \
	else \
		echo "mypy not installed (pip install -e .[lint]); skipping typecheck"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks --benchmark-only

# Fast correctness pass over the detection benchmarks (including the
# n=4096 swarm point), one batched swarm round, and one warm-pool
# campaign: runs each benchmarked callable once with timing disabled.
bench-smoke:
	$(PYTHON) -m pytest benchmarks \
		-k "detection or (swarm_round_scaling and 256) \
		or campaign_smoke_warm" \
		--benchmark-disable -q

# CI artifact: one quick timed pass over the same benchmarks,
# condensed to bench-smoke.json at the repo root.
# (--benchmark-disable produces no JSON, so this uses minimal rounds.)
bench-smoke-json:
	$(PYTHON) benchmarks/run_benchmarks.py --output bench-smoke.json \
		--select "benchmarks/bench_scaling.py \
		benchmarks/bench_campaign.py \
		-k 'detection or (swarm_round_scaling and 256) \
		or campaign_smoke_warm' \
		--benchmark-min-rounds=1 --benchmark-max-time=0.1 \
		--benchmark-warmup=off"

# Regression gate over the bench-smoke.json just measured: every
# benchmark shared with the committed baseline must stay within
# 1.5x of it, after dividing out the machine-speed factor measured
# on the reference benchmark (see benchmarks/check_regression.py).
BENCH_BASELINE ?= BENCH_2026-08-08-smoke-baseline.json
bench-gate:
	$(PYTHON) benchmarks/check_regression.py bench-smoke.json \
		$(BENCH_BASELINE) --threshold 1.5 \
		--reference "test_detection_scaling[64]"

bench-json:
	$(PYTHON) benchmarks/run_benchmarks.py

# Where does one swarm-scale round go?  cProfile over a single
# batched Look-Compute-Move step at n=1024, top 20 by cumulative
# time.  (Interpreting it: the Look matmul and the compute_batch
# kernels should dominate; any repro.robots.model.Observation frames
# in the hot path mean the batched engine fell back.)
profile:
	$(PYTHON) benchmarks/profile_round.py --n 1024 --top 20

# Campaign smoke: the CI grid (2 experiments x 2 seeds) on the warm
# pool, resumed once (must skip every cell), then re-run serially into
# a second store — the canonical exports must be byte-identical.
campaign-smoke:
	rm -rf .repro-campaign-smoke
	$(PYTHON) -m repro.cli campaign run examples/campaign-smoke.toml \
		--jobs 4 --store .repro-campaign-smoke/pool.jsonl
	$(PYTHON) -m repro.cli campaign run examples/campaign-smoke.toml \
		--jobs 4 --store .repro-campaign-smoke/pool.jsonl \
		| grep -q "executed:  0"
	$(PYTHON) -m repro.cli campaign run examples/campaign-smoke.toml \
		--jobs 1 --store .repro-campaign-smoke/serial.jsonl > /dev/null
	diff .repro-campaign-smoke/pool.jsonl \
		.repro-campaign-smoke/serial.jsonl
	@echo "campaign-smoke: pool and serial stores byte-identical"

# Service smoke: boot `repro serve` as a subprocess, fire a mixed
# burst of cold/warm/concurrent queries at it, and pin the contract —
# responses byte-identical to direct repro.api evaluation, warm
# throughput at least 2x cold, coalesce + cache counters visible in
# /v1/metrics, SIGTERM drains to exit 0 (see docs/SERVICE.md).
serve-smoke:
	$(PYTHON) benchmarks/bench_serve.py --smoke

# Observability smoke: one small experiment through the repro.api
# façade, emitting all three schema-versioned artifacts (JSONL span
# trace, metrics snapshot, run manifest) at the repo root.
trace-smoke:
	$(PYTHON) -m repro.cli experiment lemma7 --trials 2 \
		--trace trace-smoke.jsonl --metrics metrics-smoke.json \
		--manifest manifest-smoke.json > /dev/null
	@$(PYTHON) -c "import json; \
		lines = open('trace-smoke.jsonl').read().splitlines(); \
		header = json.loads(lines[0]); \
		assert header['kind'] == 'trace-header', header; \
		manifest = json.load(open('manifest-smoke.json')); \
		assert manifest['kind'] == 'run-manifest', manifest; \
		metrics = json.load(open('metrics-smoke.json')); \
		assert metrics['kind'] == 'metrics-snapshot', metrics; \
		print(f'trace-smoke: {len(lines) - 1} spans, ' \
		      f'{manifest[\"rows\"][\"count\"]} rows, ' \
		      f'{len(metrics[\"counters\"])} counters')"
