"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GeometryError(ReproError):
    """A geometric routine received degenerate or invalid input."""


class GroupError(ReproError):
    """A rotation-group operation failed (bad axes, non-closure, ...)."""


class DetectionError(ReproError):
    """Symmetry detection could not classify a point set."""


class ConfigurationError(ReproError):
    """A robot configuration violates the model's assumptions."""


class EmbeddingError(ReproError):
    """No valid embedding of the target pattern exists."""


class MatchingError(ReproError):
    """Destination matching between configuration and pattern failed."""


class UnsolvableError(ReproError):
    """The requested pattern formation instance is unsolvable.

    Raised when ``varrho(P) ⊆ varrho(F)`` does not hold (Theorem 1.1).
    """


class SimulationError(ReproError):
    """The FSYNC simulation engine hit an unexpected state."""


class ServiceError(ReproError):
    """The query service refused or failed a request.

    Carries the HTTP-ish status the server answered with (``429`` for
    backpressure, ``504`` for a deadline, ``422`` for an invalid
    query, ...), so clients can branch on the class of refusal.
    """

    def __init__(self, message: str, status: int = 500) -> None:
        super().__init__(message)
        self.status = status
