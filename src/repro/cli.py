"""Command-line interface to the library.

Usage examples::

    python -m repro.cli patterns
    python -m repro.cli detect cube
    python -m repro.cli check cube octagon
    python -m repro.cli form cube square_antiprism --seed 3 --svg out.svg
    python -m repro.cli experiment lemma7 --trials 10 --jobs 4
    python -m repro.cli experiment lemma7 --trace t.jsonl --metrics m.json
    python -m repro.cli serve --port 8750 --workers 4
    python -m repro.cli query formability cube octagon
    python -m repro.cli query symmetricity icosahedron --server 127.0.0.1:8750
    python -m repro.cli tables

Patterns are named-library entries (``python -m repro.cli patterns``
lists them) or paths to JSON files containing an ``n x 3`` array of
coordinates.

The ``form`` and ``experiment`` commands share a uniform flag
vocabulary: ``--seed`` / ``--jobs`` / ``--cache-stats`` everywhere,
plus the observability sinks ``--trace PATH`` (JSONL span trace) and
``--metrics PATH`` (JSON logical-counter snapshot); ``experiment``
additionally takes ``--manifest PATH`` for the run manifest.  The
``experiment`` command is a thin shell over
:func:`repro.api.run_experiment`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro import (
    Configuration,
    form_pattern,
    formability_report,
    symmetricity,
)
from repro.errors import ReproError
from repro.patterns.library import named_pattern, pattern_names

__all__ = ["main", "build_parser"]


def _load_pattern(spec: str) -> list[np.ndarray]:
    if spec in pattern_names():
        return named_pattern(spec)
    path = Path(spec)
    if path.exists():
        data = json.loads(path.read_text())
        return [np.asarray(row, dtype=float) for row in data]
    raise ReproError(
        f"unknown pattern {spec!r}: not a library name and not a file "
        f"(library: {', '.join(pattern_names())})")


def _cmd_patterns(_args) -> int:
    from repro.patterns.library import pattern_summaries

    for summary in pattern_summaries():
        print(f"{summary['name']:20s} n={summary['n']:3d}  "
              f"gamma={summary['gamma']}")
    return 0


def _cmd_detect(args) -> int:
    points = _load_pattern(args.pattern)
    config = Configuration(points)
    report = config.symmetry
    print(f"n = {config.n}")
    if report.kind != "finite":
        print(f"rotation group: {report.kind} "
              f"({report.infinite_kind or ''})")
        return 0
    print(f"gamma(P) = {report.group.spec} (order {report.group.order})")
    print("axes:")
    for axis in report.group.axes:
        status = "occupied" if axis.occupied else "free"
        print(f"  {axis.fold}-fold along "
              f"{np.round(axis.direction, 4)} [{status}]")
    rho = symmetricity(config) if not config.has_multiplicity else None
    if rho is not None:
        print(f"varrho(P) maximal = "
              f"{{{', '.join(str(s) for s in rho.maximal)}}}")
    if args.cache_stats:
        _emit_cache_stats()
    return 0


def _emit_cache_stats() -> None:
    """The one ``--cache-stats`` renderer: L1/L2/L3, sorted, stderr.

    Every command routes through :func:`repro.obs.metrics.
    render_cache_metrics`, so the CLI can never show cache numbers
    that disagree with ``ExecutionResult.cache_stats`` (both read the
    same counters).
    """
    from repro.obs.metrics import render_cache_metrics

    print(render_cache_metrics(), file=sys.stderr)


def _cmd_check(args) -> int:
    initial = Configuration(_load_pattern(args.initial))
    target = Configuration(_load_pattern(args.target))
    report = formability_report(initial, target)
    print(report.explain())
    return 0 if report.formable else 1


def _cmd_form(args) -> int:
    from repro.obs import metrics as _metrics
    from repro.obs.trace import (JsonlTracer, NULL_TRACER, activated,
                                 render_phase_totals)

    initial = _load_pattern(args.initial)
    target = _load_pattern(args.target)
    if args.jobs > 1:
        print("note: a formation run is one FSYNC execution; "
              "--jobs applies to `experiment` fan-outs", file=sys.stderr)
    tracer = JsonlTracer(args.trace) if args.trace else NULL_TRACER
    before = _metrics.registry().snapshot()
    try:
        with activated(tracer):
            result = form_pattern(initial, target, seed=args.seed,
                                  max_rounds=args.max_rounds)
    finally:
        tracer.close()
    if args.trace:
        print(render_phase_totals(tracer.phase_totals()), file=sys.stderr)
    print(f"formed: {result.reached} in {result.rounds} rounds")
    for t, config in enumerate(result.configurations):
        report = config.symmetry
        spec = report.spec if report.kind == "finite" else report.kind
        print(f"  round {t}: gamma = {spec}")
    if args.svg:
        from repro.viz import render_execution_svg

        render_execution_svg(result.configurations, args.svg,
                             target=target)
        print(f"execution rendered to {args.svg}")
    if args.metrics:
        delta = _metrics.snapshot_delta(
            before, _metrics.registry().snapshot())
        _metrics.write_metrics(args.metrics, delta,
                               extra={"command": "form"})
    if args.cache_stats:
        _emit_cache_stats()
    return 0 if result.reached else 1


def _cmd_experiment(args) -> int:
    from dataclasses import asdict, is_dataclass

    from repro.api import ExperimentSpec, run_experiment

    spec = ExperimentSpec(
        trials=args.trials, seed=args.seed, jobs=args.jobs,
        backend=args.backend,
        trace_path=args.trace, metrics_path=args.metrics,
        manifest_path=args.manifest)
    result = run_experiment(args.name, spec)
    rows = [asdict(row) if is_dataclass(row) else row
            for row in result.rows]
    print(json.dumps(rows, indent=2, default=str))
    if args.trace:
        from repro.obs.trace import render_phase_totals

        print(render_phase_totals(
            result.manifest["timing"]["phases"]), file=sys.stderr)
    if args.cache_stats:
        _emit_cache_stats()
    return 0


def _query_points(spec: str):
    """A query pattern reference: library names pass through (the
    evaluator — local or remote — resolves them), files load here."""
    from repro.api import as_points

    if spec in pattern_names():
        return spec
    return as_points(_load_pattern(spec))


def _cmd_query(args) -> int:
    from repro.api import (
        FormabilityQuery,
        SymmetricityQuery,
        evaluate_query,
    )
    from repro.obs import metrics as _metrics
    from repro.obs.trace import JsonlTracer, NULL_TRACER, activated
    from repro.serve.protocol import canonical_result_text

    if args.what == "formability":
        query = FormabilityQuery(initial=_query_points(args.initial),
                                 target=_query_points(args.target))
    else:
        query = SymmetricityQuery(points=_query_points(args.pattern),
                                  multiset=args.multiset)
    tracer = JsonlTracer(args.trace) if args.trace else NULL_TRACER
    before = _metrics.registry().snapshot()
    try:
        with activated(tracer):
            if args.server:
                from repro.serve.client import ServeClient

                host, _, port_text = args.server.rpartition(":")
                try:
                    port = int(port_text)
                except ValueError:
                    raise ReproError(
                        f"--server takes HOST:PORT, got "
                        f"{args.server!r}") from None
                with ServeClient(host or "127.0.0.1", port) as client:
                    result = client.query(query)
            else:
                result = evaluate_query(query)
    finally:
        tracer.close()
    # The canonical deterministic view: identical bytes whether the
    # query ran locally or through any server.
    print(canonical_result_text(result))
    if args.metrics:
        delta = _metrics.snapshot_delta(
            before, _metrics.registry().snapshot())
        _metrics.write_metrics(args.metrics, delta,
                               extra={"command": "query"})
    if args.cache_stats:
        _emit_cache_stats()
    if result.kind == "formability":
        return 0 if result.verdict == "formable" else 1
    return 0


def _cmd_serve(args) -> int:
    from repro.obs import metrics as _metrics
    from repro.obs.trace import JsonlTracer, NULL_TRACER, activated
    from repro.serve.server import ServeConfig, serve_main

    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_depth=args.queue_depth, deadline_s=args.deadline)
    tracer = JsonlTracer(args.trace) if args.trace else NULL_TRACER
    before = _metrics.registry().snapshot()
    try:
        with activated(tracer):
            code = serve_main(config)
    finally:
        tracer.close()
    if args.metrics:
        delta = _metrics.snapshot_delta(
            before, _metrics.registry().snapshot())
        _metrics.write_metrics(args.metrics, delta,
                               extra={"command": "serve"})
    if args.cache_stats:
        _emit_cache_stats()
    return code


def _cmd_campaign(args) -> int:
    from repro.campaign import (
        generate_report,
        open_store,
        run_campaign,
        write_report,
    )
    from repro.campaign.store import default_store_path, duckdb_available

    if args.action == "run":
        if not args.spec:
            print("error: `repro campaign run` needs a spec file "
                  "(.toml or .json)", file=sys.stderr)
            return 2
        result = run_campaign(
            args.spec, jobs=args.jobs, store_path=args.store,
            max_cells=args.max_cells, fresh=args.fresh)
        print(result.render())
        if args.report:
            with open_store(result.store_path) as store:
                write_report(store, args.report)
            print(f"report written to {args.report}")
        if args.cache_stats:
            _emit_cache_stats()
        return 0
    store_path = Path(args.store) if args.store else default_store_path()
    if store_path.suffix == ".duckdb" and not duckdb_available():
        # mirror open_store's graceful degrade for the existence check
        store_path = store_path.with_suffix(".jsonl")
    if not store_path.exists():
        print(f"error: no campaign store at {store_path} "
              f"(run `repro campaign run <spec>` first)",
              file=sys.stderr)
        return 2
    with open_store(store_path) as store:
        if args.action == "report":
            if args.output:
                write_report(store, args.output, fmt=args.format)
                print(f"report written to {args.output}")
            else:
                print(generate_report(store, args.format or "markdown"),
                      end="")
        elif args.action == "export":
            text = store.export_canonical()
            if args.output:
                Path(args.output).write_text(text, encoding="utf-8")
                print(f"canonical export written to {args.output}")
            else:
                print(text, end="")
        elif args.action == "status":
            cells = store.cells()
            by_experiment: dict[str, int] = {}
            for record in cells:
                name = record["experiment"]
                by_experiment[name] = by_experiment.get(name, 0) + 1
            print(f"campaign store {store.path} ({store.kind}): "
                  f"{len(cells)} completed cells")
            for name, count in sorted(by_experiment.items()):
                print(f"  {name:20s} {count} cells")
    return 0


def _cmd_cache(args) -> int:
    from repro.perf import disk

    store = disk.disk_cache()
    if store is None:
        print("disk cache: disabled (REPRO_DISK_CACHE=0)")
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
        return 0
    info = store.info()
    print(f"disk cache at {info['path']} (version {info['version']})")
    print(f"  entries: {info['entries']}  bytes: {info['bytes']}")
    for kind, counters in sorted(info["kinds"].items()):
        print(f"  {kind:10s} entries={counters['entries']} "
              f"bytes={counters['bytes']}")
    return 0


def _cmd_tables(_args) -> int:
    from repro.analysis.tables import (
        table1_polyhedral_groups,
        table2_transitive_sets,
        table3_symmetricity,
    )

    print("Table 1 — polyhedral groups")
    for row in table1_polyhedral_groups():
        print(f"  {row['group']}: order {row['computed_order']} "
              f"{row['computed']}  match={row['match']}")
    print("Table 2 — transitive sets")
    for row in table2_transitive_sets():
        print(f"  U_{{{row['group']},{row['folding']}}}: "
              f"|.| = {row['computed_cardinality']} "
              f"({row['shape']})  match={row['match']}")
    print("Table 3 — symmetricity")
    for row in table3_symmetricity():
        print(f"  U_{{{row['group']},{row['folding']}}}: varrho = "
              f"{{{', '.join(row['computed_maximal'])}}}  "
              f"match={row['match']}")
    return 0


def _cmd_lint(args) -> int:
    from repro.lint.cli import main as lint_main

    argv = list(args.paths)
    if args.format != "text":
        argv += ["--format", args.format]
    if args.output:
        argv += ["--output", args.output]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


_EXIT_CODES_EPILOG = """\
exit codes:
  0  success (for `check`/`form`: formable / pattern formed)
  1  negative result (`check`: unformable; `form`: not formed;
     `lint`: violations found)
  2  error (bad pattern name, unknown experiment, simulation failure)
"""


def _add_observability_flags(command, *, manifest: bool) -> None:
    """The uniform --seed/--jobs/--cache-stats/--trace/--metrics set."""
    command.add_argument("--seed", type=int, default=0,
                         help="root seed (default 0)")
    command.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the trial fan-out; rows and logical "
             "counters are identical for any value")
    command.add_argument(
        "--cache-stats", action="store_true",
        help="print L1/L2/L3 cache-hierarchy counters to stderr")
    command.add_argument(
        "--trace", metavar="PATH",
        help="write a schema-versioned JSONL span trace to PATH")
    command.add_argument(
        "--metrics", metavar="PATH",
        help="write the run's logical-counter snapshot to PATH as JSON")
    if manifest:
        command.add_argument(
            "--manifest", metavar="PATH",
            help="write the run manifest (seeds, versions, cache "
                 "config, row digest, timings) to PATH as JSON")


def build_parser() -> argparse.ArgumentParser:
    from repro.api import experiment_names

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pattern formation for FSYNC mobile robots in 3D "
                    "(Yamauchi-Uehara-Yamashita, PODC 2016)",
        epilog=_EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("patterns", help="list the named pattern library"
                   ).set_defaults(func=_cmd_patterns)

    detect = sub.add_parser("detect", help="gamma(P) and varrho(P)")
    detect.add_argument("pattern")
    detect.add_argument("--cache-stats", action="store_true",
                        help="print congruence-cache hit/miss counters")
    detect.set_defaults(func=_cmd_detect)

    check = sub.add_parser("check", help="Theorem 1.1 formability test")
    check.add_argument("initial")
    check.add_argument("target")
    check.set_defaults(func=_cmd_check)

    form = sub.add_parser("form", help="run the formation simulation")
    form.add_argument("initial")
    form.add_argument("target")
    form.add_argument("--max-rounds", type=int, default=30)
    form.add_argument("--svg", help="render the execution to an SVG file")
    _add_observability_flags(form, manifest=False)
    form.set_defaults(func=_cmd_form)

    experiment = sub.add_parser(
        "experiment", help="run one paper experiment, rows as JSON")
    experiment.add_argument("name", choices=experiment_names())
    experiment.add_argument(
        "--trials", type=int, default=None,
        help="random trials per row (where applicable; default: the "
             "driver's documented default)")
    experiment.add_argument(
        "--backend", choices=["numpy", "numba", "cupy"], default=None,
        help="array backend for the run's kernels (default: the "
             "process's active backend; an unavailable backend falls "
             "back to numpy with a warning — rows are byte-identical "
             "either way)")
    _add_observability_flags(experiment, manifest=True)
    experiment.set_defaults(func=_cmd_experiment)

    query = sub.add_parser(
        "query", help="answer one typed query (locally or via a "
                      "`repro serve` server)")
    query_sub = query.add_subparsers(dest="what", required=True)
    q_form = query_sub.add_parser(
        "formability", help="is the target formable from the initial "
                            "configuration (Theorem 1.1)?")
    q_form.add_argument("initial")
    q_form.add_argument("target")
    q_sym = query_sub.add_parser(
        "symmetricity", help="gamma(P) / varrho(P) classification")
    q_sym.add_argument("pattern")
    q_sym.add_argument(
        "--multiset", action="store_true",
        help="Definition 6 semantics: points may carry multiplicity "
             "(as target patterns do)")
    for q_cmd in (q_form, q_sym):
        q_cmd.add_argument(
            "--server", metavar="HOST:PORT",
            help="send the query to a running `repro serve` instance "
                 "instead of evaluating in-process (the printed "
                 "deterministic view is byte-identical either way)")
        q_cmd.add_argument(
            "--cache-stats", action="store_true",
            help="print L1/L2/L3 cache-hierarchy counters to stderr")
        q_cmd.add_argument(
            "--trace", metavar="PATH",
            help="write a schema-versioned JSONL span trace to PATH")
        q_cmd.add_argument(
            "--metrics", metavar="PATH",
            help="write the query's counter delta to PATH as JSON")
        q_cmd.set_defaults(func=_cmd_query)

    serve = sub.add_parser(
        "serve", help="serve formability/symmetricity/run queries "
                      "over HTTP until SIGTERM (graceful drain)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0 = ephemeral; the bound port is "
             "printed as `serving on HOST:PORT`)")
    serve.add_argument(
        "--workers", type=int, default=0,
        help="warm worker processes for query evaluation (default 0 "
             "= inline threads; >0 reuses the campaign pool with a "
             "shared warm L2 store)")
    serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="max in-flight queries before 429 backpressure "
             "(default 16)")
    serve.add_argument(
        "--deadline", type=float, default=30.0,
        help="per-request deadline in seconds; waiters past it get "
             "504 but the computation still warms the caches "
             "(default 30)")
    serve.add_argument(
        "--cache-stats", action="store_true",
        help="print cache-hierarchy counters after drain")
    serve.add_argument(
        "--trace", metavar="PATH",
        help="write a JSONL span trace of every served request")
    serve.add_argument(
        "--metrics", metavar="PATH",
        help="write the serve session's counter delta to PATH on "
             "drain")
    serve.set_defaults(func=_cmd_serve)

    campaign = sub.add_parser(
        "campaign",
        help="run a declarative experiment campaign (resumable, "
             "warm-pool, results store)")
    campaign.add_argument("action",
                          choices=["run", "report", "export", "status"])
    campaign.add_argument(
        "spec", nargs="?",
        help="campaign spec file (.toml or .json; required for `run`)")
    campaign.add_argument(
        "--jobs", type=int, default=1,
        help="persistent warm workers for the cell fan-out (cells "
             "always run single-process inside a worker; store "
             "contents are byte-identical for any value)")
    campaign.add_argument(
        "--store", metavar="PATH",
        help="results store path (default: .repro-campaign/"
             "results.duckdb, or .jsonl without the campaign extra)")
    campaign.add_argument(
        "--max-cells", type=int, default=None,
        help="execute at most this many cells this invocation "
             "(re-run to resume the remainder)")
    campaign.add_argument(
        "--fresh", action="store_true",
        help="clear the store before running (default: resume — "
             "completed cells are skipped by digest)")
    campaign.add_argument(
        "--report", metavar="PATH",
        help="after `run`, also write the report to PATH "
             "(.html → HTML, else markdown)")
    campaign.add_argument(
        "--format", choices=["markdown", "html"], default=None,
        help="report format for `report` (default: markdown, or by "
             "--output suffix)")
    campaign.add_argument(
        "--output", metavar="PATH",
        help="write `report`/`export` output to PATH instead of stdout")
    campaign.add_argument("--cache-stats", action="store_true",
                          help="print cache-hierarchy counters after "
                               "`run`")
    campaign.set_defaults(func=_cmd_campaign)

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk (L3) cache")
    cache.add_argument("action", choices=["info", "clear"])
    cache.set_defaults(func=_cmd_cache)

    sub.add_parser("tables", help="regenerate the paper's tables"
                   ).set_defaults(func=_cmd_tables)

    lint = sub.add_parser(
        "lint", help="run reprolint (REP001-REP011 invariant checks, "
                     "including the cross-module dataflow rules)")
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: src benchmarks)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text")
    lint.add_argument("--output", help="write the report to a file")
    lint.add_argument("--cache-dir",
                      help="incremental analysis cache directory")
    lint.add_argument("--list-rules", action="store_true",
                      help="list rule ids and summaries, then exit")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
