"""Figure 4 — the subgroup lattice of the rotation groups.

Builds the Hasse diagram of ``⪯`` over a bounded family of group
types with networkx, and provides the paper's polyhedral sub-lattice
for comparison.
"""

from __future__ import annotations

import networkx as nx

from repro.groups.group import GroupKind, GroupSpec
from repro.groups.subgroups import is_abstract_subgroup

__all__ = ["subgroup_lattice", "polyhedral_lattice_edges",
           "PAPER_FIGURE4_EDGES"]

# Figure 4 of the paper (covers among subgroups of the polyhedral
# groups): an edge (g, h) means g is covered by h.
PAPER_FIGURE4_EDGES = {
    ("C1", "C2"), ("C1", "C3"), ("C1", "C5"),
    ("C2", "C4"), ("C2", "D2"),
    ("C3", "D3"), ("C3", "T"),
    ("C4", "D4"),
    ("C5", "D5"),
    ("C2", "D3"), ("C2", "D5"),
    ("D2", "D4"), ("D2", "T"),
    ("D3", "O"), ("D3", "I"),
    ("D4", "O"),
    ("D5", "I"),
    ("T", "O"), ("T", "I"),
}


def family(max_cyclic: int = 6, max_dihedral: int = 6) -> list[GroupSpec]:
    """A bounded family of group types for lattice construction."""
    specs = [GroupSpec(GroupKind.CYCLIC, k) for k in range(1, max_cyclic + 1)]
    specs += [GroupSpec(GroupKind.DIHEDRAL, l)
              for l in range(2, max_dihedral + 1)]
    specs += [GroupSpec(GroupKind.TETRAHEDRAL),
              GroupSpec(GroupKind.OCTAHEDRAL),
              GroupSpec(GroupKind.ICOSAHEDRAL)]
    return specs


def subgroup_lattice(max_cyclic: int = 6,
                     max_dihedral: int = 6) -> nx.DiGraph:
    """Hasse diagram (cover relation) of ``⪯`` over the family.

    Nodes are spec strings; there is an edge ``g -> h`` when ``g ≺ h``
    with no intermediate group in the family.
    """
    specs = family(max_cyclic, max_dihedral)
    graph = nx.DiGraph()
    for spec in specs:
        graph.add_node(str(spec), order=spec.order)
    for g in specs:
        for h in specs:
            if g == h or not is_abstract_subgroup(g, h):
                continue
            covered = any(
                mid != g and mid != h
                and is_abstract_subgroup(g, mid)
                and is_abstract_subgroup(mid, h)
                for mid in specs)
            if not covered:
                graph.add_edge(str(g), str(h))
    return graph


def polyhedral_lattice_edges() -> set[tuple[str, str]]:
    """Cover edges restricted to subgroups of the polyhedral groups.

    This is the content of Figure 4: only the group types that occur
    inside ``T``, ``O`` or ``I`` are kept.
    """
    polyhedral_members = {"C1", "C2", "C3", "C4", "C5",
                          "D2", "D3", "D4", "D5", "T", "O", "I"}
    graph = subgroup_lattice(max_cyclic=5, max_dihedral=5)
    return {(a, b) for a, b in graph.edges()
            if a in polyhedral_members and b in polyhedral_members}
