"""Regeneration of the paper's tables and figures, plus the experiment
drivers used by the benchmark harness (see DESIGN.md's experiment
index and EXPERIMENTS.md for paper-vs-measured records).
"""

from repro.analysis.tables import (
    table1_polyhedral_groups,
    table2_transitive_sets,
    table3_symmetricity,
)
from repro.analysis.lattice import subgroup_lattice, polyhedral_lattice_edges
from repro.analysis.experiments import (
    lemma7_experiment,
    theorem41_experiment,
    theorem11_experiment,
    figure1_experiment,
    plane_formation_experiment,
    baseline_2d_experiment,
)

__all__ = [
    "table1_polyhedral_groups",
    "table2_transitive_sets",
    "table3_symmetricity",
    "subgroup_lattice",
    "polyhedral_lattice_edges",
    "lemma7_experiment",
    "theorem41_experiment",
    "theorem11_experiment",
    "figure1_experiment",
    "plane_formation_experiment",
    "baseline_2d_experiment",
]
