"""Experiment drivers behind the benchmark harness.

Each driver runs one of DESIGN.md's experiments (the paper's figures,
lemmas and theorems) and returns structured result rows; the
``benchmarks/`` scripts print them in the same shape the paper
reports, and EXPERIMENTS.md records paper-vs-measured.

The public entrypoints are the :mod:`repro.api` façade's
``run_experiment(name, spec)`` registry; the historical
``*_experiment(trials=, seed=, jobs=)`` functions survive as thin
deprecated shims that delegate through the façade (so tracing,
metrics and manifests cover them too).  The ``_*_rows`` functions
here are the raw drivers the façade dispatches to.

The randomized sweeps accept a ``jobs`` parameter: independent trials
fan out over a process pool (:func:`repro.perf.parallel_map`).  Every
trial derives its RNG from its own ``SeedSequence`` child stream
(:func:`repro.perf.spawn_seeds` — the old ``default_rng(seed + t)``
convention collided across adjacent experiment seeds) and starts from
cleared congruence caches, so the returned rows are bit-identical for
any ``jobs`` value, including the inline ``jobs=1`` reference path.

Trial inputs travel as zero-copy shared-memory descriptors
(:func:`repro.perf.blocks.packed_arrays`): each driver packs its
pattern arrays into one segment up front, and the per-trial payload
pickled through the pool is a few dozen bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.configuration import Configuration
from repro.core.formability import formability_report
from repro.core.symmetricity import symmetricity
from repro.groups.group import GroupSpec
from repro.groups.subgroups import is_abstract_subgroup
from repro.patterns import library, polyhedra
from repro.patterns.library import compose_shells, named_pattern
from repro.robots.adversary import random_frames, symmetric_frames
from repro.robots.algorithms.go_to_center import go_to_center_algorithm
from repro.robots.algorithms.pattern_formation import (
    make_pattern_formation_algorithm,
)
from repro.robots.algorithms.sym import is_sym_terminal, psi_sym
from repro.robots.scheduler import FsyncScheduler

__all__ = [
    "lemma7_experiment",
    "theorem41_experiment",
    "theorem11_experiment",
    "figure1_experiment",
    "plane_formation_experiment",
    "baseline_2d_experiment",
    "GOC_POLYHEDRA",
]

GOC_POLYHEDRA = [
    "tetrahedron", "octahedron", "cube", "cuboctahedron",
    "icosahedron", "dodecahedron", "icosidodecahedron",
]


def _spec_of(config: Configuration) -> str:
    report = config.symmetry
    return str(report.spec) if report.kind == "finite" else report.kind


def _points_of(ref) -> list[np.ndarray]:
    """Materialize an :class:`ArrayRef` as the usual list of points."""
    return [np.array(row) for row in ref.load()]


def _lemma7_trial(payload):
    ref, stream = payload
    points = _points_of(ref)
    frames = random_frames(len(points), np.random.default_rng(stream))
    scheduler = FsyncScheduler(go_to_center_algorithm, frames)
    after = Configuration(scheduler.step(points))
    return after.symmetry.spec


def _lemma7_rows(trials: int = 10, seed: int = 0,
                 jobs: int = 1) -> list[dict]:
    """One go-to-center step from each of the seven polyhedra.

    Lemma 7 claims ``γ(P') ∈ ϱ(P)`` after a single synchronized step;
    each row records the distribution of ``γ(P')`` over random local
    frames and whether every outcome lies in ``ϱ(P)``.
    """
    from repro.perf import parallel_map, spawn_seeds
    from repro.perf.blocks import packed_arrays

    streams = spawn_seeds(seed, len(GOC_POLYHEDRA) * trials)
    patterns = [named_pattern(name) for name in GOC_POLYHEDRA]
    with packed_arrays(patterns) as refs:
        items = [(refs[i], streams[i * trials + t])
                 for i in range(len(GOC_POLYHEDRA)) for t in range(trials)]
        specs = parallel_map(_lemma7_trial, items, jobs=jobs)
    rows = []
    for row_index, name in enumerate(GOC_POLYHEDRA):
        rho = symmetricity(Configuration(named_pattern(name)))
        outcomes: dict[str, int] = {}
        all_in_rho = True
        for spec in specs[row_index * trials:(row_index + 1) * trials]:
            outcomes[str(spec)] = outcomes.get(str(spec), 0) + 1
            if spec not in rho.specs:
                all_in_rho = False
        rows.append({
            "polyhedron": name,
            "rho_maximal": [str(s) for s in rho.maximal],
            "gamma_after": dict(sorted(outcomes.items())),
            "all_in_rho": all_in_rho,
        })
    return rows


def _theorem41_cases() -> list[tuple[str, list[np.ndarray]]]:
    cases = [(name, named_pattern(name)) for name in GOC_POLYHEDRA]
    cases += [
        ("cube+octahedron", compose_shells(
            named_pattern("octahedron"), named_pattern("cube"))),
        ("square pyramid", named_pattern("square_pyramid")),
        ("pentagonal prism", named_pattern("pentagonal_prism")),
        ("pyramid C5", polyhedra.pyramid(5)),
        ("tetra+cube+octa", compose_shells(
            named_pattern("tetrahedron"), named_pattern("cube"),
            named_pattern("octahedron"))),
        ("icosa+dodeca", compose_shells(
            named_pattern("icosahedron"), named_pattern("dodecahedron"))),
    ]
    return cases


def _theorem41_trial(payload):
    ref, stream = payload
    points = _points_of(ref)
    frames = random_frames(len(points), np.random.default_rng(stream))
    scheduler = FsyncScheduler(psi_sym, frames)
    result = scheduler.run(points, stop_condition=is_sym_terminal,
                           max_rounds=20)
    final = result.final
    return {
        "spec": final.symmetry.spec,
        "rounds": result.rounds,
        "reached": result.reached,
        "polygon_exception": _is_regular_polygon_exception(final),
    }


def _theorem41_rows(trials: int = 5, seed: int = 0,
                    jobs: int = 1) -> list[dict]:
    """``ψ_SYM`` terminates with ``γ(P') ∈ ϱ(P)`` within 7 steps."""
    from repro.perf import parallel_map, spawn_seeds
    from repro.perf.blocks import packed_arrays

    cases = _theorem41_cases()
    streams = spawn_seeds(seed, len(cases) * trials)
    with packed_arrays([points for _, points in cases]) as refs:
        items = [(refs[case_index], streams[case_index * trials + t])
                 for case_index in range(len(cases))
                 for t in range(trials)]
        trial_rows = parallel_map(_theorem41_trial, items, jobs=jobs)
    rows = []
    for case_index, (name, points) in enumerate(cases):
        rho = symmetricity(Configuration(points))
        max_rounds_seen = 0
        ok = True
        outcomes: dict[str, int] = {}
        for trial in trial_rows[case_index * trials:
                                (case_index + 1) * trials]:
            max_rounds_seen = max(max_rounds_seen, trial["rounds"])
            spec = trial["spec"]
            outcomes[str(spec)] = outcomes.get(str(spec), 0) + 1
            in_rho = spec in rho.specs or trial["polygon_exception"]
            ok = ok and trial["reached"] and in_rho
        rows.append({
            "initial": name,
            "n": len(points),
            "rho_maximal": [str(s) for s in rho.maximal],
            "gamma_final": dict(sorted(outcomes.items())),
            "max_rounds": max_rounds_seen,
            "bound_7_holds": max_rounds_seen <= 7,
            "gamma_in_rho": ok,
        })
    return rows


def _is_regular_polygon_exception(config: Configuration) -> bool:
    from repro.geometry.polygons import regular_polygon_fold

    return regular_polygon_fold(config.points) is not None


def _theorem11_instances() -> list[tuple[str, list, str, list]]:
    rng = np.random.default_rng(99)
    gen8 = [rng.normal(size=3) for _ in range(8)]
    gen12 = [rng.normal(size=3) for _ in range(12)]
    return [
        ("cube", named_pattern("cube"),
         "octagon", named_pattern("octagon")),
        ("cube", named_pattern("cube"),
         "square antiprism", named_pattern("square_antiprism")),
        ("cube", named_pattern("cube"), "generic 8", gen8),
        ("generic 8", gen8, "cube", named_pattern("cube")),
        ("octagon", named_pattern("octagon"),
         "cube", named_pattern("cube")),
        ("square antiprism", named_pattern("square_antiprism"),
         "cube", named_pattern("cube")),
        ("icosahedron", named_pattern("icosahedron"),
         "cuboctahedron", named_pattern("cuboctahedron")),
        ("cuboctahedron", named_pattern("cuboctahedron"),
         "icosahedron", named_pattern("icosahedron")),
        ("generic 12", gen12,
         "icosahedron", named_pattern("icosahedron")),
        ("hexagonal prism", polyhedra.prism(6),
         "hexagonal antiprism", polyhedra.antiprism(6)),
        ("octahedron", named_pattern("octahedron"),
         "hexagon", polyhedra.regular_polygon_pattern(6)),
        ("octahedron", named_pattern("octahedron"),
         "triangular prism", polyhedra.prism(3)),
    ]


@dataclass
class Theorem11Row:
    """One instance of the characterization sweep."""

    initial: str
    target: str
    predicted_formable: bool
    formed_random: bool | None = None
    formed_worst_case: bool | None = None
    lower_bound_held: bool | None = None
    rounds: int | None = None

    @property
    def consistent(self) -> bool:
        """Does the observed behaviour match Theorem 1.1?"""
        if self.predicted_formable:
            return bool(self.formed_random) and (
                self.formed_worst_case is not False)
        return self.lower_bound_held is not False


def _theorem11_instance_row(payload) -> Theorem11Row:
    p_name, f_name, p_ref, f_ref, stream = payload
    p_points = _points_of(p_ref)
    f_points = _points_of(f_ref)
    # Three independent child streams, one per randomized probe, so
    # adding or skipping a probe never shifts another's draws.
    random_stream, worst_stream, bound_stream = stream.spawn(3)
    initial = Configuration(p_points)
    target = Configuration(f_points)
    report = formability_report(initial, target)
    row = Theorem11Row(initial=p_name, target=f_name,
                       predicted_formable=report.formable)
    if report.formable:
        row.formed_random, row.rounds = _run_formation(
            p_points, f_points, random_frames(
                len(p_points), np.random.default_rng(random_stream)))
        witness_spec = report.initial_symmetricity.maximal[0]
        witness = report.initial_symmetricity.witness(witness_spec)
        if witness is not None:
            frames = symmetric_frames(initial, witness,
                                      np.random.default_rng(worst_stream))
            row.formed_worst_case, _ = _run_formation(
                p_points, f_points, frames)
    else:
        row.lower_bound_held = _check_lower_bound(
            initial, f_points, report, np.random.default_rng(bound_stream))
    return row


def _theorem11_rows(seed: int = 0,
                    jobs: int = 1) -> list[Theorem11Row]:
    """Both directions of Theorem 1.1 on a curated instance sweep.

    Solvable instances must be formed under random *and* worst-case
    symmetric frames; unsolvable ones must preserve ``σ(P)``'s
    blocking symmetry forever (checked for 10 rounds of ``ψ_PF``
    pressure with symmetric frames — Lemma 2's invariant).
    """
    from repro.perf import parallel_map, spawn_seeds
    from repro.perf.blocks import packed_arrays

    instances = _theorem11_instances()
    streams = spawn_seeds(seed, len(instances))
    arrays = []
    for _, p_points, _, f_points in instances:
        arrays.append(p_points)
        arrays.append(f_points)
    with packed_arrays(arrays) as refs:
        items = [(p_name, f_name, refs[2 * i], refs[2 * i + 1], streams[i])
                 for i, (p_name, p_points, f_name, f_points)
                 in enumerate(instances)]
        return parallel_map(_theorem11_instance_row, items, jobs=jobs)


def _run_formation(p_points, f_points, frames,
                   max_rounds: int = 30) -> tuple[bool, int]:
    algorithm = make_pattern_formation_algorithm(f_points)
    scheduler = FsyncScheduler(algorithm, frames, target=f_points)
    try:
        result = scheduler.run(
            p_points,
            stop_condition=lambda c: c.is_similar_to(f_points),
            max_rounds=max_rounds)
        return result.reached, result.rounds
    except Exception:
        return False, -1


def _check_lower_bound(initial: Configuration, f_points, report,
                       rng) -> bool:
    """Lemma 2/4: under frames with ``σ(P) = G`` for a blocking ``G``,
    every reachable configuration keeps ``γ(P(t)) ⪰ G`` and never
    becomes similar to ``F``."""
    blocking = [g for g in report.blocking
                if report.initial_symmetricity.witness(g) is not None]
    if not blocking:
        return True
    spec = sorted(blocking)[-1]
    witness = report.initial_symmetricity.witness(spec)
    frames = symmetric_frames(initial, witness, rng)
    algorithm = make_pattern_formation_algorithm(f_points)
    scheduler = FsyncScheduler(algorithm, frames, target=f_points)
    points = initial.points
    for _ in range(10):
        try:
            points = scheduler.step(points)
        except Exception:
            return True  # the algorithm rejected the instance: fine
        config = Configuration(points)
        if config.is_similar_to(f_points):
            return False
        gamma = config.symmetry
        if gamma.kind == "finite" and not is_abstract_subgroup(
                spec, gamma.group.spec):
            return False
    return True


_FIGURE1_TARGETS = ("octagon", "square_antiprism")


def _figure1_trial(payload):
    cube_ref, target_ref, stream = payload
    cube = _points_of(cube_ref)
    target = _points_of(target_ref)
    frames = random_frames(len(cube), np.random.default_rng(stream))
    return _run_formation(cube, target, frames)


def _figure1_rows(trials: int = 5, seed: int = 0,
                  jobs: int = 1) -> list[dict]:
    """Figure 1 — cube to regular octagon / square antiprism."""
    from repro.perf import parallel_map, spawn_seeds
    from repro.perf.blocks import packed_arrays

    cube = named_pattern("cube")
    streams = spawn_seeds(seed, len(_FIGURE1_TARGETS) * trials)
    targets = [named_pattern(name) for name in _FIGURE1_TARGETS]
    with packed_arrays([cube] + targets) as refs:
        items = [(refs[0], refs[1 + i], streams[i * trials + t])
                 for i in range(len(_FIGURE1_TARGETS))
                 for t in range(trials)]
        outcomes = parallel_map(_figure1_trial, items, jobs=jobs)
    rows = []
    for row_index, target_name in enumerate(_FIGURE1_TARGETS):
        target = named_pattern(target_name)
        formed = 0
        rounds = []
        for ok, r in outcomes[row_index * trials:(row_index + 1) * trials]:
            formed += int(ok)
            rounds.append(r)
        initial = Configuration(cube)
        rho_p = symmetricity(initial)
        rho_f = symmetricity(Configuration(target))
        rows.append({
            "target": target_name,
            "gamma_P": str(initial.rotation_group.spec),
            "gamma_F": str(Configuration(target).rotation_group.spec),
            "rho_P": [str(s) for s in rho_p.maximal],
            "rho_F": [str(s) for s in rho_f.maximal],
            "formed": formed,
            "trials": trials,
            "rounds": rounds,
        })
    return rows


def _plane_formation_rows(seed: int = 0) -> list[dict]:
    """The DISC 2015 predecessor on our substrate (sanity anchor)."""
    from repro.planeformation import (
        is_coplanar,
        is_plane_formable,
        make_plane_formation_algorithm,
    )

    rows = []
    for name in GOC_POLYHEDRA:
        points = named_pattern(name)
        config = Configuration(points)
        solvable = is_plane_formable(config)
        formed = None
        if solvable:
            frames = random_frames(len(points), np.random.default_rng(seed))
            scheduler = FsyncScheduler(make_plane_formation_algorithm(),
                                       frames)
            result = scheduler.run(
                points, stop_condition=lambda c: is_coplanar(c.points),
                max_rounds=20)
            formed = result.reached
        rows.append({
            "initial": name,
            "plane_formable": solvable,
            "formed": formed,
        })
    return rows


def _baseline_2d_rows(seed: int = 0) -> list[dict]:
    """The 2D divisibility characterization on a small sweep."""
    from repro.twod import (
        FsyncScheduler2D,
        is_formable_2d,
        make_formation_algorithm_2d,
        random_frames_2d,
        symmetricity_2d,
    )
    from repro.twod.formation import are_similar_2d

    def polygon(k, r=1.0, phase=0.0):
        return [np.array([r * np.cos(phase + 2 * np.pi * i / k),
                          r * np.sin(phase + 2 * np.pi * i / k)])
                for i in range(k)]

    from repro.perf import spawn_seeds

    rng = np.random.default_rng(seed)
    gen8 = [rng.normal(size=2) for _ in range(8)]
    # One SeedSequence child for the frame streams: arithmetic on the
    # seed (the old ``seed + 1``) collides with adjacent experiment
    # seeds; ``spawn`` guarantees independence (REP004).
    frame_stream = spawn_seeds(seed, 1)[0]
    instances = [
        ("two squares", polygon(4) + polygon(4, 0.6, 0.3),
         "octagon", polygon(8)),
        ("generic 8", gen8, "octagon", polygon(8)),
        ("octagon", polygon(8), "two squares",
         polygon(4) + polygon(4, 0.6, 0.3)),
        ("generic 8", gen8, "gather point", [np.zeros(2)] * 8),
        ("square+center", polygon(4) + [np.zeros(2)],
         "pentagon", polygon(5)),
    ]
    rows = []
    for p_name, p_pts, f_name, f_pts in instances:
        formable = is_formable_2d(p_pts, f_pts)
        formed = None
        if formable:
            frames = random_frames_2d(
                len(p_pts), np.random.default_rng(frame_stream))
            algo = make_formation_algorithm_2d(f_pts)
            scheduler = FsyncScheduler2D(algo, frames, target=f_pts)
            result = scheduler.run(
                p_pts,
                stop_condition=lambda pts: are_similar_2d(pts, f_pts),
                max_rounds=30)
            formed = result.reached
        rows.append({
            "initial": p_name,
            "target": f_name,
            "rho_P": symmetricity_2d(p_pts),
            "rho_F": symmetricity_2d(f_pts),
            "predicted": formable,
            "formed": formed,
        })
    return rows


# ---------------------------------------------------------------------------
# Deprecated entrypoints
# ---------------------------------------------------------------------------
#
# The historical ``*_experiment`` functions predate the ``repro.api``
# façade.  They survive as thin shims so existing callers keep working,
# but new code should call ``repro.api.run_experiment(name, spec)``
# (which also yields the run's manifest and metrics snapshot, not just
# the rows).

def _shim(name: str, **spec_kwargs):
    import warnings

    from repro.api import ExperimentSpec, run_experiment

    warnings.warn(
        f"repro.analysis.experiments.{name}_experiment() is deprecated; "
        f"use repro.api.run_experiment({name!r}, ExperimentSpec(...))",
        DeprecationWarning, stacklevel=3)
    return run_experiment(name, ExperimentSpec(**spec_kwargs)).rows


def lemma7_experiment(trials: int = 10, seed: int = 0,
                      jobs: int = 1) -> list[dict]:
    """Deprecated: ``repro.api.run_experiment("lemma7", spec).rows``."""
    return _shim("lemma7", trials=trials, seed=seed, jobs=jobs)


def theorem41_experiment(trials: int = 5, seed: int = 0,
                         jobs: int = 1) -> list[dict]:
    """Deprecated: ``repro.api.run_experiment("theorem41", spec).rows``."""
    return _shim("theorem41", trials=trials, seed=seed, jobs=jobs)


def theorem11_experiment(seed: int = 0, jobs: int = 1) -> list[Theorem11Row]:
    """Deprecated: ``repro.api.run_experiment("theorem11", spec).rows``."""
    return _shim("theorem11", seed=seed, jobs=jobs)


def figure1_experiment(trials: int = 5, seed: int = 0,
                       jobs: int = 1) -> list[dict]:
    """Deprecated: ``repro.api.run_experiment("figure1", spec).rows``."""
    return _shim("figure1", trials=trials, seed=seed, jobs=jobs)


def plane_formation_experiment(seed: int = 0) -> list[dict]:
    """Deprecated: ``run_experiment("plane_formation", spec).rows``."""
    return _shim("plane_formation", seed=seed)


def baseline_2d_experiment(seed: int = 0) -> list[dict]:
    """Deprecated: ``repro.api.run_experiment("baseline_2d", spec).rows``."""
    return _shim("baseline_2d", seed=seed)
