"""Computational regeneration of the paper's Tables 1, 2 and 3.

Each function returns a list of row dicts containing both the value
the paper states and the value computed from this library's concrete
group/orbit machinery, so the benchmarks can print the comparison and
the tests can assert equality.
"""

from __future__ import annotations

import numpy as np

from repro.core.configuration import Configuration
from repro.core.symmetricity import symmetricity
from repro.groups.catalog import (
    cyclic_group,
    dihedral_group,
    icosahedral_group,
    octahedral_group,
    tetrahedral_group,
)
from repro.groups.group import GroupSpec, RotationGroup
from repro.groups.subgroups import maximal_elements
from repro.patterns.orbits import transitive_set

__all__ = [
    "table1_polyhedral_groups",
    "table2_transitive_sets",
    "table3_symmetricity",
]

# Paper Table 1: per polyhedral group, {fold: (elements, axes)} and order.
PAPER_TABLE1 = {
    "T": {"2": (3, 3), "3": (8, 4), "order": 12},
    "O": {"2": (6, 6), "3": (8, 4), "4": (9, 3), "order": 24},
    "I": {"2": (15, 15), "3": (20, 10), "5": (24, 6), "order": 60},
}

# Paper Table 2 (the finite-orbit rows): (group, folding) -> cardinality
# and the polyhedron the orbit forms ('' when infinitely many shapes).
PAPER_TABLE2 = [
    ("T", 3, 4, "tetrahedron"),
    ("T", 2, 6, "octahedron"),
    ("T", 1, 12, ""),
    ("O", 4, 6, "octahedron"),
    ("O", 3, 8, "cube"),
    ("O", 2, 12, "cuboctahedron"),
    ("O", 1, 24, ""),
    ("I", 5, 12, "icosahedron"),
    ("I", 3, 20, "dodecahedron"),
    ("I", 2, 30, "icosidodecahedron"),
    ("I", 1, 60, ""),
]

# Paper Table 3: varrho(U_{G,1} ∪ U_{G,mu}) — for 3D groups
# varrho(U_{G,mu}) alone is identical (the paper notes this); rows as
# (group, mu, paper's stated set of groups).
PAPER_TABLE3 = [
    ("T", 3, {"D2"}),
    ("T", 2, {"D3"}),
    ("O", 4, {"D3"}),
    ("O", 3, {"D4"}),
    ("O", 2, {"T", "C4", "C3"}),
    ("I", 5, {"T", "D3"}),
    ("I", 3, {"D5", "D2"}),
    ("I", 2, {"C5", "C3"}),
]


def _catalog(name: str) -> RotationGroup:
    return {"T": tetrahedral_group, "O": octahedral_group,
            "I": icosahedral_group}[name]()


def table1_polyhedral_groups() -> list[dict]:
    """Rows of Table 1 computed from the concrete matrix groups."""
    rows = []
    for name in ("T", "O", "I"):
        group = _catalog(name)
        computed: dict[str, tuple[int, int]] = {}
        for fold, axes in group.axis_folds().items():
            computed[str(fold)] = ((fold - 1) * axes, axes)
        paper = PAPER_TABLE1[name]
        per_fold_match = all(
            computed.get(fold) == value
            for fold, value in paper.items() if fold != "order")
        rows.append({
            "group": name,
            "computed": computed,
            "computed_order": group.order,
            "paper_order": paper["order"],
            "match": per_fold_match and group.order == paper["order"],
        })
    return rows


def table2_transitive_sets() -> list[dict]:
    """Rows of Table 2: generate each ``U_{G,μ}`` and identify it."""
    from repro.patterns import library

    rows = []
    for name, mu, cardinality, shape in PAPER_TABLE2:
        group = _catalog(name)
        orbit = transitive_set(group, mu=mu)
        computed_card = len(orbit)
        shape_match = True
        if shape:
            reference = library.named_pattern(
                {"tetrahedron": "tetrahedron",
                 "octahedron": "octahedron",
                 "cube": "cube",
                 "cuboctahedron": "cuboctahedron",
                 "icosahedron": "icosahedron",
                 "dodecahedron": "dodecahedron",
                 "icosidodecahedron": "icosidodecahedron"}[shape])
            shape_match = Configuration(orbit).is_similar_to(reference)
        rows.append({
            "group": name,
            "folding": mu,
            "paper_cardinality": cardinality,
            "computed_cardinality": computed_card,
            "shape": shape or "(infinitely many)",
            "match": computed_card == cardinality and shape_match,
        })
    return rows


def table3_symmetricity() -> list[dict]:
    """Rows of Table 3: ``ϱ(U_{G,μ})`` versus the paper's sets.

    The paper lists convenient generating sets that may include
    non-maximal members (e.g. ``C3 ≺ T`` in the cuboctahedron row), so
    rows compare *downward closures*, and also report our maximal set.
    """
    from repro.groups.subgroups import proper_abstract_subgroups

    def closure(names: set[str]) -> frozenset:
        specs = set()
        for text in names:
            spec = GroupSpec.parse(text)
            specs.add(spec)
            specs.update(proper_abstract_subgroups(spec))
        return frozenset(specs)

    rows = []
    for name, mu, paper_set in PAPER_TABLE3:
        group = _catalog(name)
        orbit = transitive_set(group, mu=mu)
        rho = symmetricity(Configuration(orbit))
        computed_max = {str(s) for s in rho.maximal}
        rows.append({
            "group": name,
            "folding": mu,
            "paper_set": sorted(paper_set),
            "computed_maximal": sorted(computed_max),
            "match": closure(paper_set) == closure(computed_max),
        })
    return rows
