"""Similarity transforms and pattern similarity testing.

The paper's set ``T`` consists of rotations, translations, uniform
scalings and their combinations (all orientation preserving, since
local coordinate systems are right-handed).  ``F' ≃ F`` means there is
a ``Z ∈ T`` with ``F' = Z(F)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GeometryError
from repro.geometry.rotations import is_rotation_matrix, random_rotation
from repro.geometry.tolerance import (
    AXIS_NORM_FLOOR,
    DEFAULT_TOL,
    LOOSE_TOL,
    Tolerance,
)
from repro.geometry.vectors import as_vector, centroid

__all__ = ["Similarity", "are_similar"]


@dataclass(frozen=True)
class Similarity:
    """Orientation-preserving similarity ``x -> scale * R x + t``."""

    rotation: np.ndarray = field(default_factory=lambda: np.eye(3))
    scale: float = 1.0
    translation: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise GeometryError("similarity scale must be positive")
        if not is_rotation_matrix(self.rotation):
            raise GeometryError("similarity rotation must be in SO(3)")

    def apply(self, point) -> np.ndarray:
        """Image of a single point."""
        return self.scale * (self.rotation @ as_vector(point)) + self.translation

    def apply_all(self, points) -> list[np.ndarray]:
        """Image of each point in a collection (order preserved)."""
        return [self.apply(p) for p in points]

    def inverse(self) -> "Similarity":
        """The inverse similarity."""
        rot_inv = self.rotation.T
        scale_inv = 1.0 / self.scale
        return Similarity(
            rotation=rot_inv,
            scale=scale_inv,
            translation=-scale_inv * (rot_inv @ self.translation),
        )

    def compose(self, other: "Similarity") -> "Similarity":
        """Return the similarity ``self ∘ other`` (apply other first)."""
        return Similarity(
            rotation=self.rotation @ other.rotation,
            scale=self.scale * other.scale,
            translation=self.scale * (self.rotation @ other.translation)
            + self.translation,
        )

    @staticmethod
    def random(rng: np.random.Generator,
               scale_range: tuple[float, float] = (0.2, 5.0),
               translation_scale: float = 10.0) -> "Similarity":
        """Random similarity (uniform rotation, log-uniform scale)."""
        low, high = scale_range
        scale = float(np.exp(rng.uniform(np.log(low), np.log(high))))
        return Similarity(
            rotation=random_rotation(rng),
            scale=scale,
            translation=rng.normal(scale=translation_scale, size=3),
        )


def _normalized_cloud(points, tol: Tolerance) -> np.ndarray | None:
    """Center at the centroid and scale RMS radius to 1.

    Returns None for a degenerate (single repeated point) cloud.
    """
    arr = np.asarray(points, dtype=float)
    arr = arr - arr.mean(axis=0)
    rms = float(np.sqrt((arr ** 2).sum() / len(arr)))
    if tol.zero(rms):
        return None
    return arr / rms


def are_similar(first, second, tol: Tolerance = DEFAULT_TOL) -> bool:
    """Test whether two point multisets are similar (``first ≃ second``).

    Both arguments are sequences of 3-points; multiplicities matter but
    order does not.  Only orientation-preserving similarities count,
    matching the paper's ``T``.

    Strategy: normalize both clouds (centroid to origin, RMS radius to
    1), then search for a rotation aligning them.  Candidate rotations
    map a deterministic pair of independent points of the first cloud
    onto candidate pairs of the second; each candidate is verified
    against the full multiset.
    """
    a_pts = [np.asarray(p, dtype=float) for p in first]
    b_pts = [np.asarray(p, dtype=float) for p in second]
    if len(a_pts) != len(b_pts):
        return False
    if len(a_pts) == 0:
        return True
    a_cloud = _normalized_cloud(a_pts, tol)
    b_cloud = _normalized_cloud(b_pts, tol)
    if a_cloud is None or b_cloud is None:
        return a_cloud is None and b_cloud is None
    return _clouds_rotation_equal(a_cloud, b_cloud, tol)


def _clouds_rotation_equal(a: np.ndarray, b: np.ndarray,
                           tol: Tolerance) -> bool:
    """True if some rotation maps multiset ``a`` onto multiset ``b``."""
    slack = 40 * max(tol.abs_tol, tol.rel_tol)
    radii_a = np.linalg.norm(a, axis=1)
    radii_b = np.linalg.norm(b, axis=1)
    if not np.allclose(np.sort(radii_a), np.sort(radii_b), atol=slack):
        return False
    # Pick an anchor in a: the point with the largest radius (farthest
    # from the centroid); ties do not matter, any anchor works.
    i0 = int(np.argmax(radii_a))
    p0 = a[i0]
    r0 = radii_a[i0]
    # Second anchor: point not collinear with p0 through origin and
    # with the largest perpendicular distance from the p0 line.
    perp = np.linalg.norm(np.cross(a, p0[None, :] / max(r0, 1e-300)), axis=1)
    i1 = int(np.argmax(perp))
    collinear_cloud = perp[i1] <= slack
    candidates_0 = [j for j in range(len(b))
                    if abs(radii_b[j] - r0) <= slack]
    if collinear_cloud:
        # All points on a line through the origin: align the line.
        return _collinear_rotation_equal(a, b, i0, candidates_0, tol, slack)
    p1 = a[i1]
    r1 = radii_a[i1]
    dot01 = float(np.dot(p0, p1))
    for j0 in candidates_0:
        q0 = b[j0]
        for j1 in range(len(b)):
            if abs(radii_b[j1] - r1) > slack:
                continue
            q1 = b[j1]
            if abs(float(np.dot(q0, q1)) - dot01) > slack * max(1.0, r0 * r1):
                continue
            rot = _rotation_mapping_pairs(p0, p1, q0, q1, tol)
            if rot is None:
                continue
            if _multiset_equal(a @ rot.T, b, slack):
                return True
    return False


def _collinear_rotation_equal(a, b, i0, candidates_0, tol, slack) -> bool:
    """Handle clouds whose points all lie on a line through origin."""
    from repro.geometry.rotations import rotation_aligning

    p0 = a[i0]
    for j0 in candidates_0:
        q0 = b[j0]
        if np.linalg.norm(q0) <= slack:
            continue
        rot = rotation_aligning(p0, q0, tol)
        if _multiset_equal(a @ rot.T, b, slack):
            return True
    return False


def _rotation_mapping_pairs(p0, p1, q0, q1, tol) -> np.ndarray | None:
    """Rotation with ``R p0 = q0`` and ``R p1 = q1`` if one exists."""
    n_p = np.cross(p0, p1)
    n_q = np.cross(q0, q1)
    len_np = float(np.linalg.norm(n_p))
    len_nq = float(np.linalg.norm(n_q))
    if tol.zero(len_np) or tol.zero(len_nq):
        return None
    basis_p = _frame(p0, n_p)
    basis_q = _frame(q0, n_q)
    if basis_p is None or basis_q is None:
        return None
    rot = basis_q @ basis_p.T
    # Guard against numerically invalid frames.
    if not is_rotation_matrix(rot, LOOSE_TOL):
        return None
    return rot


def _frame(x, n) -> np.ndarray | None:
    """Right-handed orthonormal frame with first axis ∥ x, third ∥ n."""
    lx = float(np.linalg.norm(x))
    ln = float(np.linalg.norm(n))
    if lx < AXIS_NORM_FLOOR or ln < AXIS_NORM_FLOOR:
        return None
    e0 = x / lx
    e2 = n / ln
    e1 = np.cross(e2, e0)
    return np.column_stack([e0, e1, e2])


def _multiset_equal(a: np.ndarray, b: np.ndarray, slack: float) -> bool:
    """Multiset equality of two point clouds with greedy matching."""
    remaining = list(range(len(b)))
    for p in a:
        best_idx = None
        best_d = None
        for pos, j in enumerate(remaining):
            d = float(np.linalg.norm(p - b[j]))
            if best_d is None or d < best_d:
                best_d = d
                best_idx = pos
        if best_d is None or best_d > slack:
            return False
        remaining.pop(best_idx)
    return True
