"""Regular polygons embedded in 3-space: generation and detection."""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance
from repro.geometry.vectors import as_vector, normalize, orthonormal_basis_for

__all__ = [
    "regular_polygon",
    "is_regular_polygon",
    "regular_polygon_fold",
]


def regular_polygon(k: int, radius: float = 1.0, center=(0.0, 0.0, 0.0),
                    axis=(0.0, 0.0, 1.0), phase: float = 0.0) -> list[np.ndarray]:
    """Vertices of a regular ``k``-gon in the plane through ``center``
    perpendicular to ``axis``.

    ``phase`` rotates the polygon about the axis (radians).  ``k = 1``
    gives a single point offset from the center; ``k = 2`` gives two
    antipodal points (the paper treats a point as a regular 1-gon and a
    pair as a regular 2-gon).
    """
    if k < 1:
        raise GeometryError("polygon needs k >= 1 vertices")
    if radius <= 0:
        raise GeometryError("polygon radius must be positive")
    u, v, _ = orthonormal_basis_for(axis)
    c = as_vector(center)
    pts = []
    for i in range(k):
        ang = phase + 2.0 * np.pi * i / k
        pts.append(c + radius * (np.cos(ang) * u + np.sin(ang) * v))
    return pts


def is_regular_polygon(points, tol: Tolerance = DEFAULT_TOL) -> bool:
    """True if the points are the vertices of a regular polygon.

    Points must be coplanar, equidistant from their centroid, and have
    consecutive angular gaps of exactly ``2 pi / k`` about the
    centroid.  Two points always qualify (regular 2-gon); a single
    point qualifies (regular 1-gon); three or more are checked fully.
    """
    return regular_polygon_fold(points, tol) is not None


def regular_polygon_fold(points, tol: Tolerance = DEFAULT_TOL) -> int | None:
    """Return ``k`` if the points form a regular ``k``-gon, else None.

    The fold equals the number of points.  For one or two points the
    answer is 1 or 2 by the paper's convention.
    """
    pts = [as_vector(p) for p in points]
    n = len(pts)
    if n == 0:
        return None
    if n == 1:
        return 1
    if n == 2:
        return 2
    arr = np.asarray(pts)
    center = arr.mean(axis=0)
    rel = arr - center
    radii = np.linalg.norm(rel, axis=1)
    scale = float(radii.max())
    if tol.zero(scale):
        return None
    slack = 20 * max(tol.abs_tol, tol.rel_tol) * max(1.0, scale)
    if not np.allclose(radii, radii[0], atol=slack):
        return None
    # Coplanarity: normal from first two independent directions.
    normal = None
    for i in range(1, n):
        cand = np.cross(rel[0], rel[i])
        if np.linalg.norm(cand) > slack * scale:
            normal = cand / np.linalg.norm(cand)
            break
    if normal is None:
        return None  # collinear, cannot be a k-gon with k >= 3
    if not np.allclose(rel @ normal, 0.0, atol=slack):
        return None
    # Angular positions about the normal.
    u = rel[0] / np.linalg.norm(rel[0])
    v = np.cross(normal, u)
    angles = np.arctan2(rel @ v, rel @ u)
    angles = np.sort(np.mod(angles, 2.0 * np.pi))
    gaps = np.diff(np.concatenate([angles, [angles[0] + 2.0 * np.pi]]))
    expected = 2.0 * np.pi / n
    angle_slack = 40 * max(tol.abs_tol, tol.rel_tol)
    if not np.allclose(gaps, expected, atol=angle_slack):
        return None
    return n
