"""Convex polyhedra: faces, adjacency, and face centers.

The go-to-center algorithm (Algorithm 4.1 of the paper) moves each
robot toward the center of an *adjacent face* of the polyhedron the
configuration forms.  scipy's ``ConvexHull`` returns a triangulation;
this module merges coplanar triangles back into the true faces so a
cube has 6 square faces, a cuboctahedron has 8 triangles + 6 squares,
and so on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import ConvexHull

from repro.errors import GeometryError
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance

__all__ = ["Face", "ConvexPolyhedron"]


@dataclass(frozen=True)
class Face:
    """A (merged, planar) face of a convex polyhedron.

    Attributes
    ----------
    vertex_indices:
        Indices into the polyhedron's vertex array, in cyclic order
        around the face (counter-clockwise seen from outside).
    normal:
        Outward unit normal.
    center:
        Arithmetic mean of the face's vertices.
    """

    vertex_indices: tuple[int, ...]
    normal: np.ndarray
    center: np.ndarray

    @property
    def size(self) -> int:
        """Number of vertices on the face."""
        return len(self.vertex_indices)


class ConvexPolyhedron:
    """Convex hull of a 3D point set with merged coplanar faces."""

    def __init__(self, points, tol: Tolerance = DEFAULT_TOL) -> None:
        self.vertices = np.asarray(list(points), dtype=float)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise GeometryError("ConvexPolyhedron expects Nx3 points")
        if len(self.vertices) < 4:
            raise GeometryError("need at least 4 points for a 3D hull")
        self._tol = tol
        try:
            hull = ConvexHull(self.vertices)
        except Exception as exc:  # scipy raises QhullError on flat input
            raise GeometryError(f"convex hull failed: {exc}") from exc
        if len(hull.vertices) != len(self.vertices):
            raise GeometryError(
                "some points are not vertices of their convex hull")
        self.faces = self._merge_faces(hull)

    def _merge_faces(self, hull: ConvexHull) -> list[Face]:
        """Group hull simplices by (normal, offset) into true faces."""
        scale = float(np.abs(self.vertices).max())
        slack = 1e3 * self._tol.abs_tol * max(1.0, scale)
        groups: list[dict] = []
        centroid = self.vertices.mean(axis=0)
        for simplex, eq in zip(hull.simplices, hull.equations):
            normal = eq[:3]
            offset = eq[3]
            # Ensure outward orientation relative to the centroid.
            if float(np.dot(normal, centroid)) + offset > 0:
                normal = -normal
                offset = -offset
            placed = False
            for group in groups:
                if (np.linalg.norm(group["normal"] - normal) <= slack
                        and abs(group["offset"] - offset) <= slack):
                    group["vertices"].update(int(i) for i in simplex)
                    placed = True
                    break
            if not placed:
                groups.append({
                    "normal": normal.copy(),
                    "offset": float(offset),
                    "vertices": set(int(i) for i in simplex),
                })
        faces = []
        for group in groups:
            ordered = self._cyclic_order(sorted(group["vertices"]),
                                         group["normal"])
            pts = self.vertices[list(ordered)]
            faces.append(Face(
                vertex_indices=tuple(ordered),
                normal=group["normal"] / np.linalg.norm(group["normal"]),
                center=pts.mean(axis=0),
            ))
        return faces

    def _cyclic_order(self, indices: list[int], normal) -> list[int]:
        """Order face vertices counter-clockwise about the normal."""
        pts = self.vertices[indices]
        center = pts.mean(axis=0)
        n = np.asarray(normal, dtype=float)
        n = n / np.linalg.norm(n)
        rel0 = pts[0] - center
        u = rel0 - float(np.dot(rel0, n)) * n
        u = u / np.linalg.norm(u)
        v = np.cross(n, u)
        angles = np.arctan2((pts - center) @ v, (pts - center) @ u)
        order = np.argsort(angles)
        return [indices[i] for i in order]

    def faces_of_vertex(self, vertex_index: int) -> list[Face]:
        """Faces incident to a given vertex (the 'adjacent faces')."""
        return [f for f in self.faces if vertex_index in f.vertex_indices]

    def face_sizes(self) -> list[int]:
        """Sorted list of face vertex counts (a shape fingerprint)."""
        return sorted(f.size for f in self.faces)

    def edge_lengths(self) -> list[float]:
        """All edge lengths (each edge once)."""
        seen: set[tuple[int, int]] = set()
        lengths: list[float] = []
        for face in self.faces:
            idx = face.vertex_indices
            for i in range(len(idx)):
                a, b = idx[i], idx[(i + 1) % len(idx)]
                key = (min(a, b), max(a, b))
                if key not in seen:
                    seen.add(key)
                    lengths.append(float(np.linalg.norm(
                        self.vertices[a] - self.vertices[b])))
        return lengths

    def min_edge_length(self) -> float:
        """Shortest edge length of the hull."""
        return min(self.edge_lengths())
