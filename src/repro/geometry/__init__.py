"""Tolerant 3D Euclidean geometry substrate.

All higher layers (rotation groups, symmetricity, the robot simulator)
are built on the primitives exported here.  Floating point comparisons
throughout the library go through :mod:`repro.geometry.tolerance` so a
single tolerance discipline applies everywhere.
"""

from repro.geometry.tolerance import (
    DEFAULT_TOL,
    Tolerance,
    isclose,
    iszero,
    canonical_round,
)
from repro.geometry.vectors import (
    norm,
    normalize,
    distance,
    angle_between,
    orthonormal_basis_for,
    is_unit,
    are_parallel,
    are_perpendicular,
    centroid,
)
from repro.geometry.rotations import (
    rotation_about_axis,
    rotation_angle,
    rotation_axis,
    is_rotation_matrix,
    identity_rotation,
    rotation_aligning,
    random_rotation,
    rotation_order,
)
from repro.geometry.balls import (
    Ball,
    smallest_enclosing_ball,
    innermost_empty_ball,
    is_spherical,
)
from repro.geometry.transforms import Similarity, are_similar
from repro.geometry.polygons import (
    regular_polygon_fold,
    is_regular_polygon,
    regular_polygon,
)
from repro.geometry.convex import ConvexPolyhedron

__all__ = [
    "DEFAULT_TOL",
    "Tolerance",
    "isclose",
    "iszero",
    "canonical_round",
    "norm",
    "normalize",
    "distance",
    "angle_between",
    "orthonormal_basis_for",
    "is_unit",
    "are_parallel",
    "are_perpendicular",
    "centroid",
    "rotation_about_axis",
    "rotation_angle",
    "rotation_axis",
    "is_rotation_matrix",
    "identity_rotation",
    "rotation_aligning",
    "random_rotation",
    "rotation_order",
    "Ball",
    "smallest_enclosing_ball",
    "innermost_empty_ball",
    "is_spherical",
    "Similarity",
    "are_similar",
    "regular_polygon_fold",
    "is_regular_polygon",
    "regular_polygon",
    "ConvexPolyhedron",
]
