"""Tolerance discipline for floating-point geometry.

The paper's constructions live in exact real arithmetic; we reproduce
them in float64.  Every feature the algorithms depend on (edge lengths,
orbit radii, angles between rotation axes) is bounded well away from
zero for the configurations the model admits, so a uniform absolute /
relative tolerance is sound.  All comparisons in the library funnel
through this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Tolerance",
    "DEFAULT_TOL",
    "LOOSE_TOL",
    "AXIS_NORM_FLOOR",
    "SPAN_FLOOR",
    "CIRCUMSPHERE_DENOM_FLOOR",
    "ANGLE_WRAP_EPS",
    "COPLANAR_DET_FLOOR",
    "isclose",
    "iszero",
    "canonical_round",
]

# ----------------------------------------------------------------------
# Named degeneracy floors.
#
# These are NOT comparison tolerances: they guard denominators and
# norms against degenerate inputs (collinear triples, zero-length
# axes) before a division or normalization.  They live here so every
# magic threshold in the library has one audited home (the REP001
# tolerance-discipline lint forbids raw literals elsewhere).
# ----------------------------------------------------------------------

#: Norm below which a would-be axis/direction vector is treated as
#: degenerate (no usable direction).  Well below any slack the
#: algorithms compare against, far above accumulated rounding noise
#: on unit-scale data.
AXIS_NORM_FLOOR = 1e-12

#: Floor for display spans (bounding-box extents, depth ranges) when
#: normalizing coordinates for rendering: a configuration collapsed
#: to a point still gets a finite scale.
SPAN_FLOOR = 1e-9

#: Collapse threshold for the 2pi angle wraparound: canonical
#: angle encodings round to 6 decimals, so anything within half a
#: quantum of 2pi must encode as 0.0 (observers at -1e-16 and
#: +1e-16 would otherwise disagree).
ANGLE_WRAP_EPS = 5e-7

#: Floor for the circumcircle denominator ``2|AB x AC|^2`` of a point
#: triple.  The quantity is quartic in edge lengths, so the floor sits
#: at (1e-4.5)^4 — collinearity detection for unit-scale triangles.
CIRCUMSPHERE_DENOM_FLOOR = 1e-18

#: Floor for the 3x3 edge-matrix determinant of a point quadruple
#: (cubic in edge lengths): below it the four points are treated as
#: coplanar and the circumsphere falls back to triangle balls.
COPLANAR_DET_FLOOR = 1e-15


@dataclass(frozen=True)
class Tolerance:
    """Absolute and relative tolerance pair used across the library.

    Attributes
    ----------
    abs_tol:
        Absolute slack used when comparing quantities near zero.
    rel_tol:
        Relative slack used when comparing large quantities.
    """

    abs_tol: float = 1e-7
    rel_tol: float = 1e-7

    def close(self, a: float, b: float) -> bool:
        """Return True if ``a`` and ``b`` are equal within tolerance."""
        return bool(
            abs(a - b) <= max(self.abs_tol, self.rel_tol * max(abs(a), abs(b)))
        )

    def zero(self, a: float) -> bool:
        """Return True if ``a`` is zero within absolute tolerance."""
        return bool(abs(a) <= self.abs_tol)

    def scaled(self, scale: float) -> "Tolerance":
        """Return a tolerance whose absolute slack is scaled by ``scale``.

        Useful when working with configurations whose coordinates were
        multiplied by a known factor.
        """
        return Tolerance(abs_tol=self.abs_tol * max(scale, 1.0),
                         rel_tol=self.rel_tol)

    def geometric_slack(self, scale: float) -> float:
        """Distance slack for clustering / incidence tests at ``scale``.

        Used by symmetry detection and symmetricity to decide when two
        points coincide, when a point sits on an axis, and so on.  The
        factor 10 absorbs the error accumulated by chained float
        operations (differences, cross products, rotations) between the
        raw coordinates and the compared quantity.  With the default
        tolerances this equals the historical ``1e-6 * max(scale, 1)``
        slack, but it now follows a caller-supplied :class:`Tolerance`.
        """
        return 10.0 * max(self.abs_tol, self.rel_tol * max(scale, 1.0))

    def coincidence_slack(self, scale: float) -> float:
        """Distance below which two constructed points *coincide*.

        Used when deduplicating points of a synthesized orbit, when
        testing whether a rotation is the identity, and when padding
        exact kd-tree query radii.  Sits two orders of magnitude below
        :meth:`geometric_slack`: coincidence candidates are produced
        by a single exact construction (not a chained alignment), so
        their noise floor is far lower.  Equals the historical
        ``1e-9 * max(scale, 1)`` threshold with the default tolerances.
        """
        return 0.01 * max(self.abs_tol, self.rel_tol * max(scale, 1.0))

    def alignment_slack(self, scale: float) -> float:
        """Slack for quantities reconstructed through a full alignment.

        Matching a group element's image back to a concrete robot (or
        an orbit point to an axis) composes rotation estimation, frame
        conjugation and differencing; the error budget is an order of
        magnitude above :meth:`geometric_slack`.  Equals the historical
        ``1e-5 * max(scale, 1)`` slack with the default tolerances.
        """
        return 100.0 * max(self.abs_tol, self.rel_tol * max(scale, 1.0))

    def relative_slack(self, scale: float) -> float:
        """Purely relative slack ``10 * rel_tol * scale`` (no floor).

        For comparisons where the natural scale is itself the compared
        quantity (e.g. radius uniformity of a candidate polyhedron):
        an absolute floor would misclassify tiny configurations.
        Equals the historical ``1e-6 * scale`` with the defaults.
        """
        return 10.0 * self.rel_tol * scale

    def motion_slack(self, scale: float) -> float:
        """Displacement below which a robot counts as *not moved*.

        Fixpoint detection must sit far below the geometric slack:
        a robot whose destination differs from its position by mere
        conjugation/rounding noise (~1e-12 relative) has stayed put,
        while any deliberate move of the paper's procedures is a
        macroscopic fraction of the configuration's radius.  With the
        default tolerances this equals the historical
        ``1e-12 * max(scale, 1)`` threshold of the FSYNC scheduler.
        """
        return 1e-5 * max(self.abs_tol, self.rel_tol * max(scale, 1.0))

    def motion_slack_batch(self, scales: np.ndarray) -> np.ndarray:
        """:meth:`motion_slack` over an array of scales at once.

        Elementwise identical (same operations, NumPy maximum instead
        of the scalar ``max``) — the scheduler's vectorized fixpoint
        check must agree bit for bit with the historical per-robot
        comparison.
        """
        return 1e-5 * np.maximum(self.abs_tol,
                                 self.rel_tol * np.maximum(scales, 1.0))


DEFAULT_TOL = Tolerance()

#: Loose verification tolerance for matrices reconstructed from noisy
#: frames (e.g. checking that a candidate alignment is a rotation at
#: all before using it).  Two orders of magnitude looser than
#: :data:`DEFAULT_TOL` — rejection here means "numerically invalid",
#: not "not quite equal".
LOOSE_TOL = Tolerance(abs_tol=1e-5, rel_tol=1e-5)


def isclose(a: float, b: float, tol: Tolerance = DEFAULT_TOL) -> bool:
    """Return True if scalars ``a`` and ``b`` agree within ``tol``."""
    return tol.close(float(a), float(b))


def iszero(a: float, tol: Tolerance = DEFAULT_TOL) -> bool:
    """Return True if scalar ``a`` is zero within ``tol``."""
    return tol.zero(float(a))


def canonical_round(value, decimals: int = 6):
    """Round ``value`` (scalar or array) for hashing / dict keys.

    Rounding maps ``-0.0`` to ``0.0`` so keys built from rounded
    coordinates are stable across sign-of-zero noise.
    """
    rounded = np.round(np.asarray(value, dtype=float), decimals)
    rounded = rounded + 0.0  # normalizes -0.0 to 0.0
    if rounded.ndim == 0:
        return float(rounded)
    return rounded
