"""Tolerance discipline for floating-point geometry.

The paper's constructions live in exact real arithmetic; we reproduce
them in float64.  Every feature the algorithms depend on (edge lengths,
orbit radii, angles between rotation axes) is bounded well away from
zero for the configurations the model admits, so a uniform absolute /
relative tolerance is sound.  All comparisons in the library funnel
through this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Tolerance",
    "DEFAULT_TOL",
    "isclose",
    "iszero",
    "canonical_round",
]


@dataclass(frozen=True)
class Tolerance:
    """Absolute and relative tolerance pair used across the library.

    Attributes
    ----------
    abs_tol:
        Absolute slack used when comparing quantities near zero.
    rel_tol:
        Relative slack used when comparing large quantities.
    """

    abs_tol: float = 1e-7
    rel_tol: float = 1e-7

    def close(self, a: float, b: float) -> bool:
        """Return True if ``a`` and ``b`` are equal within tolerance."""
        return bool(
            abs(a - b) <= max(self.abs_tol, self.rel_tol * max(abs(a), abs(b)))
        )

    def zero(self, a: float) -> bool:
        """Return True if ``a`` is zero within absolute tolerance."""
        return bool(abs(a) <= self.abs_tol)

    def scaled(self, scale: float) -> "Tolerance":
        """Return a tolerance whose absolute slack is scaled by ``scale``.

        Useful when working with configurations whose coordinates were
        multiplied by a known factor.
        """
        return Tolerance(abs_tol=self.abs_tol * max(scale, 1.0),
                         rel_tol=self.rel_tol)

    def geometric_slack(self, scale: float) -> float:
        """Distance slack for clustering / incidence tests at ``scale``.

        Used by symmetry detection and symmetricity to decide when two
        points coincide, when a point sits on an axis, and so on.  The
        factor 10 absorbs the error accumulated by chained float
        operations (differences, cross products, rotations) between the
        raw coordinates and the compared quantity.  With the default
        tolerances this equals the historical ``1e-6 * max(scale, 1)``
        slack, but it now follows a caller-supplied :class:`Tolerance`.
        """
        return 10.0 * max(self.abs_tol, self.rel_tol * max(scale, 1.0))

    def motion_slack(self, scale: float) -> float:
        """Displacement below which a robot counts as *not moved*.

        Fixpoint detection must sit far below the geometric slack:
        a robot whose destination differs from its position by mere
        conjugation/rounding noise (~1e-12 relative) has stayed put,
        while any deliberate move of the paper's procedures is a
        macroscopic fraction of the configuration's radius.  With the
        default tolerances this equals the historical
        ``1e-12 * max(scale, 1)`` threshold of the FSYNC scheduler.
        """
        return 1e-5 * max(self.abs_tol, self.rel_tol * max(scale, 1.0))


DEFAULT_TOL = Tolerance()


def isclose(a: float, b: float, tol: Tolerance = DEFAULT_TOL) -> bool:
    """Return True if scalars ``a`` and ``b`` agree within ``tol``."""
    return tol.close(float(a), float(b))


def iszero(a: float, tol: Tolerance = DEFAULT_TOL) -> bool:
    """Return True if scalar ``a`` is zero within ``tol``."""
    return tol.zero(float(a))


def canonical_round(value, decimals: int = 6):
    """Round ``value`` (scalar or array) for hashing / dict keys.

    Rounding maps ``-0.0`` to ``0.0`` so keys built from rounded
    coordinates are stable across sign-of-zero noise.
    """
    rounded = np.round(np.asarray(value, dtype=float), decimals)
    rounded = rounded + 0.0  # normalizes -0.0 to 0.0
    if rounded.ndim == 0:
        return float(rounded)
    return rounded
