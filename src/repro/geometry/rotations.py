"""Rotation matrices: construction, identification, and utilities.

Rotations are represented as 3x3 orthogonal matrices with determinant
+1 (elements of SO(3)).  The library identifies a non-identity rotation
by its *axis* (a unit vector, defined up to sign) and *angle* in
``(0, pi]``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance
from repro.geometry.vectors import as_vector, normalize

__all__ = [
    "identity_rotation",
    "rotation_about_axis",
    "is_rotation_matrix",
    "rotation_angle",
    "rotation_axis",
    "rotation_aligning",
    "random_rotation",
    "rotation_order",
]

_MAX_ORDER_SEARCH = 400


def identity_rotation() -> np.ndarray:
    """The identity element of SO(3)."""
    return np.eye(3)


def rotation_about_axis(axis, angle: float) -> np.ndarray:
    """Rotation by ``angle`` radians about ``axis`` (Rodrigues formula).

    Positive angles follow the right-hand rule about ``axis``.
    """
    u = normalize(axis)
    c = float(np.cos(angle))
    s = float(np.sin(angle))
    ux, uy, uz = u
    cross = np.array([
        [0.0, -uz, uy],
        [uz, 0.0, -ux],
        [-uy, ux, 0.0],
    ])
    return c * np.eye(3) + s * cross + (1.0 - c) * np.outer(u, u)


def is_rotation_matrix(mat, tol: Tolerance = DEFAULT_TOL) -> bool:
    """Return True if ``mat`` is orthogonal with determinant +1."""
    arr = np.asarray(mat, dtype=float)
    if arr.shape != (3, 3):
        return False
    if not np.allclose(arr @ arr.T, np.eye(3), atol=10 * tol.abs_tol):
        return False
    return tol.close(float(np.linalg.det(arr)), 1.0)


def rotation_angle(mat, tol: Tolerance = DEFAULT_TOL) -> float:
    """Rotation angle of ``mat`` in ``[0, pi]``."""
    arr = np.asarray(mat, dtype=float)
    trace = float(np.clip((np.trace(arr) - 1.0) / 2.0, -1.0, 1.0))
    return float(np.arccos(trace))


def rotation_axis(mat, tol: Tolerance = DEFAULT_TOL) -> np.ndarray:
    """Unit axis of the non-identity rotation ``mat``.

    The sign convention follows the right-hand rule: rotating by
    :func:`rotation_angle` about the returned axis reproduces ``mat``.
    For half-turns (angle pi) the axis sign is chosen canonically
    (first nonzero coordinate positive).

    Raises
    ------
    GeometryError
        If ``mat`` is (numerically) the identity.
    """
    arr = np.asarray(mat, dtype=float)
    angle = rotation_angle(arr, tol)
    if tol.zero(angle):
        raise GeometryError("identity rotation has no axis")
    if tol.close(angle, np.pi):
        # R = 2 u u^T - I  =>  u u^T = (R + I) / 2
        sym = (arr + np.eye(3)) / 2.0
        col = sym[:, int(np.argmax(np.diag(sym)))]
        u = normalize(col, tol)
        # Canonical sign: first coordinate with |.| > tol positive.
        for coord in u:
            if not tol.zero(float(coord)):
                if coord < 0:
                    u = -u
                break
        return u
    # Axis from the antisymmetric part.
    axis = np.array([
        arr[2, 1] - arr[1, 2],
        arr[0, 2] - arr[2, 0],
        arr[1, 0] - arr[0, 1],
    ])
    return normalize(axis, tol)


def rotation_aligning(a, b, tol: Tolerance = DEFAULT_TOL) -> np.ndarray:
    """A rotation mapping direction ``a`` onto direction ``b``.

    The rotation about ``a x b`` with the minimal angle is returned.
    When ``a`` and ``b`` are antiparallel, a half-turn about a
    deterministic perpendicular axis is used.
    """
    ua = normalize(a, tol)
    ub = normalize(b, tol)
    cross = np.cross(ua, ub)
    s = float(np.linalg.norm(cross))
    c = float(np.dot(ua, ub))
    if tol.zero(s):
        if c > 0:
            return np.eye(3)
        # Antiparallel: half turn about any perpendicular axis.
        from repro.geometry.vectors import orthonormal_basis_for

        u, _, _ = orthonormal_basis_for(ua, tol)
        return rotation_about_axis(u, np.pi)
    angle = float(np.arctan2(s, c))
    return rotation_about_axis(cross, angle)


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """A rotation drawn uniformly from SO(3) (Haar measure).

    Uses the QR decomposition of a Gaussian matrix with sign fixing.
    """
    gauss = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(gauss)
    q = q @ np.diag(np.sign(np.diag(r)))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


def rotation_order(mat, tol: Tolerance = DEFAULT_TOL,
                   max_order: int = _MAX_ORDER_SEARCH) -> int | None:
    """Smallest ``k >= 1`` with ``mat^k = I``, or None if none ≤ max_order.

    Works on the rotation angle: the order is the smallest ``k`` such
    that ``k * angle`` is a multiple of ``2 pi``.
    """
    arr = np.asarray(mat, dtype=float)
    angle = rotation_angle(arr, tol)
    if tol.zero(angle):
        return 1
    for k in range(2, max_order + 1):
        total = k * angle / (2.0 * np.pi)
        if tol.close(total, round(total)) and round(total) >= 1:
            return k
    return None
