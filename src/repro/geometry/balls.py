"""Smallest enclosing ball (Welzl, 3D) and the innermost empty ball.

The paper denotes by ``B(P)`` the smallest enclosing ball of a point
(multi)set ``P``, by ``b(P)`` its center, and by ``I(P)`` the innermost
empty ball: the largest ball centered at ``b(P)`` whose interior
contains no point of ``P`` (at least one point of ``P`` lies on it).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError
from repro.geometry.tolerance import (
    CIRCUMSPHERE_DENOM_FLOOR,
    COPLANAR_DET_FLOOR,
    DEFAULT_TOL,
    Tolerance,
)

__all__ = [
    "Ball",
    "smallest_enclosing_ball",
    "innermost_empty_ball",
    "is_spherical",
]

# From this many points on, Welzl runs on the convex-hull vertices
# only (the support of the smallest enclosing ball is a subset of the
# hull).  Below the gate the historical full-set path runs unchanged,
# so small (oracle-pinned) workloads stay bit-identical.
_HULL_PRUNE_MIN = 512

# Skip hull pruning when every point lies in a thin spherical shell
# around the centroid (min radius above this fraction of the max):
# nearly every point is then a hull vertex, so Qhull — slowest exactly
# on such degenerate inputs — would do all the work for no pruning,
# while Welzl's violation scans terminate quickly anyway.
_THIN_SHELL = 0.9


@dataclass(frozen=True)
class Ball:
    """A ball in 3-space given by center and radius."""

    center: np.ndarray
    radius: float

    def contains(self, point, tol: Tolerance = DEFAULT_TOL) -> bool:
        """True if ``point`` lies in the closed ball (with slack)."""
        d = float(np.linalg.norm(np.asarray(point, dtype=float) - self.center))
        return d <= self.radius + tol.abs_tol + tol.rel_tol * max(self.radius, 1.0)

    def on_sphere(self, point, tol: Tolerance = DEFAULT_TOL) -> bool:
        """True if ``point`` lies on the bounding sphere."""
        d = float(np.linalg.norm(np.asarray(point, dtype=float) - self.center))
        return tol.close(d, self.radius)

    def strictly_inside(self, point, tol: Tolerance = DEFAULT_TOL) -> bool:
        """True if ``point`` lies in the open ball (off the sphere)."""
        d = float(np.linalg.norm(np.asarray(point, dtype=float) - self.center))
        return d < self.radius - max(tol.abs_tol, tol.rel_tol * max(self.radius, 1.0))


def _ball_from_points(points: list[np.ndarray]) -> Ball:
    """Exact smallest ball through 0..4 boundary points."""
    count = len(points)
    if count == 0:
        return Ball(center=np.zeros(3), radius=0.0)
    if count == 1:
        return Ball(center=points[0].copy(), radius=0.0)
    if count == 2:
        center = (points[0] + points[1]) / 2.0
        radius = float(np.linalg.norm(points[0] - center))
        return Ball(center=center, radius=radius)
    if count == 3:
        return _circumball_triangle(points[0], points[1], points[2])
    return _circumball_tetrahedron(points[0], points[1], points[2], points[3])


def _cross3(u, v) -> tuple[float, float, float]:
    """Cross product of two 3-tuples in scalar arithmetic.

    ``np.cross`` pays two orders of magnitude of call overhead on
    3-vectors, and the circumball helpers sit in Welzl's innermost
    recursion.
    """
    return (u[1] * v[2] - u[2] * v[1],
            u[2] * v[0] - u[0] * v[2],
            u[0] * v[1] - u[1] * v[0])


def _circumball_triangle(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> Ball:
    """Smallest ball whose sphere passes through three points.

    The center lies in the plane of the triangle (circumcenter).
    Degenerate (collinear) triples fall back to the longest-edge
    diametral ball.
    """
    ax, ay, az = a.tolist()
    bx, by, bz = b.tolist()
    cx, cy, cz = c.tolist()
    ab = (bx - ax, by - ay, bz - az)
    ac = (cx - ax, cy - ay, cz - az)
    cross = _cross3(ab, ac)
    denom = 2.0 * (cross[0] ** 2 + cross[1] ** 2 + cross[2] ** 2)
    if denom < CIRCUMSPHERE_DENOM_FLOOR:
        # Collinear: diametral ball of the farthest pair.
        pairs = [(a, b), (a, c), (b, c)]
        far = max(pairs, key=lambda pq: float(np.linalg.norm(pq[0] - pq[1])))
        center = (far[0] + far[1]) / 2.0
        return Ball(center=center, radius=float(np.linalg.norm(far[0] - center)))
    ab_sq = ab[0] ** 2 + ab[1] ** 2 + ab[2] ** 2
    ac_sq = ac[0] ** 2 + ac[1] ** 2 + ac[2] ** 2
    cross_ab = _cross3(cross, ab)
    ac_cross = _cross3(ac, cross)
    rel = ((ac_sq * cross_ab[0] + ab_sq * ac_cross[0]) / denom,
           (ac_sq * cross_ab[1] + ab_sq * ac_cross[1]) / denom,
           (ac_sq * cross_ab[2] + ab_sq * ac_cross[2]) / denom)
    center = np.array([ax + rel[0], ay + rel[1], az + rel[2]])
    radius = math.hypot(*rel)
    return Ball(center=center, radius=radius)


def _circumball_tetrahedron(a, b, c, d) -> Ball:
    """Ball whose sphere passes through four points (circumsphere)."""
    mat = np.stack([b - a, c - a, d - a])
    rhs = 0.5 * np.array([
        float(np.dot(b - a, b - a)),
        float(np.dot(c - a, c - a)),
        float(np.dot(d - a, d - a)),
    ])
    det = float(np.linalg.det(mat))
    if abs(det) < COPLANAR_DET_FLOOR:
        # Degenerate (coplanar) quadruple: fall back to triangle balls.
        best: Ball | None = None
        pts = [a, b, c, d]
        for i in range(4):
            sub = [pts[j] for j in range(4) if j != i]
            ball = _circumball_triangle(*sub)
            if all(ball.contains(p) for p in pts):
                if best is None or ball.radius < best.radius:
                    best = ball
        if best is None:
            raise GeometryError("degenerate circumsphere support set")
        return best
    rel = np.linalg.solve(mat, rhs)
    center = a + rel
    radius = float(np.linalg.norm(rel))
    return Ball(center=center, radius=radius)


def _boundary_candidates(pts: np.ndarray, tol: Tolerance) -> np.ndarray:
    """Convex-hull vertices of ``pts``.

    The support set of the smallest enclosing ball lies on the convex
    hull, so Welzl may run on the hull vertices alone.  Qhull rejects
    rank-deficient input, so the rank is detected first and flat
    configurations are projected: coplanar sets keep the property
    (their ball center lies in the plane), collinear sets reduce to
    the extreme pair.  Any Qhull failure returns the full set —
    pruning is an optimization, never a correctness dependency.
    """
    from scipy.spatial import ConvexHull, QhullError

    centered = pts - pts.mean(axis=0)
    try:
        _, sing, vt = np.linalg.svd(centered, full_matrices=False)
    except np.linalg.LinAlgError:
        return pts
    floor = tol.relative_slack(float(sing[0]))
    rank = int(np.sum(sing > floor))
    try:
        if rank >= 3:
            return pts[ConvexHull(centered).vertices]
        if rank == 2:
            return pts[ConvexHull(centered @ vt[:2].T).vertices]
        if rank == 1:
            along = centered @ vt[0]
            return pts[[int(np.argmin(along)), int(np.argmax(along))]]
        return pts[:1]
    except (QhullError, ValueError):
        return pts


def smallest_enclosing_ball(points, tol: Tolerance = DEFAULT_TOL,
                            seed: int = 0) -> Ball:
    """Smallest enclosing ball ``B(P)`` of a non-empty point set.

    Implements Welzl's randomized move-to-front algorithm.  The
    shuffle uses a deterministic seed so results are reproducible.
    Large inputs are pre-pruned to their convex-hull vertices (see
    :data:`_HULL_PRUNE_MIN`); the recursion then runs on the support
    superset only.
    """
    pts = [np.asarray(p, dtype=float) for p in points]
    if not pts:
        raise GeometryError("smallest enclosing ball of an empty set")
    if len(pts) >= _HULL_PRUNE_MIN:
        arr = np.asarray(pts, dtype=float)
        radii = np.linalg.norm(arr - arr.mean(axis=0), axis=1)
        rmax = float(radii.max())
        if rmax <= 0.0 or float(radii.min()) < _THIN_SHELL * rmax:
            pts = list(_boundary_candidates(arr, tol))
    rng = random.Random(seed)
    shuffled = pts[:]
    rng.shuffle(shuffled)
    return _welzl(np.asarray(shuffled, dtype=float), [], tol)


def _welzl(points: np.ndarray, boundary: list[np.ndarray],
           tol: Tolerance) -> Ball:
    """Welzl's recursion with a vectorized violation scan.

    Instead of testing containment point by point in Python, each pass
    finds the first point outside the current ball with one batched
    distance computation; the recursion (and therefore the computed
    ball) is identical to the sequential formulation.
    """
    if len(boundary) == 4:
        return _ball_from_points(boundary)
    ball = _ball_from_points(boundary)
    start = 0
    while start < len(points):
        tail = points[start:]
        distances = np.linalg.norm(tail - ball.center, axis=1)
        limit = (ball.radius + tol.abs_tol
                 + tol.rel_tol * max(ball.radius, 1.0))
        violations = np.nonzero(distances > limit)[0]
        if violations.size == 0:
            break
        first = start + int(violations[0])
        ball = _welzl(points[:first], boundary + [points[first]], tol)
        start = first + 1
    return ball


def innermost_empty_ball(points, center=None,
                         tol: Tolerance = DEFAULT_TOL) -> Ball:
    """Innermost empty ball ``I(P)``: centered at ``b(P)``, touching
    the nearest point of ``P``.

    ``center`` overrides the ball center (defaults to ``b(P)``).
    If a point of ``P`` sits exactly at the center, the radius is 0.
    """
    pts = np.asarray([np.asarray(p, dtype=float) for p in points],
                     dtype=float)
    if pts.size == 0:
        raise GeometryError("innermost empty ball of an empty set")
    if center is None:
        center = smallest_enclosing_ball(list(pts), tol).center
    center = np.asarray(center, dtype=float)
    radius = float(np.linalg.norm(pts - center, axis=1).min())
    return Ball(center=center, radius=radius)


def is_spherical(points, tol: Tolerance = DEFAULT_TOL) -> bool:
    """True if all points lie on the smallest enclosing sphere."""
    pts = [np.asarray(p, dtype=float) for p in points]
    ball = smallest_enclosing_ball(pts, tol)
    scale_tol = Tolerance(abs_tol=tol.abs_tol * max(1.0, ball.radius),
                          rel_tol=tol.rel_tol)
    return all(ball.on_sphere(p, scale_tol) for p in pts)
