"""Vector utilities on ``numpy`` 3-vectors.

Conventions: points and directions are ``numpy`` arrays of shape
``(3,)`` with dtype float64.  Functions accept anything convertible via
:func:`numpy.asarray`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance

__all__ = [
    "as_vector",
    "norm",
    "normalize",
    "distance",
    "angle_between",
    "orthonormal_basis_for",
    "is_unit",
    "are_parallel",
    "are_perpendicular",
    "centroid",
]


def as_vector(v) -> np.ndarray:
    """Return ``v`` as a float64 array of shape (3,)."""
    arr = np.asarray(v, dtype=float)
    if arr.shape != (3,):
        raise GeometryError(f"expected a 3-vector, got shape {arr.shape}")
    return arr


def norm(v) -> float:
    """Euclidean length of ``v``."""
    return float(np.linalg.norm(as_vector(v)))


def normalize(v, tol: Tolerance = DEFAULT_TOL) -> np.ndarray:
    """Return ``v`` scaled to unit length.

    Raises
    ------
    GeometryError
        If ``v`` is the zero vector (within tolerance).
    """
    arr = as_vector(v)
    length = float(np.linalg.norm(arr))
    if tol.zero(length):
        raise GeometryError("cannot normalize a zero vector")
    return arr / length


def distance(a, b) -> float:
    """Euclidean distance between points ``a`` and ``b``."""
    return float(np.linalg.norm(as_vector(a) - as_vector(b)))


def angle_between(a, b, tol: Tolerance = DEFAULT_TOL) -> float:
    """Angle in radians between vectors ``a`` and ``b`` (in [0, pi])."""
    ua = normalize(a, tol)
    ub = normalize(b, tol)
    dot = float(np.clip(np.dot(ua, ub), -1.0, 1.0))
    return float(np.arccos(dot))


def is_unit(v, tol: Tolerance = DEFAULT_TOL) -> bool:
    """Return True if ``v`` has unit length within tolerance."""
    return tol.close(float(np.linalg.norm(as_vector(v))), 1.0)


def are_parallel(a, b, tol: Tolerance = DEFAULT_TOL) -> bool:
    """Return True if ``a`` and ``b`` span the same line through 0."""
    ua = normalize(a, tol)
    ub = normalize(b, tol)
    cross = np.cross(ua, ub)
    return tol.zero(float(np.linalg.norm(cross)))


def are_perpendicular(a, b, tol: Tolerance = DEFAULT_TOL) -> bool:
    """Return True if ``a`` and ``b`` are orthogonal within tolerance."""
    ua = normalize(a, tol)
    ub = normalize(b, tol)
    return tol.zero(float(np.dot(ua, ub)))


def orthonormal_basis_for(w, tol: Tolerance = DEFAULT_TOL) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return a right-handed orthonormal basis ``(u, v, w̄)`` with ``w̄ ∥ w``.

    The returned third vector is ``w`` normalized; ``u`` and ``v`` are
    deterministic functions of ``w`` (no randomness), so repeated calls
    with the same axis give the same frame.
    """
    w_hat = normalize(w, tol)
    # Pick the coordinate axis least aligned with w to seed u.
    seed = np.zeros(3)
    seed[int(np.argmin(np.abs(w_hat)))] = 1.0
    u = seed - np.dot(seed, w_hat) * w_hat
    u = normalize(u, tol)
    v = np.cross(w_hat, u)
    return u, v, w_hat


def centroid(points: Iterable[Sequence[float]]) -> np.ndarray:
    """Arithmetic mean of a non-empty collection of points."""
    arr = np.asarray(list(points), dtype=float)
    if arr.size == 0:
        raise GeometryError("centroid of an empty point collection")
    return arr.mean(axis=0)
