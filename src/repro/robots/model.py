"""Robot model: local coordinate systems and observations.

Each robot ``r_i`` has a local right-handed coordinate system ``Z_i``
whose origin is always its current position and whose axis directions
and unit distance are arbitrary but fixed (Section 2).  ``Z_i`` is a
rotation plus uniform scaling of the global system: a world point ``p``
is observed as ``Z_i(p) = (1/s) Rᵀ (p - pos_i)``, and an algorithm
output ``d`` in local coordinates is the world point
``pos_i + s R d``.

An oblivious algorithm is any callable taking an :class:`Observation`
and returning the robot's next position in local coordinates.  The
scheduler never passes global information: frame-invariance of an
algorithm is exactly the property that its world-level behaviour
commutes with similarity transforms of everything.

Algorithms may additionally implement the :class:`BatchedAlgorithm`
protocol — a ``compute_batch(batch)`` method over the whole round's
:class:`BatchView` — and the scheduler will prefer it.  Batching is a
pure execution strategy: the batched method must land every robot on
the destination the per-robot callable would have chosen (the
per-robot path stays as the reference fallback, and the equivalence
suite in ``tests/properties`` holds the two together).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import SimulationError
from repro.geometry.rotations import is_rotation_matrix, random_rotation
from repro.geometry.tolerance import DEFAULT_TOL

__all__ = ["BatchView", "BatchedAlgorithm", "LocalFrame", "Observation",
           "OBLIVIOUS_STAY"]


@dataclass(frozen=True)
class LocalFrame:
    """Orientation and unit distance of a robot's coordinate system.

    The frame's origin is implicit (the robot's current position), so
    the same :class:`LocalFrame` is valid for the robot's whole
    execution even though the robot moves.
    """

    rotation: np.ndarray = field(default_factory=lambda: np.eye(3))
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise SimulationError("local frame scale must be positive")
        if not is_rotation_matrix(self.rotation):
            raise SimulationError(
                "local frames must be right-handed (rotation in SO(3))")

    def observe(self, world_point, position) -> np.ndarray:
        """Coordinates of ``world_point`` in this robot's system."""
        rel = np.asarray(world_point, dtype=float) - np.asarray(
            position, dtype=float)
        return (self.rotation.T @ rel) / self.scale

    def to_world(self, local_point, position) -> np.ndarray:
        """World position of a point given in local coordinates."""
        return np.asarray(position, dtype=float) + self.scale * (
            self.rotation @ np.asarray(local_point, dtype=float))

    def composed_with(self, rotation) -> "LocalFrame":
        """The frame rotated by a global rotation (``g ∘ frame``)."""
        return LocalFrame(rotation=np.asarray(rotation) @ self.rotation,
                          scale=self.scale)

    @staticmethod
    def random(rng: np.random.Generator,
               scale_range: tuple[float, float] = (0.25, 4.0)) -> "LocalFrame":
        """Uniformly random orientation, log-uniform unit distance."""
        low, high = scale_range
        scale = float(np.exp(rng.uniform(np.log(low), np.log(high))))
        return LocalFrame(rotation=random_rotation(rng), scale=scale)


class Observation:
    """A robot's Look-phase snapshot, in its local coordinate system.

    ``points`` contains the positions of *all* robots (itself
    included, at the origin).  ``self_index`` identifies the robot's
    own entry.  Optionally carries the target pattern ``F`` — every
    robot knows ``F`` a priori (it is part of the problem input, not of
    the observation), expressed in an arbitrary coordinate system.

    ``points`` is a read-only ``(n, 3)`` float array.  Indexing,
    iteration and ``len`` behave as the historical list of 3-vectors
    did, and ``np.asarray(observation.points)`` is free.  The array is
    marked non-writable so an algorithm cannot stash state in its own
    observation (obliviousness, REP002).
    """

    __slots__ = ("points", "self_index", "target")

    def __init__(self, points, self_index: int, target=None) -> None:
        pts = np.asarray([np.asarray(p, dtype=float) for p in points],
                         dtype=float)
        self.self_index = int(self_index)
        if not np.allclose(pts[self.self_index], 0.0,
                           atol=DEFAULT_TOL.coincidence_slack(1.0)):
            raise SimulationError("own position must be the local origin")
        pts.setflags(write=False)
        self.points = pts
        if target is None:
            self.target = None
        else:
            tgt = np.asarray([np.asarray(p, dtype=float) for p in target],
                             dtype=float)
            tgt.setflags(write=False)
            self.target = tgt

    @classmethod
    def from_rows(cls, points: np.ndarray, self_index: int,
                  target=None) -> "Observation":
        """Zero-copy observation over one row of the Look tensor.

        ``points`` must be a read-only ``(n, 3)`` view whose
        ``self_index`` row is exactly the origin — the scheduler's
        batched Look guarantees both (``rel[i, i]`` is an exact zero
        before the frame transform), so the per-point conversion and
        the origin check of the public constructor are skipped.
        """
        observation = cls.__new__(cls)
        observation.points = points
        observation.self_index = self_index
        observation.target = target
        return observation

    @property
    def n(self) -> int:
        """Number of robots observed."""
        return len(self.points)

    def own_position(self) -> np.ndarray:
        """The robot's own position (the local origin)."""
        return self.points[self.self_index]


class BatchView:
    """Whole-round Compute input for a :class:`BatchedAlgorithm`.

    Bundles the batched Look products the scheduler already has: the
    world positions, the full ``(n, n, 3)`` local-view tensor (row
    ``i`` is exactly robot ``i``'s :class:`Observation` points), and
    the stacked frames.  All arrays are read-only.

    A batched algorithm sees *more* than one robot does (the world
    frame), so obliviousness is a proof obligation on the
    implementation rather than on the interface: each returned row
    must equal what the per-robot callable computes from row ``i``
    alone.  The provided algorithms discharge it by deriving every
    class-level decision through the congruence-keyed round cache —
    the same payloads the per-robot path reads — and the equivalence
    suite enforces it.
    """

    __slots__ = ("points", "local", "rotations", "scales", "target",
                 "_config")

    def __init__(self, points: np.ndarray, local: np.ndarray,
                 rotations: np.ndarray, scales: np.ndarray,
                 target=None) -> None:
        self.points = points
        self.local = local
        self.rotations = rotations
        self.scales = scales
        self.target = target
        self._config = None

    @property
    def n(self) -> int:
        """Number of robots in the round."""
        return len(self.points)

    def configuration(self):
        """The world-frame :class:`Configuration`, built once on demand."""
        if self._config is None:
            from repro.core.configuration import Configuration

            self._config = Configuration(self.points)
        return self._config

    def observation(self, index: int) -> Observation:
        """Robot ``index``'s per-robot view (zero-copy tensor row)."""
        return Observation.from_rows(self.local[index], index,
                                     target=self.target)

    def own_rows(self) -> np.ndarray:
        """Each robot's own local position — the ``(n, 3)`` stay move.

        The diagonal of the local tensor; exact zeros by construction
        of the Look phase.
        """
        idx = np.arange(len(self.points))
        return self.local[idx, idx]

    def to_local(self, world_points: np.ndarray) -> np.ndarray:
        """Batched ``Z_i``: world destinations → per-robot local ones.

        One einsum over the stacked frames —
        ``d_i = R_iᵀ (w_i - p_i) / s_i`` for every robot at once.
        """
        from repro.backend import get_backend

        rel = np.asarray(world_points, dtype=float) - self.points
        d = get_backend().einsum("nji,nj->ni", self.rotations, rel)
        return d / self.scales[:, None]

    def to_local_rows(self, indices, world_points: np.ndarray) -> np.ndarray:
        """:meth:`to_local` for a subset of robots.

        ``world_points[j]`` is the world destination of robot
        ``indices[j]``; the result row ``j`` is that destination in
        robot ``indices[j]``'s frame.
        """
        from repro.backend import get_backend

        idx = np.asarray(indices, dtype=int)
        rel = np.asarray(world_points, dtype=float) - self.points[idx]
        d = get_backend().einsum("nji,nj->ni", self.rotations[idx], rel)
        return d / self.scales[idx, None]


@runtime_checkable
class BatchedAlgorithm(Protocol):
    """An algorithm that can compute a whole round in one shot.

    ``compute_batch`` receives the round's :class:`BatchView` and
    returns the ``(n, 3)`` *local* destinations (one row per robot, in
    that robot's own frame — the same contract as the per-robot
    callable, stacked), or ``None`` to decline the round and fall back
    to the per-robot path.
    """

    def __call__(self, observation: Observation) -> np.ndarray: ...

    def compute_batch(self, batch: BatchView) -> np.ndarray | None: ...


def OBLIVIOUS_STAY(observation: Observation) -> np.ndarray:
    """The do-nothing algorithm (robot stays put)."""
    return np.zeros(3)
