"""Robot model: local coordinate systems and observations.

Each robot ``r_i`` has a local right-handed coordinate system ``Z_i``
whose origin is always its current position and whose axis directions
and unit distance are arbitrary but fixed (Section 2).  ``Z_i`` is a
rotation plus uniform scaling of the global system: a world point ``p``
is observed as ``Z_i(p) = (1/s) Rᵀ (p - pos_i)``, and an algorithm
output ``d`` in local coordinates is the world point
``pos_i + s R d``.

An oblivious algorithm is any callable taking an :class:`Observation`
and returning the robot's next position in local coordinates.  The
scheduler never passes global information: frame-invariance of an
algorithm is exactly the property that its world-level behaviour
commutes with similarity transforms of everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.geometry.rotations import is_rotation_matrix, random_rotation
from repro.geometry.tolerance import DEFAULT_TOL

__all__ = ["LocalFrame", "Observation", "OBLIVIOUS_STAY"]


@dataclass(frozen=True)
class LocalFrame:
    """Orientation and unit distance of a robot's coordinate system.

    The frame's origin is implicit (the robot's current position), so
    the same :class:`LocalFrame` is valid for the robot's whole
    execution even though the robot moves.
    """

    rotation: np.ndarray = field(default_factory=lambda: np.eye(3))
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise SimulationError("local frame scale must be positive")
        if not is_rotation_matrix(self.rotation):
            raise SimulationError(
                "local frames must be right-handed (rotation in SO(3))")

    def observe(self, world_point, position) -> np.ndarray:
        """Coordinates of ``world_point`` in this robot's system."""
        rel = np.asarray(world_point, dtype=float) - np.asarray(
            position, dtype=float)
        return (self.rotation.T @ rel) / self.scale

    def to_world(self, local_point, position) -> np.ndarray:
        """World position of a point given in local coordinates."""
        return np.asarray(position, dtype=float) + self.scale * (
            self.rotation @ np.asarray(local_point, dtype=float))

    def composed_with(self, rotation) -> "LocalFrame":
        """The frame rotated by a global rotation (``g ∘ frame``)."""
        return LocalFrame(rotation=np.asarray(rotation) @ self.rotation,
                          scale=self.scale)

    @staticmethod
    def random(rng: np.random.Generator,
               scale_range: tuple[float, float] = (0.25, 4.0)) -> "LocalFrame":
        """Uniformly random orientation, log-uniform unit distance."""
        low, high = scale_range
        scale = float(np.exp(rng.uniform(np.log(low), np.log(high))))
        return LocalFrame(rotation=random_rotation(rng), scale=scale)


class Observation:
    """A robot's Look-phase snapshot, in its local coordinate system.

    ``points`` contains the positions of *all* robots (itself
    included, at the origin).  ``self_index`` identifies the robot's
    own entry.  Optionally carries the target pattern ``F`` — every
    robot knows ``F`` a priori (it is part of the problem input, not of
    the observation), expressed in an arbitrary coordinate system.
    """

    def __init__(self, points, self_index: int, target=None) -> None:
        self.points = [np.asarray(p, dtype=float) for p in points]
        self.self_index = int(self_index)
        if not np.allclose(self.points[self.self_index], 0.0,
                           atol=DEFAULT_TOL.coincidence_slack(1.0)):
            raise SimulationError("own position must be the local origin")
        self.target = None if target is None else [
            np.asarray(p, dtype=float) for p in target]

    @property
    def n(self) -> int:
        """Number of robots observed."""
        return len(self.points)

    def own_position(self) -> np.ndarray:
        """The robot's own position (the local origin)."""
        return self.points[self.self_index]


def OBLIVIOUS_STAY(observation: Observation) -> np.ndarray:
    """The do-nothing algorithm (robot stays put)."""
    return np.zeros(3)
