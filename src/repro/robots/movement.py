"""Movement models: rigid and non-rigid Move phases.

The paper assumes *rigid* movement (footnote 1 of Section 1): each
robot reaches its computed destination within its Move phase.  The
*non-rigid* alternative from the broader literature lets an adversary
stop a robot anywhere along the segment to its destination, as long as
it has travelled at least an unknown minimum distance ``δ`` (robots
closer than ``δ`` to their destination do reach it).

The scheduler takes a movement model so the rigidity assumption can be
ablated: the paper's algorithms are correct for rigid movement, and
the benchmarks show which behaviours survive a non-rigid adversary.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.errors import SimulationError

__all__ = ["MovementModel", "RigidMovement", "NonRigidMovement"]


class MovementModel(Protocol):
    """Maps an intended move to the position actually reached."""

    def execute(self, start: np.ndarray,
                destination: np.ndarray) -> np.ndarray:
        """Position reached during one Move phase."""
        ...


class RigidMovement:
    """The paper's model: every robot reaches its destination."""

    def execute(self, start: np.ndarray,
                destination: np.ndarray) -> np.ndarray:
        return np.asarray(destination, dtype=float)


class NonRigidMovement:
    """Adversarial non-rigid movement with minimum distance ``δ``.

    The adversary (driven by ``rng``) stops each robot at a uniformly
    random point of the segment beyond the guaranteed ``δ`` prefix.
    Tracks the paper's definition: if the whole track is shorter than
    ``δ`` the robot reaches its destination.
    """

    def __init__(self, delta: float, rng: np.random.Generator) -> None:
        if delta <= 0:
            raise SimulationError("minimum moving distance must be > 0")
        self.delta = float(delta)
        self._rng = rng

    def execute(self, start: np.ndarray,
                destination: np.ndarray) -> np.ndarray:
        start = np.asarray(start, dtype=float)
        destination = np.asarray(destination, dtype=float)
        track = float(np.linalg.norm(destination - start))
        if track <= self.delta:
            return destination
        fraction = self._rng.uniform(self.delta / track, 1.0)
        return start + fraction * (destination - start)
