"""Movement models: rigid and non-rigid Move phases.

The paper assumes *rigid* movement (footnote 1 of Section 1): each
robot reaches its computed destination within its Move phase.  The
*non-rigid* alternative from the broader literature lets an adversary
stop a robot anywhere along the segment to its destination, as long as
it has travelled at least an unknown minimum distance ``δ`` (robots
closer than ``δ`` to their destination do reach it).

The scheduler takes a movement model so the rigidity assumption can be
ablated: the paper's algorithms are correct for rigid movement, and
the benchmarks show which behaviours survive a non-rigid adversary.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.errors import SimulationError

__all__ = ["MovementModel", "RigidMovement", "NonRigidMovement"]


class MovementModel(Protocol):
    """Maps an intended move to the position actually reached."""

    def execute(self, start: np.ndarray,
                destination: np.ndarray) -> np.ndarray:
        """Position reached during one Move phase."""
        ...

    def execute_batch(self, starts: np.ndarray,
                      destinations: np.ndarray) -> np.ndarray:
        """Whole-round Move: ``(n, 3)`` starts → ``(n, 3)`` reached.

        Must equal stacking ``execute`` row by row (in index order —
        adversarial models consume their random stream per robot).
        The scheduler falls back to the per-robot ``execute`` loop for
        models that do not provide it.
        """
        ...


class RigidMovement:
    """The paper's model: every robot reaches its destination."""

    def execute(self, start: np.ndarray,
                destination: np.ndarray) -> np.ndarray:
        return np.asarray(destination, dtype=float)

    def execute_batch(self, starts: np.ndarray,
                      destinations: np.ndarray) -> np.ndarray:
        return np.asarray(destinations, dtype=float)


class NonRigidMovement:
    """Adversarial non-rigid movement with minimum distance ``δ``.

    The adversary (driven by ``rng``) stops each robot at a uniformly
    random point of the segment beyond the guaranteed ``δ`` prefix.
    Tracks the paper's definition: if the whole track is shorter than
    ``δ`` the robot reaches its destination.
    """

    def __init__(self, delta: float, rng: np.random.Generator) -> None:
        if delta <= 0:
            raise SimulationError("minimum moving distance must be > 0")
        self.delta = float(delta)
        self._rng = rng

    def execute(self, start: np.ndarray,
                destination: np.ndarray) -> np.ndarray:
        start = np.asarray(start, dtype=float)
        destination = np.asarray(destination, dtype=float)
        track = float(np.linalg.norm(destination - start))
        if track <= self.delta:
            return destination
        fraction = self._rng.uniform(self.delta / track, 1.0)
        return start + fraction * (destination - start)

    def execute_batch(self, starts: np.ndarray,
                      destinations: np.ndarray) -> np.ndarray:
        starts = np.asarray(starts, dtype=float)
        destinations = np.asarray(destinations, dtype=float)
        reached = destinations.copy()
        tracks = np.linalg.norm(destinations - starts, axis=1)
        # One rng draw per stopped robot, in index order — the exact
        # stream the per-robot execute loop consumes, so a run is
        # bit-reproducible across the two Move paths.
        for i in np.nonzero(tracks > self.delta)[0]:
            fraction = self._rng.uniform(self.delta / float(tracks[i]), 1.0)
            reached[i] = starts[i] + fraction * (destinations[i] - starts[i])
        return reached
