"""The fully-synchronous (FSYNC) Look–Compute–Move scheduler.

All robots execute each cycle simultaneously: every robot observes the
same configuration ``P(t)``, computes its next position with the common
algorithm, and all movements are applied at once to produce
``P(t+1)``.  Movement is rigid (robots jump to their destinations).

The scheduler is the tracing anchor of the pipeline: every ``run``
opens a ``run`` span, every cycle a ``round`` span, and the three
phases open ``look`` / ``compute`` / ``move`` spans inside it
(:mod:`repro.obs.trace`; all no-ops unless a tracer is active).
Logical counters (``scheduler.rounds``, ``scheduler.observations``,
...) go to the metrics registry (:mod:`repro.obs.metrics`) — wall
clock readings never do, and never reach rows (REP005).

The Compute phase has two execution strategies.  When the algorithm
implements :class:`repro.robots.model.BatchedAlgorithm` (a
``compute_batch`` method) the whole round is computed in one call over
the ``(n, n, 3)`` local-view tensor.  Otherwise — or when the batched
method declines, or batching is disabled via ``set_batched_compute`` /
``REPRO_BATCHED_COMPUTE=0`` — the per-robot reference loop runs, and
the ``scheduler.batched_fallbacks`` counter records it.  Either way
the local destinations are mapped to world coordinates by a single
batched ``to_world`` einsum and the Move phase applies them through
``movement.execute_batch`` in one shot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.backend import get_backend
from repro.core.configuration import Configuration
from repro.errors import SimulationError
from repro.geometry.tolerance import DEFAULT_TOL
from repro.obs import metrics as _metrics
from repro.obs.trace import get_tracer
from repro.robots.model import BatchView, LocalFrame, Observation

__all__ = ["ExecutionResult", "FsyncScheduler", "batched_compute_enabled",
           "set_batched_compute"]


_BATCHED_COMPUTE = os.environ.get("REPRO_BATCHED_COMPUTE", "1") != "0"


def set_batched_compute(enabled: bool) -> None:
    """Process-wide default for the batched Compute strategy.

    The per-robot path is the reference implementation; forcing it
    (``set_batched_compute(False)`` or ``REPRO_BATCHED_COMPUTE=0``)
    must not change any row — the equivalence suite runs both ways.
    """
    global _BATCHED_COMPUTE
    _BATCHED_COMPUTE = bool(enabled)


def batched_compute_enabled() -> bool:
    """Whether schedulers currently prefer ``compute_batch``."""
    return _BATCHED_COMPUTE


@dataclass
class ExecutionResult:
    """Trace of an FSYNC execution.

    Attributes
    ----------
    configurations:
        ``P(0), P(1), ..., P(T)`` — every configuration reached.
    reached:
        True if the stop condition fired.
    fixpoint:
        True if the run ended because no robot moved for a round.
    rounds:
        Number of Look–Compute–Move cycles executed.
    cache_stats:
        Congruence-cache activity attributable to this run: the
        difference of :func:`repro.obs.metrics.l1_snapshot` calls
        taken around the execution — the same source the CLI's
        ``--cache-stats`` render reads, so the two can never
        disagree.  A healthy run shows at most one symmetry-cache
        miss per congruence class per round; the robots' ``n`` local
        observations of each round are hits.
    """

    configurations: list[Configuration]
    reached: bool
    fixpoint: bool
    cache_stats: dict = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return len(self.configurations) - 1

    @property
    def final(self) -> Configuration:
        return self.configurations[-1]


class FsyncScheduler:
    """Runs a common oblivious algorithm under the FSYNC model.

    Parameters
    ----------
    algorithm:
        Callable ``Observation -> local destination`` shared by all
        robots (they are uniform and anonymous).
    frames:
        One :class:`LocalFrame` per robot; fixed for the whole run.
    target:
        Optional pattern ``F`` handed to every robot (see
        :class:`Observation`).
    """

    def __init__(self, algorithm: Callable[[Observation], np.ndarray],
                 frames: list[LocalFrame], target=None,
                 movement=None, batched: bool | None = None) -> None:
        from repro.robots.movement import RigidMovement

        self.algorithm = algorithm
        self.frames = list(frames)
        self.target = target
        self.movement = movement if movement is not None else RigidMovement()
        # None defers to the process-wide default at step time, so
        # set_batched_compute() also affects already-built schedulers.
        self.batched = batched
        # The frames are fixed for the whole run, so their rotations
        # and unit distances are stacked once and the Look phase of
        # every round becomes a single batched transform.
        self._rotations = np.stack(
            [f.rotation for f in self.frames]) if self.frames \
            else np.zeros((0, 3, 3))
        self._scales = np.asarray([f.scale for f in self.frames],
                                  dtype=float)
        # Z_i as one matrix: local = rel @ (R_i / s_i) — the scale is
        # folded into the stacked rotations so the Look phase is a
        # single BLAS batched matmul with no separate division pass
        # over the (n, n, 3) tensor.
        self._view_mats = self._rotations / self._scales[:, None, None] \
            if self.frames else self._rotations
        # The target pattern is known a priori in an arbitrary global
        # frame; handing each robot the same array models that (robots
        # may not correlate it with their local axes, and the provided
        # algorithms never do — they only use F up to similarity).
        if target is None:
            self._target_rows = None
        else:
            rows = np.asarray([np.asarray(p, dtype=float) for p in target],
                              dtype=float)
            rows.setflags(write=False)
            self._target_rows = rows

    def step(self, points: list[np.ndarray]) -> list[np.ndarray]:
        """One synchronized Look–Compute–Move cycle.

        The Look phase is batched: all ``n`` local views come from one
        stacked transform ``local[i, k] = R_iᵀ (p_k - p_i) / s_i`` over
        the ``n×n`` observation tensor instead of ``n²`` per-pair
        ``frame.observe`` calls.
        """
        if len(points) != len(self.frames):
            raise SimulationError("one frame per robot is required")
        n = len(points)
        tracer = get_tracer()
        with tracer.span("round", n=n):
            with tracer.span("look", n=n):
                pts = np.asarray(points, dtype=float)
                if pts.shape != (n, 3):
                    raise SimulationError("positions must be 3-vectors")
                rel = pts[None, :, :] - pts[:, None, :]
                # local[i, k] = R_iᵀ (p_k - p_i) / s_i, via the folded
                # view matrices: rel[i] @ (R_i / s_i) for all i in one
                # BLAS batched matmul (see __init__).
                local = get_backend().matmul(rel, self._view_mats)
                local.setflags(write=False)
            with tracer.span("compute", n=n):
                local_dest = self._compute_batched(pts, local)
                if local_dest is None:
                    local_dest = self._compute_per_robot(local)
                # One batched to_world over the stacked frames:
                # w_i = p_i + s_i R_i d_i for all robots at once.
                world_targets = pts + self._scales[:, None] * get_backend(
                    ).einsum("nij,nj->ni", self._rotations, local_dest)
            with tracer.span("move", n=n):
                execute_batch = getattr(self.movement, "execute_batch",
                                        None)
                if execute_batch is not None:
                    reached = np.asarray(execute_batch(pts, world_targets),
                                         dtype=float)
                else:
                    reached = np.asarray(
                        [self.movement.execute(pos, world_target)
                         for pos, world_target
                         in zip(pts, world_targets)], dtype=float)
                reached.setflags(write=False)
        _metrics.inc("scheduler.rounds")
        _metrics.inc("scheduler.observations", n)
        return list(reached)

    def _compute_batched(self, pts: np.ndarray,
                         local: np.ndarray) -> np.ndarray | None:
        """The whole-round Compute, when the algorithm supports it."""
        compute_batch = getattr(self.algorithm, "compute_batch", None)
        if compute_batch is None:
            return None
        use_batched = self.batched if self.batched is not None \
            else _BATCHED_COMPUTE
        if not use_batched:
            return None
        batch = BatchView(pts, local, self._rotations, self._scales,
                          target=self._target_rows)
        result = compute_batch(batch)
        if result is None:
            return None
        local_dest = np.asarray(result, dtype=float)
        if local_dest.shape != local.shape[:1] + (3,) \
                or not np.all(np.isfinite(local_dest)):
            raise SimulationError(
                "batched algorithm must return one finite 3-vector "
                "per robot")
        return local_dest

    def _compute_per_robot(self, local: np.ndarray) -> np.ndarray:
        """The per-robot reference Compute loop (zero-copy views)."""
        n = len(local)
        _metrics.inc("scheduler.batched_fallbacks")
        local_dest = np.empty((n, 3), dtype=float)
        for i in range(n):
            observation = Observation.from_rows(
                local[i], i, target=self._target_rows)
            d = np.asarray(self.algorithm(observation), dtype=float)
            if d.shape != (3,) or not np.all(np.isfinite(d)):
                raise SimulationError(
                    "algorithm must return a finite 3-vector")
            local_dest[i] = d
        return local_dest

    def run(self, initial_points,
            stop_condition: Callable[[Configuration], bool] | None = None,
            max_rounds: int = 50) -> ExecutionResult:
        """Run until the stop condition, a fixpoint, or the round cap.

        Raises
        ------
        SimulationError
            If ``max_rounds`` cycles pass without reaching the stop
            condition or a fixpoint — FSYNC algorithms in this paper
            terminate in a small constant number of rounds, so hitting
            the cap indicates a bug.
        """
        tracer = get_tracer()
        _metrics.inc("scheduler.runs")
        before = _metrics.l1_snapshot()

        def finish(trace, reached, fixpoint) -> ExecutionResult:
            result = ExecutionResult(
                trace, reached=reached, fixpoint=fixpoint,
                cache_stats=_metrics.l1_delta(
                    before, _metrics.l1_snapshot()))
            _metrics.registry().observe("scheduler.rounds_per_run",
                                        result.rounds)
            return result

        from repro.perf.round import prime_symmetry

        with tracer.span("run", n=len(initial_points)):
            points = [np.asarray(p, dtype=float) for p in initial_points]
            trace = [Configuration(points)]
            if stop_condition is not None and stop_condition(trace[-1]):
                return finish(trace, reached=True, fixpoint=False)
            for _ in range(max_rounds):
                new_points = self.step(points)
                # Vectorized fixpoint check — motion_slack_batch is
                # elementwise identical to the historical per-robot
                # motion_slack comparison.
                old = np.asarray(points, dtype=float)
                new = np.asarray(new_points, dtype=float)
                moved = bool(np.any(
                    np.linalg.norm(new - old, axis=1)
                    > DEFAULT_TOL.motion_slack_batch(
                        np.linalg.norm(old, axis=1))))
                points = new_points
                new_config = Configuration(points)
                # Incremental γ(P): when the round's displacement is
                # coherent, the previous certified group is conjugated
                # and seeded so this round's observations (and the stop
                # condition) skip a fresh full detection.
                prime_symmetry(trace[-1], new_config)
                trace.append(new_config)
                if stop_condition is not None and stop_condition(trace[-1]):
                    return finish(trace, reached=True, fixpoint=False)
                if not moved:
                    return finish(trace, reached=False, fixpoint=True)
            if stop_condition is None:
                return finish(trace, reached=False, fixpoint=False)
        raise SimulationError(
            f"execution did not terminate within {max_rounds} rounds")
