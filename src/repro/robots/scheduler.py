"""The fully-synchronous (FSYNC) Look–Compute–Move scheduler.

All robots execute each cycle simultaneously: every robot observes the
same configuration ``P(t)``, computes its next position with the common
algorithm, and all movements are applied at once to produce
``P(t+1)``.  Movement is rigid (robots jump to their destinations).

The scheduler is the tracing anchor of the pipeline: every ``run``
opens a ``run`` span, every cycle a ``round`` span, and the three
phases open ``look`` / ``compute`` / ``move`` spans inside it
(:mod:`repro.obs.trace`; all no-ops unless a tracer is active).
Logical counters (``scheduler.rounds``, ``scheduler.observations``,
...) go to the metrics registry (:mod:`repro.obs.metrics`) — wall
clock readings never do, and never reach rows (REP005).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.backend import get_backend
from repro.core.configuration import Configuration
from repro.errors import SimulationError
from repro.geometry.tolerance import DEFAULT_TOL
from repro.obs import metrics as _metrics
from repro.obs.trace import get_tracer
from repro.robots.model import LocalFrame, Observation

__all__ = ["ExecutionResult", "FsyncScheduler"]


@dataclass
class ExecutionResult:
    """Trace of an FSYNC execution.

    Attributes
    ----------
    configurations:
        ``P(0), P(1), ..., P(T)`` — every configuration reached.
    reached:
        True if the stop condition fired.
    fixpoint:
        True if the run ended because no robot moved for a round.
    rounds:
        Number of Look–Compute–Move cycles executed.
    cache_stats:
        Congruence-cache activity attributable to this run: the
        difference of :func:`repro.obs.metrics.l1_snapshot` calls
        taken around the execution — the same source the CLI's
        ``--cache-stats`` render reads, so the two can never
        disagree.  A healthy run shows at most one symmetry-cache
        miss per congruence class per round; the robots' ``n`` local
        observations of each round are hits.
    """

    configurations: list[Configuration]
    reached: bool
    fixpoint: bool
    cache_stats: dict = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return len(self.configurations) - 1

    @property
    def final(self) -> Configuration:
        return self.configurations[-1]


class FsyncScheduler:
    """Runs a common oblivious algorithm under the FSYNC model.

    Parameters
    ----------
    algorithm:
        Callable ``Observation -> local destination`` shared by all
        robots (they are uniform and anonymous).
    frames:
        One :class:`LocalFrame` per robot; fixed for the whole run.
    target:
        Optional pattern ``F`` handed to every robot (see
        :class:`Observation`).
    """

    def __init__(self, algorithm: Callable[[Observation], np.ndarray],
                 frames: list[LocalFrame], target=None,
                 movement=None) -> None:
        from repro.robots.movement import RigidMovement

        self.algorithm = algorithm
        self.frames = list(frames)
        self.target = target
        self.movement = movement if movement is not None else RigidMovement()
        # The frames are fixed for the whole run, so their rotations
        # and unit distances are stacked once and the Look phase of
        # every round becomes a single batched transform.
        self._rotations = np.stack(
            [f.rotation for f in self.frames]) if self.frames \
            else np.zeros((0, 3, 3))
        self._scales = np.asarray([f.scale for f in self.frames],
                                  dtype=float)

    def step(self, points: list[np.ndarray]) -> list[np.ndarray]:
        """One synchronized Look–Compute–Move cycle.

        The Look phase is batched: all ``n`` local views come from one
        stacked transform ``local[i, k] = R_iᵀ (p_k - p_i) / s_i`` over
        the ``n×n`` observation tensor instead of ``n²`` per-pair
        ``frame.observe`` calls.
        """
        if len(points) != len(self.frames):
            raise SimulationError("one frame per robot is required")
        n = len(points)
        tracer = get_tracer()
        with tracer.span("round", n=n):
            with tracer.span("look", n=n):
                pts = np.asarray(points, dtype=float)
                rel = pts[None, :, :] - pts[:, None, :]
                local = get_backend().einsum("nji,nkj->nki",
                                             self._rotations, rel)
                local /= self._scales[:, None, None]
                local.setflags(write=False)
            with tracer.span("compute", n=n):
                world_targets = []
                for i, (pos, frame) in enumerate(zip(points, self.frames)):
                    observation = Observation(
                        list(local[i]), self_index=i,
                        target=self._local_target(frame))
                    d = np.asarray(self.algorithm(observation), dtype=float)
                    if d.shape != (3,) or not np.all(np.isfinite(d)):
                        raise SimulationError(
                            "algorithm must return a finite 3-vector")
                    world_targets.append(frame.to_world(d, pos))
            with tracer.span("move", n=n):
                destinations = [
                    self.movement.execute(pos, world_target)
                    for pos, world_target in zip(points, world_targets)]
        _metrics.inc("scheduler.rounds")
        _metrics.inc("scheduler.observations", n)
        return destinations

    def _local_target(self, frame: LocalFrame):
        # The target pattern is known a priori in an arbitrary global
        # frame; handing each robot the same list models that (robots
        # may not correlate it with their local axes, and the provided
        # algorithms never do — they only use F up to similarity).
        return self.target

    def run(self, initial_points,
            stop_condition: Callable[[Configuration], bool] | None = None,
            max_rounds: int = 50) -> ExecutionResult:
        """Run until the stop condition, a fixpoint, or the round cap.

        Raises
        ------
        SimulationError
            If ``max_rounds`` cycles pass without reaching the stop
            condition or a fixpoint — FSYNC algorithms in this paper
            terminate in a small constant number of rounds, so hitting
            the cap indicates a bug.
        """
        tracer = get_tracer()
        _metrics.inc("scheduler.runs")
        before = _metrics.l1_snapshot()

        def finish(trace, reached, fixpoint) -> ExecutionResult:
            result = ExecutionResult(
                trace, reached=reached, fixpoint=fixpoint,
                cache_stats=_metrics.l1_delta(
                    before, _metrics.l1_snapshot()))
            _metrics.registry().observe("scheduler.rounds_per_run",
                                        result.rounds)
            return result

        from repro.perf.round import prime_symmetry

        with tracer.span("run", n=len(initial_points)):
            points = [np.asarray(p, dtype=float) for p in initial_points]
            trace = [Configuration(points)]
            if stop_condition is not None and stop_condition(trace[-1]):
                return finish(trace, reached=True, fixpoint=False)
            for _ in range(max_rounds):
                new_points = self.step(points)
                moved = any(
                    float(np.linalg.norm(a - b))
                    > DEFAULT_TOL.motion_slack(float(np.linalg.norm(b)))
                    for a, b in zip(new_points, points))
                points = new_points
                new_config = Configuration(points)
                # Incremental γ(P): when the round's displacement is
                # coherent, the previous certified group is conjugated
                # and seeded so this round's observations (and the stop
                # condition) skip a fresh full detection.
                prime_symmetry(trace[-1], new_config)
                trace.append(new_config)
                if stop_condition is not None and stop_condition(trace[-1]):
                    return finish(trace, reached=True, fixpoint=False)
                if not moved:
                    return finish(trace, reached=False, fixpoint=True)
            if stop_condition is None:
                return finish(trace, reached=False, fixpoint=False)
        raise SimulationError(
            f"execution did not terminate within {max_rounds} rounds")
