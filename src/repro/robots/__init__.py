"""FSYNC mobile-robot simulator: local frames, scheduler, adversary.

Implements the paper's computation model (Section 2): anonymous point
robots executing synchronized Look–Compute–Move cycles, each observing
the configuration in its own right-handed local coordinate system with
arbitrary orientation and unit distance, moving rigidly to the computed
point.
"""

from repro.robots.model import LocalFrame, Observation, OBLIVIOUS_STAY
from repro.robots.scheduler import FsyncScheduler, ExecutionResult
from repro.robots.adversary import (
    random_frames,
    identity_frames,
    symmetric_frames,
)

__all__ = [
    "LocalFrame",
    "Observation",
    "OBLIVIOUS_STAY",
    "FsyncScheduler",
    "ExecutionResult",
    "random_frames",
    "identity_frames",
    "symmetric_frames",
]
