"""Algorithm 4.2 — ``ψ_SYM``: show the symmetricity of the swarm.

``ψ_SYM`` translates any initial configuration ``P`` into a terminal
configuration ``P'`` with ``γ(P') ∈ ϱ(P)`` (Theorem 4.1) by repeatedly
removing occupied rotation axes:

* a robot at ``b(P)`` leaves the center (*go-to-sphere*);
* when several orbits share the enclosing sphere, the last orbit
  jumps outward (*Expand*) so the enclosing ball stays pinned while
  inner orbits move;
* the first orbit occupying rotation axes is brought strictly inside
  every other orbit (*Shrink*), then sent off its axes —
  *go-to-sphere* for cyclic groups / occupied principal axes,
  *go-to-corner* for occupied secondary axes of dihedral groups, and
  *go-to-center* (Algorithm 4.1) for the polyhedral groups.

Terminal configurations satisfy: ``γ(P') = C_1``, or ``P'`` is a
regular polygon, or no robot is on any rotation axis of ``γ(P')`` —
and then every orbit of the ``γ(P')``-decomposition has exactly
``|γ(P')|`` robots, which is what the pattern formation phase needs.

Deviations from the paper's pseudo-code (documented in DESIGN.md):

* *Expand* sends the last orbit to radius ``2·rad(B(P))`` (the paper's
  text says ``2·rad(I(P))``, which can move the outermost orbit
  *inward* and cannot achieve the procedure's stated purpose of
  pinning the enclosing ball; we read it as a typo).
* Collinear configurations (infinite rotation groups, which the paper
  leaves implicit) are handled by moving the innermost orbit off the
  line, after which the finite machinery applies.
"""

from __future__ import annotations

import numpy as np

from repro.core.configuration import Configuration
from repro.core.decomposition import principal_axis_of_d2
from repro.core.local_views import ordered_orbits
from repro.errors import SimulationError
from repro.geometry.polygons import regular_polygon_fold
from repro.geometry.rotations import rotation_about_axis
from repro.geometry.tolerance import DEFAULT_TOL, canonical_round
from repro.groups.group import GroupKind, RotationGroup
from repro.robots.algorithms.go_to_center import go_to_center_destination
from repro.robots.model import Observation

__all__ = ["psi_sym", "is_sym_terminal"]

_GOLDEN_ANGLE = np.pi * (3.0 - np.sqrt(5.0))


def is_sym_terminal(config: Configuration) -> bool:
    """True if ``ψ_SYM`` outputs 'stay' at every robot of ``config``."""
    report = config.symmetry
    if report.kind == "degenerate":
        return True
    if report.kind == "collinear":
        return False
    if report.center_occupied:
        return False
    group = report.group
    if group.is_trivial:
        return True
    if regular_polygon_fold(config.points) is not None:
        return True
    return not any(axis.occupied for axis in group.axes)


class _PsiSym:
    """``ψ_SYM`` as a callable: per-robot reference + batched strategy.

    The batched path (``compute_batch``) runs the branch analysis of
    :func:`_psi_sym_move` once in the world frame — every predicate it
    evaluates (symmetry kind, center occupancy, orbit ordering, the
    Expand guard, which orbit sits on occupied axes) is similarity-
    invariant, so the decision is the one each robot reaches from its
    own observation.  Frame-*independent* moves (Expand, Shrink) are
    then pure vectorized radial formulas; frame-*dependent* moves
    (go-to-sphere, go-to-corner, go-to-center — the symmetry-breaking
    choices, at most one orbit of at most ``|G|`` robots) delegate to
    the per-robot reference on zero-copy tensor rows.
    """

    def __call__(self, observation: Observation) -> np.ndarray:
        """``ψ_SYM`` for one robot: next position in local coordinates."""
        move = _psi_sym_move(observation)
        return observation.own_position() if move is None else move

    def compute_batch(self, batch) -> np.ndarray:
        config = batch.configuration()
        report = config.symmetry
        destinations = np.array(batch.own_rows(), dtype=float)
        if report.kind == "degenerate":
            return destinations

        def delegate(indices) -> None:
            for i in indices:
                destinations[i] = self(batch.observation(int(i)))

        center = config.center
        radius = float(config.radius)
        slack = DEFAULT_TOL.geometric_slack(radius)
        world = np.asarray(batch.points, dtype=float)
        dists = np.linalg.norm(world - center, axis=1)
        at_center = np.nonzero(dists <= slack)[0]
        delegate(at_center)  # go-to-sphere, frame-dependent direction

        if report.kind == "collinear":
            positive = dists[dists > slack]
            inner = float(positive.min()) if positive.size else radius
            movers = np.nonzero((dists > slack)
                                & (dists <= inner + 10 * slack))[0]
            delegate(movers)  # leave the line, frame-dependent
            return destinations

        group = report.group
        if group.is_trivial:
            return destinations
        if regular_polygon_fold(config.points) is not None:
            return destinations
        if not any(axis.occupied for axis in group.axes):
            return destinations

        orbits = ordered_orbits(config, group)

        def off_center(orbit) -> list[int]:
            return [i for i in orbit if dists[i] > slack]

        def shrink_rows(orbit: list[int]) -> None:
            # "others" excludes the whole selected orbit (the
            # per-robot _shrink semantics), even though only its
            # off-center members move.
            orbit_set = set(orbit)
            others = dists[[i for i in range(batch.n)
                            if i not in orbit_set]]
            inner = float(others.min())
            movers = off_center(orbit)
            rel = world[movers] - center
            r = np.linalg.norm(rel, axis=1)
            wdest = center + rel * (inner / 2.0 / r)[:, None]
            destinations[movers] = batch.to_local_rows(movers, wdest)

        if group.spec.kind is not GroupKind.CYCLIC:
            on_ball = {int(i) for i
                       in np.nonzero(dists >= radius - 10 * slack)[0]}
            if on_ball != set(orbits[-1]):
                movers = off_center(orbits[-1])
                rel = world[movers] - center
                r = np.linalg.norm(rel, axis=1)
                wdest = center + rel * (2.0 * radius / r)[:, None]
                destinations[movers] = batch.to_local_rows(movers, wdest)
                return destinations

        kind = group.spec.kind
        if kind is GroupKind.CYCLIC:
            axis = group.axes[0].direction
            selected = _first_orbit_on_lines(config, orbits, [axis])
            if selected is None:
                return destinations
            if selected != orbits[0]:
                shrink_rows(selected)
            else:
                delegate(off_center(selected))  # go-to-sphere
            return destinations

        if kind is GroupKind.DIHEDRAL:
            if group.spec.param == 2:
                principal = principal_axis_of_d2(config, group)
            else:
                principal = group.principal_axis.direction
            secondary = [a.direction for a in group.axes
                         if float(abs(np.dot(a.direction, principal)))
                         < DEFAULT_TOL.geometric_slack(1.0)]
            on_principal = _first_orbit_on_lines(config, orbits,
                                                 [principal])
            if on_principal is not None:
                if on_principal != orbits[0]:
                    shrink_rows(on_principal)
                else:
                    delegate(off_center(on_principal))  # go-to-corner
                return destinations
            on_secondary = _first_orbit_on_lines(config, orbits, secondary)
            if on_secondary is None \
                    or on_secondary == list(range(config.n)):
                return destinations
            if on_secondary != orbits[0]:
                shrink_rows(on_secondary)
            else:
                delegate(off_center(on_secondary))  # go-to-corner
            return destinations

        occupied_folds = sorted({a.fold for a in group.axes if a.occupied},
                                reverse=True)
        if not occupied_folds:
            return destinations
        lines = [a.direction for a in group.axes
                 if a.fold == occupied_folds[0] and a.occupied]
        selected = _first_orbit_on_lines(config, orbits, lines)
        if selected is None:
            return destinations
        if selected != orbits[0]:
            shrink_rows(selected)
        else:
            delegate(off_center(selected))  # go-to-center
        return destinations


psi_sym = _PsiSym()


def _psi_sym_move(observation: Observation) -> np.ndarray | None:
    pts = observation.points
    config = Configuration(pts)
    report = config.symmetry
    if report.kind == "degenerate":
        return None
    center = config.center
    own = pts[observation.self_index]
    slack = DEFAULT_TOL.geometric_slack(config.radius)

    if float(np.linalg.norm(own - center)) <= slack:
        return _go_to_sphere(observation, config, group=report.group)

    if report.kind == "collinear":
        return _collinear_move(observation, config)

    group = report.group
    if group.is_trivial:
        return None
    if regular_polygon_fold(pts) is not None:
        return None
    if not any(axis.occupied for axis in group.axes):
        return None

    orbits = ordered_orbits(config, group)

    # Expand: pin the smallest enclosing ball on a unique last orbit
    # before anything inside it starts moving.
    if group.spec.kind is not GroupKind.CYCLIC:
        on_ball = {i for i, p in enumerate(pts)
                   if float(np.linalg.norm(p - center))
                   >= config.radius - 10 * slack}
        if on_ball != set(orbits[-1]):
            if observation.self_index in orbits[-1]:
                return _expand(observation, config)
            return None

    kind = group.spec.kind
    if kind is GroupKind.CYCLIC:
        return _cyclic_case(observation, config, group, orbits)
    if kind is GroupKind.DIHEDRAL:
        return _dihedral_case(observation, config, group, orbits)
    return _polyhedral_case(observation, config, group, orbits)


# ----------------------------------------------------------------------
# Case analysis
# ----------------------------------------------------------------------
def _cyclic_case(observation, config, group, orbits):
    axis = group.axes[0].direction
    selected = _first_orbit_on_lines(config, orbits, [axis])
    if selected is None:
        return None
    if observation.self_index not in selected:
        return None
    if selected != orbits[0]:
        return _shrink(observation, config, selected)
    return _go_to_sphere(observation, config, group)


def _dihedral_case(observation, config, group, orbits):
    if group.spec.param == 2:
        principal = principal_axis_of_d2(config, group)
    else:
        principal = group.principal_axis.direction
    secondary = [a.direction for a in group.axes
                 if float(abs(np.dot(a.direction, principal)))
                 < DEFAULT_TOL.geometric_slack(1.0)]

    on_principal = _first_orbit_on_lines(config, orbits, [principal])
    if on_principal is not None:
        if observation.self_index not in on_principal:
            return None
        if on_principal != orbits[0]:
            return _shrink(observation, config, on_principal)
        return _go_to_corner(observation, config, principal, secondary)

    on_secondary = _first_orbit_on_lines(config, orbits, secondary)
    if on_secondary is None or on_secondary == list(range(config.n)):
        return None
    if observation.self_index not in on_secondary:
        return None
    if on_secondary != orbits[0]:
        return _shrink(observation, config, on_secondary)
    return _go_to_corner(observation, config, principal, secondary)


def _polyhedral_case(observation, config, group, orbits):
    occupied_folds = sorted({a.fold for a in group.axes if a.occupied},
                            reverse=True)
    if not occupied_folds:
        return None
    max_fold = occupied_folds[0]
    lines = [a.direction for a in group.axes
             if a.fold == max_fold and a.occupied]
    selected = _first_orbit_on_lines(config, orbits, lines)
    if selected is None:
        return None
    if observation.self_index not in selected:
        return None
    if selected != orbits[0]:
        return _shrink(observation, config, selected)
    element = [observation.points[i] for i in selected]
    own_in_element = selected.index(observation.self_index)
    return go_to_center_destination(element, own_in_element)


def _first_orbit_on_lines(config, orbits, lines) -> list[int] | None:
    """First (agreed-order) orbit whose points lie on the given axes."""
    center = config.center
    slack = DEFAULT_TOL.alignment_slack(config.radius)
    for orbit in orbits:
        p = config.points[orbit[0]] - center
        for line in lines:
            if float(np.linalg.norm(np.cross(line, p))) <= slack:
                return orbit
    return None


# ----------------------------------------------------------------------
# Procedures (Algorithm 4.3)
# ----------------------------------------------------------------------
def _expand(observation, config) -> np.ndarray:
    """Move radially outward to radius ``2·rad(B(P))``."""
    own = observation.points[observation.self_index]
    center = config.center
    rel = own - center
    radius = float(np.linalg.norm(rel))
    return center + rel * (2.0 * config.radius / radius)


def _shrink(observation, config, movers: list[int]) -> np.ndarray:
    """Move radially inward to half the others' innermost radius."""
    own = observation.points[observation.self_index]
    center = config.center
    mover_set = set(movers)
    others = [float(np.linalg.norm(p - center))
              for i, p in enumerate(observation.points)
              if i not in mover_set]
    inner = min(others)
    rel = own - center
    radius = float(np.linalg.norm(rel))
    return center + rel * (inner / 2.0 / radius)


def _go_to_sphere(observation, config,
                  group: RotationGroup | None) -> np.ndarray:
    """Leave the occupied axis: move to a free point on the half-``I(P)``
    sphere, avoiding every rotation axis (and the equator for 2D
    groups).  The direction is chosen deterministically from the
    robot's local frame — the symmetry-breaking degree of freedom.
    """
    center = config.center
    slack = DEFAULT_TOL.geometric_slack(config.radius)
    radii = [float(np.linalg.norm(p - center)) for p in observation.points]
    positive = [r for r in radii if r > slack]
    inner = min(positive) if positive else config.radius
    target_radius = inner / 2.0

    avoid_lines = []
    equator_normal = None
    if group is not None and not group.is_trivial:
        avoid_lines = [a.direction for a in group.axes]
        if group.spec.is_2d:
            if group.spec.kind is GroupKind.DIHEDRAL and group.spec.param == 2:
                equator_normal = principal_axis_of_d2(config, group)
            else:
                principal = group.principal_axis
                if principal is not None:
                    equator_normal = principal.direction
    direction = _free_direction(avoid_lines, equator_normal)
    return center + target_radius * direction


def _free_direction(avoid_lines, equator_normal,
                    clearance: float = 0.05) -> np.ndarray:
    """Deterministic unit direction clear of the given axis lines and
    (optionally) of the plane perpendicular to ``equator_normal``.

    All vectors are in the robot's local coordinates; the fixed seed
    direction below is therefore frame-dependent, which is the point.
    """
    seed = np.array([0.5338, 0.2676, 0.8020])
    seed /= np.linalg.norm(seed)
    spin_axis = np.array([0.2763, 0.8906, -0.3614])
    spin_axis /= np.linalg.norm(spin_axis)
    candidate = seed
    for step in range(512):
        ok = all(float(np.linalg.norm(np.cross(candidate, line)))
                 > clearance for line in avoid_lines)
        if ok and equator_normal is not None:
            ok = abs(float(np.dot(candidate, equator_normal))) > clearance
        if ok:
            return candidate
        tilt = rotation_about_axis(spin_axis,
                                   _GOLDEN_ANGLE * (step + 1))
        candidate = tilt @ seed
    raise SimulationError("could not find a direction clear of all axes")


def _go_to_corner(observation, config, principal,
                  secondary) -> np.ndarray:
    """Move to the nearest vertex of the reference prism (Figure 27).

    The prism is inscribed in ``Ball(b(P), rad(I(P))/2)``: its vertices
    lie on the cylinder of radius ``rad(I(P))/4`` around the principal
    axis, in the planes spanned by the principal axis and each
    secondary axis.  Ties among nearest vertices are broken by the
    robot's local lexicographic order — the symmetry-breaking choice.
    """
    center = config.center
    own = observation.points[observation.self_index]
    slack = DEFAULT_TOL.geometric_slack(config.radius)
    radii = [float(np.linalg.norm(p - center)) for p in observation.points]
    positive = [r for r in radii if r > slack]
    inner = min(positive) if positive else config.radius
    rho = inner / 4.0
    height = inner * np.sqrt(3.0) / 4.0
    z_hat = np.asarray(principal, dtype=float)
    z_hat = z_hat / np.linalg.norm(z_hat)
    corners = []
    for s in secondary:
        s_hat = np.asarray(s, dtype=float)
        s_hat = s_hat / np.linalg.norm(s_hat)
        for u in (s_hat, -s_hat):
            for z in (height, -height):
                corners.append(center + rho * u + z * z_hat)
    best_distance = min(float(np.linalg.norm(c - own)) for c in corners)
    nearest = [c for c in corners
               if float(np.linalg.norm(c - own)) <= best_distance + slack]
    return min(nearest, key=lambda c: tuple(canonical_round(c, 9).tolist()))


# ----------------------------------------------------------------------
# Collinear configurations (infinite groups; see module docstring)
# ----------------------------------------------------------------------
def _collinear_move(observation, config) -> np.ndarray | None:
    """Innermost orbit leaves the line; everyone else keeps it."""
    report = config.symmetry
    center = config.center
    line = report.line_direction
    slack = DEFAULT_TOL.geometric_slack(config.radius)
    radii = [float(np.linalg.norm(p - center)) for p in observation.points]
    inner = min(r for r in radii if r > slack)
    own_r = radii[observation.self_index]
    if own_r > inner + 10 * slack:
        return None
    # This robot is innermost (alone, or with its antipodal partner in
    # the D_inf case): leave the line to half the innermost radius.
    direction = _free_direction([line], None)
    return center + (inner / 2.0) * direction
