"""Algorithm 6.1 — the pattern formation algorithm ``ψ_PF``.

The oblivious composition of the paper's two phases:

1. while the configuration is not ``ψ_SYM``-terminal, run ``ψ_SYM``
   (Algorithm 4.2) — this shows the symmetricity: ``γ(P') ∈ ϱ(P)``;
2. in a terminal configuration, fix the embedded target ``F̃``
   (Section 6.1) and move to the matched point of ``M(P, F̃)``
   (Section 6.2).

Obliviousness: every branch is decided from the current observation
alone.  A robot that already sees a configuration similar to ``F``
stays put, so the formed pattern is stable.  Non-oblivious robots run
the same code by ignoring their memory (Theorem 6.1).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.configuration import Configuration
from repro.errors import SimulationError
from repro.robots.algorithms.matching import match_configuration_to_pattern
from repro.robots.algorithms.embedding import embed_target
from repro.robots.algorithms.sym import is_sym_terminal, psi_sym
from repro.robots.model import Observation

__all__ = ["make_pattern_formation_algorithm"]


class _PatternFormation:
    """``ψ_PF`` bound to a target pattern (or to the observation's).

    Within a round all robots observe similarity images of one world
    configuration (with identical robot indexing), so the
    frame-independent parts of Compute are served through the indexed
    round cache: the two phase predicates are similarity invariants,
    and the ψ_PF destination list is equivariant — computed once per
    congruence class in the first observer's frame, conjugated into
    each later observer's frame by its certified alignment.

    The batched strategy evaluates both predicates and the matching
    once against the world configuration, then maps the destination
    list into every robot's frame with one einsum; the ψ_SYM phase
    (frame-dependent symmetry breaking) forwards to ψ_SYM's own
    batched path.
    """

    def __init__(self, target_points=None) -> None:
        if target_points is None:
            self._fixed_target = None
        else:
            rows = np.asarray(
                [np.asarray(p, dtype=float) for p in target_points],
                dtype=float)
            rows.setflags(write=False)
            self._fixed_target = rows

    def _target(self, provided):
        target = self._fixed_target
        if target is None:
            target = provided
        if target is None:
            raise SimulationError("psi_pf needs the target pattern F")
        return target

    def __call__(self, observation: Observation) -> np.ndarray:
        target = self._target(observation.target)
        config = Configuration(observation.points)

        from repro.perf import (cached_equivariant_points, cached_invariant,
                                round_view)

        view = round_view(config)
        target_arr = np.asarray(target, dtype=float)
        target_key = (target_arr.shape, target_arr.tobytes())
        if cached_invariant(view, ("is_similar", target_key),
                            lambda: bool(config.is_similar_to(target))):
            return observation.own_position()
        if not cached_invariant(view, ("sym_terminal",),
                                lambda: bool(is_sym_terminal(config))):
            return psi_sym(observation)
        destinations = cached_equivariant_points(
            view, ("psi_pf", target_key),
            lambda: match_configuration_to_pattern(
                config, embed_target(config, target)))
        return destinations[observation.self_index]

    def compute_batch(self, batch) -> np.ndarray:
        target = self._target(batch.target)
        config = batch.configuration()

        from repro.perf import (cached_equivariant_points, cached_invariant,
                                round_view)

        view = round_view(config)
        target_arr = np.asarray(target, dtype=float)
        target_key = (target_arr.shape, target_arr.tobytes())
        if cached_invariant(view, ("is_similar", target_key),
                            lambda: bool(config.is_similar_to(target))):
            return batch.own_rows()
        if not cached_invariant(view, ("sym_terminal",),
                                lambda: bool(is_sym_terminal(config))):
            return psi_sym.compute_batch(batch)
        destinations = cached_equivariant_points(
            view, ("psi_pf", target_key),
            lambda: match_configuration_to_pattern(
                config, embed_target(config, target)))
        return batch.to_local(destinations)


def make_pattern_formation_algorithm(
        target_points=None) -> Callable[[Observation], np.ndarray]:
    """Build ``ψ_PF`` for a target pattern.

    ``target_points`` may be omitted, in which case each robot reads
    the pattern from ``observation.target`` (the scheduler's way of
    handing every robot the common problem input).  The returned
    algorithm implements :class:`repro.robots.model.BatchedAlgorithm`,
    so the scheduler computes whole rounds in one call.
    """
    return _PatternFormation(target_points)
