"""Algorithm 6.1 — the pattern formation algorithm ``ψ_PF``.

The oblivious composition of the paper's two phases:

1. while the configuration is not ``ψ_SYM``-terminal, run ``ψ_SYM``
   (Algorithm 4.2) — this shows the symmetricity: ``γ(P') ∈ ϱ(P)``;
2. in a terminal configuration, fix the embedded target ``F̃``
   (Section 6.1) and move to the matched point of ``M(P, F̃)``
   (Section 6.2).

Obliviousness: every branch is decided from the current observation
alone.  A robot that already sees a configuration similar to ``F``
stays put, so the formed pattern is stable.  Non-oblivious robots run
the same code by ignoring their memory (Theorem 6.1).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.configuration import Configuration
from repro.errors import SimulationError
from repro.robots.algorithms.matching import match_configuration_to_pattern
from repro.robots.algorithms.embedding import embed_target
from repro.robots.algorithms.sym import is_sym_terminal, psi_sym
from repro.robots.model import Observation

__all__ = ["make_pattern_formation_algorithm"]


def make_pattern_formation_algorithm(
        target_points=None) -> Callable[[Observation], np.ndarray]:
    """Build ``ψ_PF`` for a target pattern.

    ``target_points`` may be omitted, in which case each robot reads
    the pattern from ``observation.target`` (the scheduler's way of
    handing every robot the common problem input).
    """
    fixed_target = None if target_points is None else [
        np.asarray(p, dtype=float) for p in target_points]

    def psi_pf(observation: Observation) -> np.ndarray:
        target = fixed_target
        if target is None:
            target = observation.target
        if target is None:
            raise SimulationError("psi_pf needs the target pattern F")
        config = Configuration(observation.points)
        if config.is_similar_to(target):
            return observation.own_position()
        if not is_sym_terminal(config):
            return psi_sym(observation)
        embedded = embed_target(config, target)
        destinations = match_configuration_to_pattern(config, embedded)
        return destinations[observation.self_index]

    return psi_pf
