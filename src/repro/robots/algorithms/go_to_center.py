"""Algorithm 4.1 — the *go-to-center* symmetry breaking step.

When the robots form one of the seven transitive polyhedra

    regular tetrahedron, regular octahedron, cube, cuboctahedron,
    regular icosahedron, regular dodecahedron, icosidodecahedron

(the ``U_{G,μ}`` with ``G ∈ {T, O, I}`` and ``μ > 1``), each robot
selects an adjacent face of the polyhedron and moves to the point
``ε = ℓ/100`` before the face's center (``ℓ`` = edge length), with two
restrictions: on a cuboctahedron only triangular faces may be chosen,
on an icosidodecahedron only pentagonal faces.

Lemma 7: one synchronized step lands the swarm in a configuration
``P'`` with ``γ(P') ∈ ϱ(P)`` — the 3D rotation group is broken.

The "select an adjacent face" choice is made deterministically from
the robot's *local* observation (lexicographically smallest face
center in local coordinates).  Robots with differently-oriented local
frames make different choices — this is exactly the paper's
symmetry-breaking mechanism; robots with symmetric frames make
symmetric choices and retain the unbreakable subgroup, as Lemma 2
requires.
"""

from __future__ import annotations

from types import MappingProxyType

import numpy as np

from repro.core.configuration import Configuration
from repro.errors import GeometryError
from repro.geometry.convex import ConvexPolyhedron
from repro.geometry.tolerance import DEFAULT_TOL, canonical_round
from repro.groups.group import GroupKind
from repro.robots.model import Observation

__all__ = [
    "recognize_goc_polyhedron",
    "go_to_center_destination",
    "go_to_center_algorithm",
    "EPSILON_FRACTION",
]

# The paper fixes epsilon to edge-length / 100.
EPSILON_FRACTION = 0.01

# Polyhedra handled by Algorithm 4.1, keyed by (vertex count, the
# rotation group of the vertex set as a standalone shape).  Note the
# shape group can exceed the group that generated the orbit (e.g.
# U_{T,2} is a regular octahedron whose shape group is O).
_GOC_SHAPES = MappingProxyType({
    (4, "T"): "tetrahedron",
    (6, "O"): "octahedron",
    (8, "O"): "cube",
    (12, "O"): "cuboctahedron",
    (12, "I"): "icosahedron",
    (20, "I"): "dodecahedron",
    (30, "I"): "icosidodecahedron",
})

_FACE_RESTRICTION = MappingProxyType({
    "cuboctahedron": 3,       # triangle faces only
    "icosidodecahedron": 5,   # pentagon faces only
})


def recognize_goc_polyhedron(points) -> str | None:
    """Name of the go-to-center polyhedron the points form, or None.

    Checks vertex count, sphericity, transitivity (all vertices on one
    hull orbit follows from the shape group match), and the rotation
    group of the shape.
    """
    cfg = Configuration(points)
    count = cfg.n
    candidates = [name for (k, _), name in _GOC_SHAPES.items() if k == count]
    if not candidates:
        return None
    report = cfg.symmetry
    if report.kind != "finite" or report.group is None:
        return None
    spec = report.group.spec
    if spec.kind not in (GroupKind.TETRAHEDRAL, GroupKind.OCTAHEDRAL,
                         GroupKind.ICOSAHEDRAL):
        return None
    key = (count, spec.kind.value)
    name = _GOC_SHAPES.get(key)
    if name is None:
        return None
    # All seven shapes are vertex-transitive and spherical; verify the
    # radius uniformity to reject impostors with the right group.
    rel = cfg.relative_points()
    radii = [float(np.linalg.norm(p)) for p in rel]
    if max(radii) - min(radii) > DEFAULT_TOL.relative_slack(max(radii)):
        return None
    return name


def go_to_center_destination(points, own_index: int) -> np.ndarray:
    """Destination of robot ``own_index`` per Algorithm 4.1.

    ``points`` are the polyhedron's vertices in the robot's local
    coordinate system (any similarity copy works — the rule is
    similarity-equivariant).  Raises if the points are not one of the
    seven polyhedra.
    """
    name = recognize_goc_polyhedron(points)
    if name is None:
        raise GeometryError(
            "go-to-center applies only to the seven transitive polyhedra")
    hull = ConvexPolyhedron(points)
    epsilon = hull.min_edge_length() * EPSILON_FRACTION
    faces = hull.faces_of_vertex(own_index)
    restriction = _FACE_RESTRICTION.get(name)
    if restriction is not None:
        faces = [f for f in faces if f.size == restriction]
    if not faces:
        raise GeometryError("no admissible adjacent face found")
    own = np.asarray(points[own_index], dtype=float)
    face = min(faces, key=lambda f: tuple(
        canonical_round(f.center - own, 9).tolist()))
    to_center = face.center - own
    distance = float(np.linalg.norm(to_center))
    return own + to_center * (1.0 - epsilon / distance)


def _goc_round_info(points, radius: float):
    """The frame-invariant part of Algorithm 4.1 for one round class.

    Everything here is invariant under the similarity relating two
    robots' observations of the same round: the recognized polyhedron
    name, the admissible face *vertex-index* tuples per vertex (the
    round cache's alignment is index-preserving, so hull combinatorics
    transfer verbatim), and the edge-length / circumradius ratio (a
    scale-free number that reconstitutes ``ε`` in any frame).
    """
    name = recognize_goc_polyhedron(points)
    if name is None:
        return None
    hull = ConvexPolyhedron(points)
    ratio = hull.min_edge_length() / radius
    restriction = _FACE_RESTRICTION.get(name)
    admissible = []
    for i in range(len(points)):
        faces = hull.faces_of_vertex(i)
        if restriction is not None:
            faces = [f for f in faces if f.size == restriction]
        admissible.append(tuple(f.vertex_indices for f in faces))
    return (name, tuple(admissible), float(ratio))


def _local_face_choice(points: np.ndarray, own_index: int, faces,
                       epsilon: float) -> np.ndarray:
    """The strictly-local remainder of Algorithm 4.1 for one robot.

    ``points`` are the vertices in the robot's own frame; the
    admissible ``faces`` (vertex-index tuples) and ``epsilon`` come
    from the round-class payload.  Shared verbatim by the per-robot
    and batched paths so both make the identical face choice.
    """
    if not faces:
        raise GeometryError("no admissible adjacent face found")
    own = points[own_index]
    best_key = None
    best_center = None
    for indices in faces:
        center = points[list(indices)].mean(axis=0)
        key = tuple(canonical_round(center - own, 9).tolist())
        if best_key is None or key < best_key:
            best_key, best_center = key, center
    to_center = best_center - own
    distance = float(np.linalg.norm(to_center))
    return own + to_center * (1.0 - epsilon / distance)


class _GoToCenter:
    """Algorithm 4.1 as a standalone oblivious algorithm.

    If the observed configuration is not one of the seven polyhedra
    the robot stays put (the full ``ψ_SYM`` wraps this with the other
    cases).

    The recognition and hull combinatorics are hoisted through the
    indexed round cache (:mod:`repro.perf.round`) — computed once per
    congruence class per round instead of once per robot.  The face
    *choice* stays strictly local: each robot minimizes over face
    centers expressed in its own coordinates (symmetric frames thus
    still make symmetric choices, as Lemma 2 requires).  The batched
    strategy (``compute_batch``) computes the class payload once from
    the world configuration and replays the same local face choice per
    tensor row — the polyhedra have at most 30 vertices, so the
    remainder is a short gather loop.
    """

    def __call__(self, observation: Observation) -> np.ndarray:
        from repro.perf import cached_invariant, round_view

        config = Configuration(observation.points)
        view = round_view(config)
        radius = float(config.radius)
        info = cached_invariant(
            view, ("goc",),
            lambda: _goc_round_info(observation.points, radius))
        if info is None:
            return observation.own_position()
        _, admissible, ratio = info
        points = np.asarray(observation.points, dtype=float)
        epsilon = ratio * radius * EPSILON_FRACTION
        return _local_face_choice(points, observation.self_index,
                                  admissible[observation.self_index],
                                  epsilon)

    def compute_batch(self, batch) -> np.ndarray:
        from repro.perf import cached_invariant, round_view

        config = batch.configuration()
        view = round_view(config)
        radius = float(config.radius)
        info = cached_invariant(
            view, ("goc",),
            lambda: _goc_round_info(config.points, radius))
        if info is None:
            return batch.own_rows()
        _, admissible, ratio = info
        n = batch.n
        destinations = np.empty((n, 3), dtype=float)
        for i in range(n):
            # ε in robot i's frame: the scale-free edge/radius ratio
            # times the circumradius as robot i measures it.
            epsilon = ratio * (radius / float(batch.scales[i])) \
                * EPSILON_FRACTION
            destinations[i] = _local_face_choice(
                batch.local[i], i, admissible[i], epsilon)
        return destinations


go_to_center_algorithm = _GoToCenter()
