"""Section 6.1 — fixing an image ``F̃`` of the target pattern in ``P``.

Given a ``ψ_SYM``-terminal configuration ``P`` (with ``γ(P) ∈ ϱ(F)``)
and the target pattern ``F``, every robot must compute the *same*
embedded copy ``F̃`` with ``B(F̃) = B(P)`` and with the arrangement of
``γ(P)`` overlapping free rotation axes of ``γ(F̃)``.

The construction here is *equivariant*: every choice is made either
from the target pattern ``F`` alone (which all robots share verbatim)
or from rotation-invariant signatures of ``P``'s geometry — so
``embed(R·P, F) = R·embed(P, F)`` for every rotation ``R``, which both
makes all robots agree (they observe similarity copies of the same
``P``) and forces ``F̃`` to be invariant under every symmetry of ``P``.

Construction outline:

* pick a *witness* ``W``: a concrete subgroup of ``γ(F)`` with
  ``W ≅ γ(P)`` acting freely on ``F`` (recorded by the symmetricity
  computation); chosen canonically from ``F``'s data;
* enumerate the rotations aligning ``W``'s axis arrangement onto
  ``γ(P)``'s (finite for dihedral/polyhedral groups; for cyclic groups
  the residual spin about the axis is fixed with the paper's
  *reference polygon*: the first free orbit of ``P`` and of ``F``);
* scale/translate so ``B(F̃) = B(P)``;
* among the finitely many surviving candidates (e.g. the two
  icosahedral extensions of a tetrahedral arrangement, Figure 28),
  pick the one minimizing a rotation-invariant joint signature of
  ``(P, F̃)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.configuration import Configuration
from repro.core.decomposition import oriented_axis_direction
from repro.core.local_views import ordered_orbits
from repro.core.symmetricity import symmetricity_of_multiset
from repro.errors import EmbeddingError
from repro.geometry.polygons import regular_polygon_fold
from repro.geometry.tolerance import (
    AXIS_NORM_FLOOR,
    DEFAULT_TOL,
    canonical_round,
)
from repro.groups.group import GroupKind, GroupSpec, RotationGroup

__all__ = ["embed_target"]


def embed_target(config: Configuration, target_points) -> list[np.ndarray]:
    """Compute ``F̃``: the target pattern fixed in ``P``'s ball.

    ``config`` must be a ``ψ_SYM``-terminal configuration and the
    instance must be solvable (``γ(P) ∈ ϱ(F)`` up to the regular
    polygon special case).  Returns the embedded points in the same
    coordinate system as ``config``.
    """
    target = [np.asarray(p, dtype=float) for p in target_points]
    if len(target) != config.n:
        raise EmbeddingError("target pattern size must match the swarm")

    if Configuration(target).symmetry.kind == "degenerate":
        # The point of multiplicity n: always formable; gather at b(P).
        return [config.center.copy() for _ in range(config.n)]

    special = _polygon_or_point_case(config, target)
    if special is not None:
        return special

    group = config.rotation_group
    if group is None:
        raise EmbeddingError(
            "embedding requires a finite rotation group "
            "(run psi_sym to terminality first)")

    target_config = Configuration(target)
    if group.is_trivial:
        return _embed_with_frames(config, target_config)

    witness = _canonical_witness(target_config, group.spec)
    if witness is None:
        raise EmbeddingError(
            f"gamma(P) = {group.spec} is not in varrho(F): unsolvable")

    if group.spec.kind is GroupKind.CYCLIC:
        candidates = _cyclic_alignments(config, group, target_config, witness)
    else:
        candidates = _arrangement_alignments(config, group,
                                             target_config, witness)
    if not candidates:
        raise EmbeddingError("no alignment of gamma(P) onto free axes of F")
    return _pick_canonical(config, candidates)


# ----------------------------------------------------------------------
# Special cases: regular polygons and the point pattern
# ----------------------------------------------------------------------
def _polygon_or_point_case(config: Configuration,
                           target) -> list[np.ndarray] | None:
    """Handle ``P`` = regular n-gon (ψ_SYM leaves it intact).

    Any solvable target from a regular ``n``-gon is either similar to
    the ``n``-gon itself (the only free ``C_n``-orbit of ``n`` points)
    or the point of multiplicity ``n``; see DESIGN.md.
    """
    fold = regular_polygon_fold(config.points)
    if fold is None or fold < 3:
        return None
    target_config = Configuration(target)
    if target_config.symmetry.kind == "degenerate":
        return [config.center.copy() for _ in range(config.n)]
    if config.is_similar_to(target_config):
        return [p.copy() for p in config.points]
    raise EmbeddingError(
        "from a regular polygon only the polygon itself or the point "
        "of multiplicity n is formable")


# ----------------------------------------------------------------------
# Witness selection (target side — choices here need no equivariance)
# ----------------------------------------------------------------------
def _canonical_witness(target_config: Configuration,
                       spec: GroupSpec) -> RotationGroup | None:
    """A concrete subgroup of ``γ(F)`` of type ``spec`` acting freely
    on ``F`` (Definition 5/6 witness), chosen deterministically."""
    rho = symmetricity_of_multiset(target_config)
    arrangements = rho.witnesses.get(spec)
    if not arrangements:
        return None
    return min(arrangements,
               key=lambda g: sorted(a.line_key() for a in g.axes))


# ----------------------------------------------------------------------
# Trivial group: canonical frames on both sides
# ----------------------------------------------------------------------
def _canonical_frame(config: Configuration) -> np.ndarray:
    """A right-handed frame built equivariantly from the point set.

    Uses the agreed orbit ordering (radius, then local views) to pick
    two reference points; only valid when ``γ(P) = C_1`` — with any
    symmetry present the 'first point' would not be well defined.
    """
    group = config.rotation_group
    if group is None:
        raise EmbeddingError("canonical frame needs a finite-group config")
    orbits = ordered_orbits(config, group)
    order = [orbit[0] for orbit in orbits]
    center = config.center
    rel = [config.points[i] - center for i in order]
    first = next((r for r in rel if np.linalg.norm(r) > DEFAULT_TOL.coincidence_slack(1.0)),
                 None)
    if first is None:
        raise EmbeddingError("degenerate configuration has no frame")
    w = first / np.linalg.norm(first)
    for r in rel:
        perp = r - float(np.dot(r, w)) * w
        if np.linalg.norm(perp) > DEFAULT_TOL.abs_tol * max(config.radius,
                                                            1.0):
            u = perp / np.linalg.norm(perp)
            v = np.cross(w, u)
            return np.column_stack([u, v, w])
    raise EmbeddingError("collinear configuration has no canonical frame")


def _frame_for_target(target_config: Configuration) -> np.ndarray:
    """A deterministic frame for ``F`` (target-side, any rule works).

    If ``F`` has symmetries the choice among equivalent reference
    points is absorbed: frames differing by an element of ``γ(F)``
    produce the same embedded set.
    """
    center = target_config.center
    rel = sorted((p - center for p in target_config.points),
                 key=lambda p: tuple(canonical_round(p, 9).tolist()))
    first = next((r for r in rel if np.linalg.norm(r) > DEFAULT_TOL.coincidence_slack(1.0)),
                 None)
    if first is None:
        raise EmbeddingError("degenerate target has no frame")
    w = first / np.linalg.norm(first)
    for r in rel:
        perp = r - float(np.dot(r, w)) * w
        if np.linalg.norm(perp) > DEFAULT_TOL.abs_tol * max(
                target_config.radius, 1.0):
            u = perp / np.linalg.norm(perp)
            v = np.cross(w, u)
            return np.column_stack([u, v, w])
    raise EmbeddingError("collinear target has no canonical frame")


def _embed_with_frames(config: Configuration,
                       target_config: Configuration) -> list[np.ndarray]:
    frame_p = _canonical_frame(config)
    frame_f = _frame_for_target(target_config)
    rotation = frame_p @ frame_f.T
    return _place(config, target_config, rotation)


def _place(config: Configuration, target_config: Configuration,
           rotation: np.ndarray) -> list[np.ndarray]:
    """Apply rotation, then scale/translate so ``B(F̃) = B(P)``."""
    scale = config.radius / target_config.radius
    c_f = target_config.center
    c_p = config.center
    return [c_p + scale * (rotation @ (p - c_f))
            for p in target_config.points]


# ----------------------------------------------------------------------
# Cyclic groups: axis + reference polygon (meridian) alignment
# ----------------------------------------------------------------------
def _reference_meridian(config: Configuration, axis: np.ndarray,
                        group: RotationGroup) -> np.ndarray:
    """The paper's reference polygon, reduced to a meridian direction.

    Every free orbit of a cyclic group is a regular k-gon in a plane
    perpendicular to the axis; projecting a vertex of the first
    (agreed-order) free orbit onto the equator plane yields a meridian
    direction.  The choice among the k vertices is absorbed by the
    C_k-invariance of the embedded pattern.
    """
    orbits = ordered_orbits(config, group)
    center = config.center
    slack = DEFAULT_TOL.geometric_slack(config.radius)
    for orbit in orbits:
        p = config.points[orbit[0]] - center
        perp = p - float(np.dot(p, axis)) * axis
        if float(np.linalg.norm(perp)) > slack:
            return perp / np.linalg.norm(perp)
    raise EmbeddingError("no off-axis orbit to define a reference polygon")


def _cyclic_alignments(config: Configuration, group: RotationGroup,
                       target_config: Configuration,
                       witness: RotationGroup) -> list[list[np.ndarray]]:
    axis_p = group.axes[0].direction
    oriented_p = oriented_axis_direction(config, axis_p, group)
    axis_f = witness.axes[0].direction
    oriented_f = oriented_axis_direction(target_config, axis_f,
                                         target_config.rotation_group)

    directions_p = [oriented_p] if oriented_p is not None else [axis_p,
                                                                -axis_p]
    directions_f = [oriented_f] if oriented_f is not None else [axis_f,
                                                                -axis_f]
    meridian_p = _reference_meridian(config, axis_p, group)
    candidates = []
    for d_p in directions_p:
        for d_f in directions_f:
            rotation = _axis_meridian_rotation(
                target_config, witness, d_f, d_p, meridian_p)
            candidates.append(_place(config, target_config, rotation))
    return candidates


def _axis_meridian_rotation(target_config, witness, d_f, d_p,
                            meridian_p) -> np.ndarray:
    """Rotation mapping F's (axis, meridian) onto P's (axis, meridian)."""
    meridian_f = _target_meridian(target_config, d_f)
    frame_f = _frame_from_axis(d_f, meridian_f)
    frame_p = _frame_from_axis(d_p, meridian_p)
    return frame_p @ frame_f.T


def _target_meridian(target_config: Configuration,
                     axis: np.ndarray) -> np.ndarray:
    """A deterministic meridian direction for ``F`` (target side).

    Projects the off-axis point of ``F`` with the smallest (radius,
    lexicographic) key onto the equator plane.  Choices within one
    ``W``-orbit differ by an element of ``W`` and are absorbed by the
    embedded pattern's ``C_k``-invariance; the orbit choice itself is
    deterministic because ``F`` is shared input.
    """
    center = target_config.center
    slack = DEFAULT_TOL.geometric_slack(target_config.radius)
    best = None
    best_key = None
    for p in target_config.points:
        rel = p - center
        perp = rel - float(np.dot(rel, axis)) * axis
        if float(np.linalg.norm(perp)) <= slack:
            continue
        key = (float(canonical_round(np.linalg.norm(rel), 6)),
               tuple(canonical_round(rel, 6).tolist()))
        if best_key is None or key < best_key:
            best_key = key
            best = perp / np.linalg.norm(perp)
    if best is None:
        raise EmbeddingError("target has no off-axis point for a meridian")
    return best


def _frame_from_axis(axis, meridian) -> np.ndarray:
    w = np.asarray(axis, dtype=float)
    w = w / np.linalg.norm(w)
    u = np.asarray(meridian, dtype=float)
    u = u - float(np.dot(u, w)) * w
    u = u / np.linalg.norm(u)
    v = np.cross(w, u)
    return np.column_stack([u, v, w])


# ----------------------------------------------------------------------
# Dihedral/polyhedral groups: finite arrangement alignments
# ----------------------------------------------------------------------
def _arrangement_alignments(config: Configuration, group: RotationGroup,
                            target_config: Configuration,
                            witness: RotationGroup
                            ) -> list[list[np.ndarray]]:
    """All placements from rotations mapping ``W``'s axes onto ``G``'s.

    Candidate rotations are generated by aligning a reference axis
    pair of ``W`` with every compatible axis pair of ``G``; rotations
    that map the whole arrangement (every axis onto an equal-fold
    axis) survive, and the distinct embedded sets are returned.
    """
    a1, a2 = _reference_axis_pair(witness)
    dot_ref = float(np.dot(a1.direction, a2.direction))
    rotations = []
    for b1 in group.axes:
        if b1.fold != a1.fold:
            continue
        for s1 in (1.0, -1.0):
            d1 = s1 * b1.direction
            for b2 in group.axes:
                if b2.fold != a2.fold:
                    continue
                for s2 in (1.0, -1.0):
                    d2 = s2 * b2.direction
                    if (abs(abs(float(np.dot(d1, d2))) - abs(dot_ref))
                            > DEFAULT_TOL.geometric_slack(1.0)):
                        continue
                    if (abs(float(np.dot(d1, d2)) - dot_ref)
                            > DEFAULT_TOL.geometric_slack(1.0)):
                        continue
                    rot = _rotation_from_axis_pairs(
                        a1.direction, a2.direction, d1, d2)
                    if rot is None:
                        continue
                    if _maps_arrangement(rot, witness, group):
                        rotations.append(rot)
    placements = []
    seen: set[tuple] = set()
    for rot in rotations:
        placed = _place(config, target_config, rot)
        key = tuple(sorted(tuple(canonical_round(p, 5).tolist())
                           for p in placed))
        if key not in seen:
            seen.add(key)
            placements.append(placed)
    return placements


def _reference_axis_pair(witness: RotationGroup):
    """Two non-parallel axes of the witness (highest folds first)."""
    axes = sorted(witness.axes, key=lambda a: (-a.fold, a.line_key()))
    first = axes[0]
    for other in axes[1:]:
        cross = np.cross(first.direction, other.direction)
        if float(np.linalg.norm(cross)) > 0.1 * DEFAULT_TOL.abs_tol:
            return first, other
    raise EmbeddingError("witness arrangement has fewer than two axes")


def _rotation_from_axis_pairs(a1, a2, b1, b2) -> np.ndarray | None:
    n_a = np.cross(a1, a2)
    n_b = np.cross(b1, b2)
    if (float(np.linalg.norm(n_a)) < AXIS_NORM_FLOOR
            or float(np.linalg.norm(n_b)) < AXIS_NORM_FLOOR):
        return None
    frame_a = _frame_from_axis(n_a, a1)
    frame_b = _frame_from_axis(n_b, b1)
    return frame_b @ frame_a.T


def _maps_arrangement(rot: np.ndarray, witness: RotationGroup,
                      group: RotationGroup) -> bool:
    """True if ``rot`` maps every axis of ``W`` onto a ``G`` axis of
    equal fold (so ``rot W rotᵀ = G`` as arrangements)."""
    for axis in witness.axes:
        image = rot @ axis.direction
        target = group.axis_for_line(image)
        if target is None or target.fold != axis.fold:
            return False
    return True


# ----------------------------------------------------------------------
# Canonical candidate selection (equivariant in P)
# ----------------------------------------------------------------------
def _pick_canonical(config: Configuration,
                    candidates: list[list[np.ndarray]]) -> list[np.ndarray]:
    """Choose among finitely many embeddings by a joint signature.

    The signature uses only distances between robots and embedded
    points (rotation invariant), so all robots rank the candidates
    identically regardless of local frames.
    """
    if len(candidates) == 1:
        return candidates[0]
    scored = []
    for placed in candidates:
        profile = []
        for f in placed:
            distances = sorted(
                float(canonical_round(np.linalg.norm(f - p), 6))
                for p in config.points)
            profile.append(tuple(distances))
        profile.sort()
        scored.append((tuple(profile), placed))
    scored.sort(key=lambda item: item[0])
    best_key = scored[0][0]
    ties = [placed for key, placed in scored if key == best_key]
    if len(ties) > 1 and not _all_same_set(ties):
        # Distance profiles are reflection-blind: mirror-image
        # candidates tie whenever P is achiral.  Separate them with a
        # handedness-aware signature (triple products are preserved by
        # rotations but flip under reflections).
        chiral = sorted((_chiral_signature(config, placed), placed)
                        for placed in ties)
        best_chiral = chiral[0][0]
        chiral_ties = [placed for key, placed in chiral
                       if key == best_chiral]
        if len(chiral_ties) > 1 and not _all_same_set(chiral_ties):
            raise EmbeddingError(
                "ambiguous target embedding (signature tie)")
        return chiral[0][1]
    return scored[0][1]


def _chiral_signature(config: Configuration,
                      placed: list[np.ndarray]) -> tuple:
    """Rotation-invariant, reflection-sensitive joint signature.

    For every embedded point ``f`` and every pair of robots ``p, q``
    the triple product ``det[f-c, p-c, q-c]`` is recorded alongside the
    distances that identify the triple; the pair is put in a canonical
    order by its distance key so the determinant's sign is well
    defined.
    """
    center = config.center
    rel_p = [p - center for p in config.points]
    keys_p = [(float(canonical_round(np.linalg.norm(r), 6)),) for r in rel_p]
    profile = []
    for f in placed:
        rel_f = f - center
        entries = []
        for i, p in enumerate(rel_p):
            for j in range(i + 1, len(rel_p)):
                q = rel_p[j]
                key_i = (float(canonical_round(np.linalg.norm(rel_f - p), 6)),
                         keys_p[i][0])
                key_j = (float(canonical_round(np.linalg.norm(rel_f - q), 6)),
                         keys_p[j][0])
                if key_i < key_j:
                    first, second = p, q
                    key_a, key_b = key_i, key_j
                else:
                    first, second = q, p
                    key_a, key_b = key_j, key_i
                det = float(np.linalg.det(
                    np.column_stack([rel_f, first, second])))
                if key_i == key_j:
                    # The pair order is ambiguous; only the magnitude
                    # is well defined.
                    det = abs(det)
                entries.append((key_a, key_b,
                                float(canonical_round(det, 5))))
        entries.sort()
        profile.append((float(canonical_round(np.linalg.norm(rel_f), 6)),
                        tuple(entries)))
    profile.sort()
    return tuple(profile)


def _all_same_set(placements: list[list[np.ndarray]]) -> bool:
    keys = set()
    for placed in placements:
        keys.add(tuple(sorted(tuple(canonical_round(p, 5).tolist())
                              for p in placed)))
    return len(keys) == 1
