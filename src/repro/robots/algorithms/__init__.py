"""The paper's oblivious FSYNC algorithms.

* Algorithm 4.1 — *go-to-center* for the seven transitive polyhedra.
* Algorithm 4.2 — ``ψ_SYM``: symmetry breaking down to ``ϱ(P)``.
* Section 6 — target embedding ``F̃``, matching ``M(P, F̃)``, and the
  full pattern formation algorithm ``ψ_PF`` (Algorithm 6.1).
"""

from repro.robots.algorithms.go_to_center import (
    go_to_center_algorithm,
    go_to_center_destination,
    recognize_goc_polyhedron,
)
from repro.robots.algorithms.sym import psi_sym, is_sym_terminal
from repro.robots.algorithms.embedding import embed_target
from repro.robots.algorithms.matching import match_configuration_to_pattern
from repro.robots.algorithms.pattern_formation import (
    make_pattern_formation_algorithm,
)

__all__ = [
    "go_to_center_algorithm",
    "go_to_center_destination",
    "recognize_goc_polyhedron",
    "psi_sym",
    "is_sym_terminal",
    "embed_target",
    "match_configuration_to_pattern",
    "make_pattern_formation_algorithm",
]
