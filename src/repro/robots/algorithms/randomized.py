"""Randomized pattern formation — beyond the deterministic bound.

Theorem 1.1's impossibility half holds for *deterministic* robots: an
adversarial arrangement of local coordinate systems with
``σ(P) = G ∈ ϱ(P)`` forces symmetric robots to move symmetrically
forever.  With access to random bits the robots escape (Yamauchi &
Yamashita, DISC 2014, discussed in the paper's related work): a single
synchronized *jiggle* — each robot moving to an independent random
point near its position — makes the configuration totally asymmetric
(``γ(P') = C_1``) with probability 1, after which the deterministic
``ψ_PF`` forms **any** target pattern.

The implementation keeps the jiggle radius below a quarter of each
robot's distance gap so the enclosing ball's robots stay outermost and
no multiplicity can be created.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.configuration import Configuration
from repro.geometry.tolerance import AXIS_NORM_FLOOR
from repro.robots.algorithms.pattern_formation import (
    make_pattern_formation_algorithm,
)
from repro.robots.model import Observation

__all__ = ["make_randomized_formation_algorithm"]


def make_randomized_formation_algorithm(
        target_points, rng: np.random.Generator,
        jiggle_fraction: float = 0.1,
) -> Callable[[Observation], np.ndarray]:
    """Randomized formation: jiggle until asymmetric, then ``ψ_PF``.

    ``rng`` supplies each robot's random bits (in the randomized model
    each robot has its own source; a shared generator consumed per
    call realizes that in simulation).  ``jiggle_fraction`` scales the
    random displacement relative to the configuration's innermost
    radius.

    Unlike the deterministic algorithm, this forms targets whose
    symmetricity does *not* contain ``ϱ(P)`` — e.g. a cube from a
    regular octagon — with probability 1.
    """
    deterministic = make_pattern_formation_algorithm(target_points)
    target = [np.asarray(p, dtype=float) for p in target_points]

    def randomized(observation: Observation) -> np.ndarray:
        config = Configuration(observation.points)
        if config.is_similar_to(target):
            return observation.own_position()
        report = config.symmetry
        asymmetric = (report.kind == "finite"
                      and report.group.is_trivial)
        if asymmetric:
            return deterministic(observation)
        # Jiggle: a uniform random direction, scaled well below the
        # nearest-neighbour separation so distinctness is kept.
        center = config.center
        own = observation.own_position()
        gap = _nearest_gap(observation.points, observation.self_index)
        scale = max(config.inner_ball.radius, 0.05 * config.radius)
        radius = jiggle_fraction * min(scale, gap / 2.0)
        direction = rng.normal(size=3)
        norm = float(np.linalg.norm(direction))
        if norm < AXIS_NORM_FLOOR:
            direction = np.array([1.0, 0.0, 0.0])
            norm = 1.0
        magnitude = float(rng.uniform(0.25 * radius, radius))
        return own + (magnitude / norm) * direction

    return randomized


def _nearest_gap(points, self_index: int) -> float:
    own = points[self_index]
    return min(float(np.linalg.norm(own - p))
               for i, p in enumerate(points) if i != self_index)
