"""Section 6.2 — assigning final positions: the matching ``M(P, F̃)``.

``P`` and the embedded target ``F̃`` are decomposed into orbits of
``G = γ(P)`` (every ``P``-orbit is free, of size ``|G|``; ``F̃``'s
orbits are free too for plain targets, while multiset targets may put
``k·j`` robots on ``k``-fold axes, Definition 6).  Both orbit lists
are put in an agreed order and matched rank-to-rank; inside an orbit
pair every robot heads to its nearest target position, with nearest
ties (which by Lemma 14 form cycles around a rotation axis) broken by
a chirality rule: among tied targets ``f, f'`` the robot picks the one
with positive triple product ``det[p - c, f - c, f' - c]`` — a
rotation-invariant, handedness-aware rule all robots share.

Point-set membership tests run on the active array backend's
neighbour index (:func:`repro.backend.get_backend`) and the
distance/triple-product profiles on batched array kernels; the greedy
orderings and the Lemma 14 tie-break are semantically identical to the
straightforward quadratic loops (pinned by the property tests against
the frozen oracle in ``tests/properties/round_oracle.py``).
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.backend.base import NeighborIndex
from repro.core.configuration import Configuration
from repro.core.local_views import local_view, ordered_orbits
from repro.errors import MatchingError
from repro.geometry.tolerance import DEFAULT_TOL, canonical_round
from repro.groups.group import RotationGroup

__all__ = ["match_configuration_to_pattern"]


def match_configuration_to_pattern(config: Configuration,
                                   embedded) -> list[np.ndarray]:
    """Destination of every robot (indexed like ``config.points``).

    ``embedded`` is ``F̃`` in the same coordinates as ``config`` (see
    :func:`repro.robots.algorithms.embedding.embed_target`).
    """
    from repro.obs import metrics as _metrics

    _metrics.inc("matching.calls")
    _metrics.inc("matching.robots", config.n)
    targets = [np.asarray(p, dtype=float) for p in embedded]
    if len(targets) != config.n:
        raise MatchingError("embedded pattern size must match the swarm")
    slack = config.tol.geometric_slack(config.radius)

    direct = _direct_cases(config, targets, slack)
    if direct is not None:
        _metrics.inc("matching.direct")
        return direct

    group = config.rotation_group
    if group is None:
        raise MatchingError("matching requires a finite rotation group")

    p_orbits = ordered_orbits(config, group)
    positions, multiplicities = _collapse(targets, slack)
    f_orbits = _target_position_orbits(config, group, positions,
                                       multiplicities, slack)

    assignments = _assign_orbits(config, group, p_orbits, f_orbits)
    _metrics.inc("matching.orbit_matches", len(assignments))
    destinations: list[np.ndarray | None] = [None] * config.n
    for orbit, (orbit_positions, per_position) in assignments:
        _match_within_orbit(config, group, orbit, orbit_positions,
                            per_position, destinations, slack)
    assert all(d is not None for d in destinations)
    return destinations  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Degenerate shortcuts
# ----------------------------------------------------------------------
def _direct_cases(config, targets, slack) -> list[np.ndarray] | None:
    """F̃ already equals P, or F̃ is a single gathering point."""
    distinct, _ = _collapse(targets, slack)
    if len(distinct) == 1:
        return [distinct[0].copy() for _ in range(config.n)]
    if len(distinct) == config.n and _same_point_set(
            config.points, targets, slack):
        return [p.copy() for p in config.points]
    return None


def _same_point_set(a, b, slack) -> bool:
    """Greedy multiset equality: each ``a`` point consumes the lowest-
    indexed unconsumed ``b`` point within ``slack``."""
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    if a_arr.shape != b_arr.shape:
        return False
    candidates = get_backend().neighbor_index(b_arr).query_ball(a_arr, slack)
    used = [False] * len(b_arr)
    for near in candidates:
        hit = None
        for i in sorted(near):
            if not used[i]:
                hit = i
                break
        if hit is None:
            return False
        used[hit] = True
    return True


def _collapse(points, slack):
    """Distinct positions with multiplicities, earliest point first.

    A point joins the earliest *representative* within ``slack`` (not
    merely the earliest earlier point — the clustering is representative
    -anchored, not chained), else becomes a new representative.
    """
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    neighbors = get_backend().neighbor_index(pts).query_ball(pts, slack)
    distinct: list[np.ndarray] = []
    multiplicities: list[int] = []
    slot_of: dict[int, int] = {}
    for k in range(n):
        hit = None
        for j in sorted(neighbors[k]):
            if j < k and j in slot_of:
                hit = j
                break
        if hit is None:
            slot_of[k] = len(distinct)
            distinct.append(pts[k].copy())
            multiplicities.append(1)
        else:
            multiplicities[slot_of[hit]] += 1
    return distinct, multiplicities


# ----------------------------------------------------------------------
# Target-side orbits and the agreed ordering
# ----------------------------------------------------------------------
def _target_position_orbits(config, group: RotationGroup, positions,
                            multiplicities, slack):
    """G-orbits of F̃'s distinct positions, in agreed order.

    Returns a list of entries ``(positions, per_position, capacity)``:
    ``per_position`` robots of each assigned P-orbit land on each
    position; ``capacity`` counts how many P-orbits the entry absorbs.
    """
    center = config.center
    tree = get_backend().neighbor_index(np.asarray(positions, dtype=float))
    unassigned = list(range(len(positions)))
    orbits: list[list[int]] = []
    while unassigned:
        seed = unassigned[0]
        members: list[int] = []
        for mat in group.elements:
            image = center + mat @ (positions[seed] - center)
            idx = _find_index(tree, image, slack)
            if idx is None:
                raise MatchingError(
                    "gamma(P) does not act on the embedded pattern")
            if idx not in members:
                members.append(idx)
        if multiplicities[seed] != multiplicities[members[0]]:
            raise MatchingError("inconsistent multiplicities on an orbit")
        for idx in members:
            if idx in unassigned:
                unassigned.remove(idx)
        orbits.append(sorted(members))

    entries = []
    for orbit in orbits:
        stabilizer = group.order // len(orbit)
        mult = multiplicities[orbit[0]]
        if mult % stabilizer != 0:
            raise MatchingError(
                "multiplicity not divisible by the stabilizer size "
                "(embedded pattern violates Definition 6)")
        capacity = mult // stabilizer
        entries.append({
            "positions": [positions[i] for i in orbit],
            "per_position": stabilizer,
            "capacity": capacity,
        })
    return _order_target_orbits(config, entries)


def _order_target_orbits(config, entries):
    """Order F̃'s orbits: radius, then intra-F̃ local views, then the
    distance profile to P (breaking ties between orbits that are
    symmetric inside F̃ but not relative to P)."""
    f_config = Configuration([p for e in entries for p in e["positions"]])
    views: dict[int, tuple] = {}
    flat = 0
    for ei, e in enumerate(entries):
        best = None
        for _ in e["positions"]:
            v = local_view(f_config, flat)
            best = v if best is None or v < best else best
            flat += 1
        views[ei] = best

    center = config.center
    scale = max(config.radius, 1e-300)
    points = np.asarray(config.points, dtype=float)

    def key(ei):
        e = entries[ei]
        pos = np.asarray(e["positions"], dtype=float)
        radius = float(canonical_round(
            np.linalg.norm(pos[0] - center) / scale, 6))
        dists = canonical_round(np.linalg.norm(
            pos[:, None, :] - points[None, :, :], axis=2) / scale, 6)
        dists = np.atleast_2d(dists)
        dists.sort(axis=1)
        profile = sorted(map(tuple, dists.tolist()))
        return (radius, views[ei], tuple(profile))

    order = sorted(range(len(entries)), key=key)
    keys = [key(ei) for ei in order]
    # Distance profiles are reflection-blind; separate remaining ties
    # with a handedness-aware signature (cf. the embedding step).
    resolved: list[int] = []
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and keys[j + 1] == keys[i]:
            j += 1
        if j == i:
            resolved.append(order[i])
        else:
            tied = order[i:j + 1]
            chiral = sorted(
                (_orbit_chiral_key(config, entries[ei]["positions"]), ei)
                for ei in tied)
            for (a, _), (b, _) in zip(chiral, chiral[1:]):
                if a == b:
                    raise MatchingError(
                        "embedded pattern orbits are not totally ordered")
            resolved.extend(ei for _, ei in chiral)
        i = j + 1
    return [entries[ei] for ei in resolved]


def _orbit_chiral_key(config, positions) -> tuple:
    """Rotation-invariant, reflection-sensitive key of a target orbit
    relative to the robots (triple-product profile).

    For each target position the profile holds, per robot pair, the
    pair's (distance-to-target, radius) keys in sorted order and the
    triple product ``det[f, p, q]`` with ``p, q`` in key order (made
    unsigned when the keys tie — the sign is then not agreed).  All
    pairs are evaluated at once: the determinants are the dot products
    of ``f`` with the precomputed pairwise cross products.
    """
    center = config.center
    scale = max(config.radius, 1e-300)
    rel_p = (np.asarray(config.points, dtype=float) - center) / scale
    n = len(rel_p)
    radii = canonical_round(np.linalg.norm(rel_p, axis=1), 6)
    iu, ju = np.triu_indices(n, k=1)
    cross = np.cross(rel_p[iu], rel_p[ju])
    r_i, r_j = radii[iu], radii[ju]
    profile = []
    for f in positions:
        rel_f = (np.asarray(f, dtype=float) - center) / scale
        d = canonical_round(np.linalg.norm(rel_p - rel_f, axis=1), 6)
        d_i, d_j = d[iu], d[ju]
        swap = (d_j < d_i) | ((d_j == d_i) & (r_j < r_i))
        equal = (d_j == d_i) & (r_j == r_i)
        dets = cross @ rel_f
        dets = np.where(swap, -dets, dets)
        dets = np.where(equal, np.abs(dets), dets)
        dets = canonical_round(dets, 5)
        ka_d = np.where(swap, d_j, d_i)
        ka_r = np.where(swap, r_j, r_i)
        kb_d = np.where(swap, d_i, d_j)
        kb_r = np.where(swap, r_i, r_j)
        rows = sorted(zip(ka_d.tolist(), ka_r.tolist(), kb_d.tolist(),
                          kb_r.tolist(), np.atleast_1d(dets).tolist()))
        profile.append(tuple(
            ((ad, ar), (bd, br), det) for ad, ar, bd, br, det in rows))
    profile.sort()
    return tuple(profile)


def _find_index(tree: NeighborIndex, image, slack) -> int | None:
    near = tree.query_ball(np.asarray(image, dtype=float), 10 * slack)
    return min(near) if near else None


# ----------------------------------------------------------------------
# Rank-to-rank orbit assignment
# ----------------------------------------------------------------------
def _assign_orbits(config, group, p_orbits, f_entries):
    """Pair each P-orbit (in order) with target capacity (in order)."""
    slots = []
    for entry in f_entries:
        for _ in range(entry["capacity"]):
            slots.append((entry["positions"], entry["per_position"]))
    if len(slots) != len(p_orbits):
        raise MatchingError(
            f"orbit count mismatch: {len(p_orbits)} robot orbits vs "
            f"{len(slots)} target capacity slots")
    for orbit, slot in zip(p_orbits, slots):
        expected = slot[1] * len(slot[0])
        if len(orbit) != expected:
            raise MatchingError(
                "orbit sizes do not line up with target capacities")
    return list(zip(p_orbits, slots))


# ----------------------------------------------------------------------
# Within-orbit nearest matching with the chirality rule
# ----------------------------------------------------------------------
def _match_within_orbit(config, group, orbit, positions, per_position,
                        destinations, slack):
    center = config.center
    pts = np.asarray([config.points[r] for r in orbit], dtype=float)
    pos = np.asarray(positions, dtype=float)
    dists = get_backend().pairwise_distances(pts, pos)
    tied_mask = dists <= dists.min(axis=1, keepdims=True) + 10 * slack

    chosen: dict[int, int] = {}
    for row, robot in enumerate(orbit):
        ties = np.nonzero(tied_mask[row])[0].tolist()
        if len(ties) == 1:
            chosen[robot] = ties[0]
        elif len(ties) == 2:
            chosen[robot] = _chirality_pick(
                group,
                config.points[robot] - center,
                positions[ties[0]] - center,
                positions[ties[1]] - center, ties, slack)
        else:
            raise MatchingError(
                f"robot has {len(ties)} nearest targets; Lemma 14 "
                "guarantees at most two for free orbits")

    counts = [0] * len(positions)
    for robot in orbit:
        counts[chosen[robot]] += 1
    if any(c != per_position for c in counts):
        raise MatchingError(
            "nearest matching is unbalanced; chirality rule failed "
            f"(counts {counts}, expected {per_position} each)")
    for robot in orbit:
        destinations[robot] = positions[chosen[robot]].copy()


def _chirality_pick(group, p_rel, f0_rel, f1_rel, ties, slack):
    """Resolve a two-way nearest tie — the paper's screw rule.

    By Lemma 14 the conflict lies on a cycle generated by the group
    element ``g`` with ``g f0 = f1``, around ``g``'s (unique) rotation
    axis.  Comparing the triple products ``det[axis, p, f]`` of the two
    candidates picks a consistent direction around that axis: the rule
    commutes with ``g`` (the axis is fixed by ``g``), so symmetric
    robots make compatible choices and the matching stays perfect.

    A plain ``det[p, f0, f1]`` comparison is used first (it is the
    cheaper equivalent when non-degenerate) with the axis rule as the
    robust fallback for the coplanar/antipodal cases.
    """
    from repro.obs import metrics as _metrics

    _metrics.inc("matching.tie_breaks")
    det = float(np.linalg.det(np.column_stack([p_rel, f0_rel, f1_rel])))
    scale = (np.linalg.norm(p_rel) * np.linalg.norm(f0_rel)
             * np.linalg.norm(f1_rel))
    if abs(det) > DEFAULT_TOL.abs_tol * max(scale, 1e-300):
        return ties[0] if det > 0 else ties[1]

    from repro.geometry.rotations import rotation_angle, rotation_axis

    picks = set()
    for mat in group.elements:
        if float(np.linalg.norm(mat @ f0_rel - f1_rel)) > 10 * slack:
            continue
        if rotation_angle(mat) < DEFAULT_TOL.coincidence_slack(1.0):
            continue
        axis = rotation_axis(mat)
        s0 = float(np.linalg.det(np.column_stack([axis, p_rel, f0_rel])))
        s1 = float(np.linalg.det(np.column_stack([axis, p_rel, f1_rel])))
        if abs(s0 - s1) <= DEFAULT_TOL.coincidence_slack(1.0) * max(scale,
                                                                    1e-300):
            continue
        picks.add(ties[0] if s0 > s1 else ties[1])
    if len(picks) != 1:
        raise MatchingError(
            "degenerate chirality tie between nearest targets")
    return picks.pop()
