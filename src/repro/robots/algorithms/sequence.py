"""Forming a cyclic *sequence* of patterns (Das et al., related work).

The paper's related work cites the formation of a sequence of
geometric patterns by oblivious robots (Das, Flocchini, Santoro,
Yamashita; Distrib. Comput. 2015): oblivious robots can realize a
cyclic sequence ``F_1, F_2, ..., F_m, F_1, ...`` — a *geometric global
memory* — precisely when the patterns can encode which one comes next.

This module implements the natural 3D analogue on top of ``ψ_PF``:

* every pattern of the sequence must be formable from every other one
  (``ϱ(F_i) = ϱ(F_j)`` for all ``i, j`` — mirroring the 2D condition
  that all patterns share one symmetricity), and the patterns must be
  pairwise non-similar (otherwise the robots cannot tell where in the
  sequence they are);
* the oblivious algorithm looks at the current configuration: if it is
  similar to some ``F_i``, it heads for ``F_{i+1}``; otherwise it
  treats the configuration as transient and keeps driving toward the
  pattern it was already converging to (resolved deterministically as
  the first pattern formable from the current configuration).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.configuration import Configuration
from repro.core.formability import formability_report
from repro.core.symmetricity import symmetricity_of_multiset
from repro.errors import UnsolvableError
from repro.robots.algorithms.pattern_formation import (
    make_pattern_formation_algorithm,
)
from repro.robots.model import Observation

__all__ = ["validate_sequence", "make_sequence_formation_algorithm"]


def validate_sequence(patterns) -> list[Configuration]:
    """Check the solvability conditions for a cyclic pattern sequence.

    Raises
    ------
    UnsolvableError
        If the patterns do not share a symmetricity, are not pairwise
        distinguishable (non-similar), or have mismatched sizes.
    """
    configs = [Configuration(p) for p in patterns]
    if len(configs) < 2:
        raise UnsolvableError("a sequence needs at least two patterns")
    n = configs[0].n
    if any(c.n != n for c in configs):
        raise UnsolvableError("all patterns must have the same size")
    rhos = [symmetricity_of_multiset(c) for c in configs]
    for i in range(1, len(rhos)):
        if rhos[i].specs != rhos[0].specs:
            raise UnsolvableError(
                "sequence patterns must share one symmetricity "
                f"(pattern 0 has {sorted(map(str, rhos[0].maximal))}, "
                f"pattern {i} has {sorted(map(str, rhos[i].maximal))})")
    for i in range(len(configs)):
        for j in range(i + 1, len(configs)):
            if configs[i].is_similar_to(configs[j]):
                raise UnsolvableError(
                    f"patterns {i} and {j} are similar: the oblivious "
                    "robots could not tell them apart")
    return configs


def make_sequence_formation_algorithm(
        patterns) -> Callable[[Observation], np.ndarray]:
    """Oblivious algorithm cycling through ``patterns`` forever.

    The configuration itself encodes the phase: similarity to ``F_i``
    triggers a move toward ``F_{i+1 mod m}``.
    """
    configs = validate_sequence(patterns)
    formers = [make_pattern_formation_algorithm(c.points)
               for c in configs]

    def sequence_algorithm(observation: Observation) -> np.ndarray:
        current = Configuration(observation.points)
        for i, pattern in enumerate(configs):
            if current.is_similar_to(pattern):
                return formers[(i + 1) % len(configs)](observation)
        # Transient configuration: converge to the first pattern the
        # current configuration can still form (deterministic and
        # shared by all robots, since it only depends on the
        # observation up to similarity).
        for i, pattern in enumerate(configs):
            try:
                report = formability_report(current, pattern)
            except Exception:
                continue
            if report.formable:
                return formers[i](observation)
        raise UnsolvableError(
            "no pattern of the sequence is formable from the current "
            "configuration")

    return sequence_algorithm
