"""Adversarial assignment of local coordinate systems.

The impossibility half of Theorem 1.1 rests on Lemma 4: for any
``G ∈ ϱ(P)`` there is an arrangement of local coordinate systems with
``σ(P) = G`` that no algorithm can break.  This module constructs such
arrangements explicitly (used by the benchmarks that validate the
lower bound) alongside ordinary random frames.
"""

from __future__ import annotations

import numpy as np

from repro.core.configuration import Configuration
from repro.core.decomposition import orbit_decomposition
from repro.errors import SimulationError
from repro.geometry.tolerance import DEFAULT_TOL
from repro.groups.group import RotationGroup
from repro.robots.model import LocalFrame

__all__ = ["identity_frames", "random_frames", "symmetric_frames"]


def identity_frames(n: int) -> list[LocalFrame]:
    """All robots share the global orientation and unit (debug aid)."""
    return [LocalFrame() for _ in range(n)]


def random_frames(n: int, rng: np.random.Generator,
                  scale_range: tuple[float, float] = (0.25, 4.0)
                  ) -> list[LocalFrame]:
    """Independent uniformly-random frames — the 'generic' adversary."""
    return [LocalFrame.random(rng, scale_range) for _ in range(n)]


def symmetric_frames(config: Configuration, witness: RotationGroup,
                     rng: np.random.Generator,
                     scale_range: tuple[float, float] = (0.25, 4.0)
                     ) -> list[LocalFrame]:
    """Frames realizing ``σ(P) = G`` for a symmetricity witness ``G``.

    ``witness`` must be a concrete arrangement acting on ``config``
    with every orbit free (size ``|G|``) — exactly what
    :func:`repro.core.symmetricity.symmetricity` records.  For each
    orbit a random frame is drawn for one representative and the
    group's rotations are pushed onto the other members, so symmetric
    robots obtain *identical* local observations forever (Lemma 2).

    Raises
    ------
    SimulationError
        If some orbit is not free (a robot on a rotation axis of the
        witness cannot receive a consistent symmetric frame).
    """
    orbits = orbit_decomposition(config, witness)
    center = config.center
    frames: list[LocalFrame | None] = [None] * config.n
    for orbit in orbits:
        if len(orbit) != witness.order:
            raise SimulationError(
                "witness group does not act freely on the configuration")
        rep = orbit[0]
        rep_frame = LocalFrame.random(rng, scale_range)
        rep_rel = config.points[rep] - center
        used: set[int] = set()
        for mat in witness.elements:
            image = mat @ rep_rel
            target = _find_orbit_member(config, orbit, used, image, center)
            frames[target] = rep_frame.composed_with(mat)
            used.add(target)
    assert all(f is not None for f in frames)
    return frames  # type: ignore[return-value]


def _find_orbit_member(config: Configuration, orbit, used, image,
                       center) -> int:
    slack = DEFAULT_TOL.alignment_slack(config.radius)
    for idx in orbit:
        if idx in used:
            continue
        if float(np.linalg.norm(config.points[idx] - center - image)) <= slack:
            return idx
    raise SimulationError("orbit member for group image not found")
