"""The 2D baseline: Suzuki–Yamashita pattern formation in the plane.

The paper generalizes the classic 2D result (SICOMP 1999 / TCS 2010):
FSYNC robots in the plane can form ``F`` from ``P`` iff the 2D
symmetricity ``ρ(P)`` divides ``ρ(F)``.  This subpackage implements
that baseline — 2D symmetricity, the divisibility characterization,
and an oblivious FSYNC formation algorithm with its own planar
simulator — so the benchmarks can exhibit the 3D result as a strict
generalization.
"""

from repro.twod.symmetricity import symmetricity_2d, center_2d
from repro.twod.formation import (
    is_formable_2d,
    make_formation_algorithm_2d,
)
from repro.twod.sim import Frame2D, FsyncScheduler2D, random_frames_2d

__all__ = [
    "symmetricity_2d",
    "center_2d",
    "is_formable_2d",
    "make_formation_algorithm_2d",
    "Frame2D",
    "FsyncScheduler2D",
    "random_frames_2d",
]
