"""The 2D baseline formation algorithm (Suzuki–Yamashita style).

Characterization: FSYNC robots in the plane form ``F`` from ``P`` iff
``ρ(P)`` divides ``ρ(F)``.  The oblivious algorithm mirrors the 3D
construction in miniature:

* a robot at the circle center leaves it (the 2D symmetry breaking —
  the only one available in the plane);
* the target is embedded by aligning scale, center, and a reference
  angle taken from the first ``C_ρ``-orbit of ``P``;
* robots move to nearest matched targets, orbit rank by orbit rank,
  with counterclockwise tie-breaking.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.geometry.tolerance import (
    ANGLE_WRAP_EPS,
    AXIS_NORM_FLOOR,
    DEFAULT_TOL,
)

from repro.errors import MatchingError, SimulationError, UnsolvableError
from repro.twod.sim import Observation2D
from repro.twod.symmetricity import (
    center_2d,
    rotation_group_order_2d,
    symmetricity_2d,
)

__all__ = ["is_formable_2d", "make_formation_algorithm_2d",
           "are_similar_2d"]


def is_formable_2d(initial, target) -> bool:
    """The divisibility characterization ``ρ(P) | ρ(F)``."""
    p = [np.asarray(q, dtype=float)[:2] for q in initial]
    f = [np.asarray(q, dtype=float)[:2] for q in target]
    if len(p) != len(f):
        return False
    return symmetricity_2d(f) % symmetricity_2d(p) == 0


def are_similar_2d(first, second, slack: float | None = None) -> bool:
    """Similarity in the plane (rotation + scale + translation only;
    reflections are excluded, as in the 3D model's chirality)."""
    if slack is None:
        slack = DEFAULT_TOL.geometric_slack(1.0)
    a = [np.asarray(p, dtype=float)[:2] for p in first]
    b = [np.asarray(p, dtype=float)[:2] for p in second]
    if len(a) != len(b):
        return False
    a_arr = np.asarray(a) - np.mean(a, axis=0)
    b_arr = np.asarray(b) - np.mean(b, axis=0)
    rms_a = float(np.sqrt((a_arr ** 2).sum() / len(a)))
    rms_b = float(np.sqrt((b_arr ** 2).sum() / len(b)))
    if rms_a <= slack or rms_b <= slack:
        return rms_a <= slack and rms_b <= slack
    a_arr /= rms_a
    b_arr /= rms_b
    i0 = int(np.argmax(np.linalg.norm(a_arr, axis=1)))
    p0 = a_arr[i0]
    r0 = float(np.linalg.norm(p0))
    for q0 in b_arr:
        if abs(float(np.linalg.norm(q0)) - r0) > 10 * slack:
            continue
        cos = float(np.dot(p0, q0)) / (r0 * r0)
        sin = float(p0[0] * q0[1] - p0[1] * q0[0]) / (r0 * r0)
        rot = np.array([[cos, -sin], [sin, cos]])
        if _multiset_close(a_arr @ rot.T, b_arr, 100 * slack):
            return True
    return False


def _multiset_close(a, b, slack) -> bool:
    remaining = list(range(len(b)))
    for p in a:
        hit = None
        for pos, j in enumerate(remaining):
            if float(np.linalg.norm(p - b[j])) <= slack:
                hit = pos
                break
        if hit is None:
            return False
        remaining.pop(hit)
    return True


def make_formation_algorithm_2d(
        target_points) -> Callable[[Observation2D], np.ndarray]:
    """Build the oblivious 2D formation algorithm for target ``F``."""
    target = [np.asarray(p, dtype=float)[:2] for p in target_points]

    def psi_2d(observation: Observation2D) -> np.ndarray:
        points = [np.asarray(p, dtype=float) for p in observation.points]
        own = points[observation.self_index]
        if are_similar_2d(points, target):
            return own
        center = center_2d(points)
        scale = max(float(np.linalg.norm(p - center)) for p in points)
        slack = DEFAULT_TOL.geometric_slack(scale)

        if float(np.linalg.norm(own - center)) <= slack:
            return _leave_center(points, observation.self_index, center)
        if any(float(np.linalg.norm(p - center)) <= slack for p in points):
            # The center robot breaks the symmetry first; wait.
            return own

        if not is_formable_2d(points, target):
            raise UnsolvableError(
                "2D instance violates the divisibility condition")
        if _is_gather_target(target):
            return center
        rho = rotation_group_order_2d(points, center=center)
        embedded = _embed_2d(points, center, scale, rho, target)
        destinations = _match_2d(points, center, rho, embedded)
        return destinations[observation.self_index]

    return psi_2d


def _is_gather_target(target) -> bool:
    first = target[0]
    return all(float(np.linalg.norm(p - first))
               <= DEFAULT_TOL.coincidence_slack(1.0) for p in target)


def _leave_center(points, self_index, center) -> np.ndarray:
    """The center robot walks off c(P), enabling ρ(P') = 1."""
    others = [float(np.linalg.norm(p - center))
              for i, p in enumerate(points) if i != self_index]
    inner = min(r for r in others if r > AXIS_NORM_FLOOR)
    direction = np.array([0.7432, 0.6690])  # local frame dependent
    return center + (inner / 2.0) * direction


# ----------------------------------------------------------------------
# Embedding
# ----------------------------------------------------------------------
def _angle(v) -> float:
    a = float(np.arctan2(v[1], v[0])) % (2.0 * np.pi)
    if a >= 2.0 * np.pi - ANGLE_WRAP_EPS:
        a = 0.0
    return a


def _orbits_2d(points, center, rho, slack):
    """C_rho orbits as index lists (requires the group to act)."""
    rel = [p - center for p in points]
    unassigned = set(range(len(points)))
    step = 2.0 * np.pi / rho
    cos, sin = np.cos(step), np.sin(step)
    rot = np.array([[cos, -sin], [sin, cos]])
    orbits = []
    while unassigned:
        seed = min(unassigned)
        orbit = [seed]
        current = rel[seed]
        for _ in range(rho - 1):
            current = rot @ current
            hit = None
            for j in unassigned:
                if j in orbit:
                    continue
                if float(np.linalg.norm(rel[j] - current)) <= 10 * slack:
                    hit = j
                    break
            if hit is None:
                # A stabilizer hit (the image is a point already in the
                # orbit, e.g. the center) is fine; otherwise the group
                # does not act.
                if any(float(np.linalg.norm(rel[j] - current)) <= 10 * slack
                       for j in orbit):
                    continue
                raise MatchingError("C_rho does not act on the points")
            orbit.append(hit)
        for j in orbit:
            unassigned.discard(j)
        orbits.append(orbit)
    return orbits


def _orbit_view(points, center, scale, orbit_member) -> tuple:
    """Rotation-invariant view of a point: the configuration in polar
    coordinates relative to the point's own angle."""
    rel = [(p - center) / scale for p in points]
    theta0 = _angle(rel[orbit_member])
    entries = []
    for r in rel:
        radius = float(np.linalg.norm(r))
        delta = (_angle(r) - theta0) % (2.0 * np.pi)
        if delta >= 2.0 * np.pi - ANGLE_WRAP_EPS:
            delta = 0.0
        entries.append((round(radius, 6), round(delta, 6)))
    return tuple(sorted(entries))


def _ordered_orbits_2d(points, center, scale, orbits):
    keyed = []
    for orbit in orbits:
        radius = round(float(
            np.linalg.norm(points[orbit[0]] - center)) / scale, 6)
        view = min(_orbit_view(points, center, scale, j) for j in orbit)
        keyed.append(((radius, view), orbit))
    keyed.sort(key=lambda item: item[0])
    return [orbit for _, orbit in keyed]


def _embed_2d(points, center, scale, rho, target):
    """Rotate/scale/translate ``F`` into ``P``'s circle, aligning the
    reference angles of the first orbits on both sides."""
    f_center = center_2d(target)
    f_scale = max(float(np.linalg.norm(p - f_center)) for p in target)
    slack = DEFAULT_TOL.geometric_slack(scale)
    orbits = _orbits_2d(points, center, rho, slack)
    ordered = _ordered_orbits_2d(points, center, scale, orbits)
    theta_p = _angle(points[ordered[0][0]] - center)

    f_rel = [p - f_center for p in target]
    off = [r for r in f_rel
           if float(np.linalg.norm(r))
           > DEFAULT_TOL.coincidence_slack(1.0) * f_scale]
    if not off:
        return [center.copy() for _ in target]
    ref = min(off, key=lambda r: (round(float(np.linalg.norm(r)), 9),
                                  round(_angle(r), 9)))
    theta_f = _angle(ref)
    spin = theta_p - theta_f
    cos, sin = np.cos(spin), np.sin(spin)
    rot = np.array([[cos, -sin], [sin, cos]])
    factor = scale / f_scale
    return [center + factor * (rot @ r) for r in f_rel]


# ----------------------------------------------------------------------
# Matching
# ----------------------------------------------------------------------
def _match_2d(points, center, rho, embedded):
    scale = max(float(np.linalg.norm(p - center)) for p in points)
    slack = DEFAULT_TOL.geometric_slack(scale)
    orbits = _orbits_2d(points, center, rho, slack)
    ordered = _ordered_orbits_2d(points, center, scale, orbits)

    positions, mults = _collapse_2d(embedded, slack)
    entries = _target_orbits_2d(points, positions, mults, center, rho,
                                scale, slack)

    slots = []
    for entry in entries:
        for _ in range(entry["capacity"]):
            slots.append(entry)
    if len(slots) != len(ordered):
        raise MatchingError("2D orbit/capacity mismatch")

    destinations = [None] * len(points)
    for orbit, entry in zip(ordered, slots):
        _match_orbit_2d(points, center, orbit, entry, destinations, slack)
    assert all(d is not None for d in destinations)
    return destinations


def _collapse_2d(points, slack):
    distinct, mults = [], []
    for p in points:
        for i, q in enumerate(distinct):
            if float(np.linalg.norm(p - q)) <= slack:
                mults[i] += 1
                break
        else:
            distinct.append(p)
            mults.append(1)
    return distinct, mults


def _target_orbits_2d(points, positions, mults, center, rho, scale, slack):
    orbits = _orbits_2d(positions, center, rho, slack) if positions else []
    # Points at the center are fixed by every rotation; _orbits_2d puts
    # each in a singleton orbit, which is correct.
    entries = []
    for orbit in orbits:
        stabilizer = rho // len(orbit)
        mult = mults[orbit[0]]
        if mult % stabilizer != 0:
            raise MatchingError("2D multiplicity/stabilizer mismatch")
        entries.append({
            "positions": [positions[i] for i in orbit],
            "per_position": stabilizer,
            "capacity": mult // stabilizer,
        })
    def invariant_key(entry):
        radius = round(float(
            np.linalg.norm(entry["positions"][0] - center)) / scale, 6)
        # Distance profiles to the robots are rotation invariant, so
        # every observer orders the target orbits identically.
        profile = tuple(sorted(
            tuple(sorted(round(float(np.linalg.norm(f - p)) / scale, 6)
                         for p in points))
            for f in entry["positions"]))
        return (radius, profile)

    keyed = sorted((invariant_key(e), e) for e in entries)
    for (key_a, _), (key_b, _) in zip(keyed, keyed[1:]):
        if key_a == key_b:
            raise MatchingError("2D target orbits are not totally ordered")
    return [e for _, e in keyed]


def _match_orbit_2d(points, center, orbit, entry, destinations, slack):
    positions = entry["positions"]
    per_position = entry["per_position"]
    chosen = {}
    for robot in orbit:
        p = points[robot]
        dists = [float(np.linalg.norm(p - f)) for f in positions]
        d_min = min(dists)
        ties = [j for j, d in enumerate(dists) if d <= d_min + 10 * slack]
        if len(ties) == 1:
            chosen[robot] = ties[0]
        else:
            chosen[robot] = _ccw_pick(p - center,
                                      [positions[j] - center for j in ties],
                                      ties)
    counts = [0] * len(positions)
    for robot in orbit:
        counts[chosen[robot]] += 1
    if any(c != per_position for c in counts):
        raise MatchingError(f"2D nearest matching unbalanced: {counts}")
    for robot in orbit:
        destinations[robot] = positions[chosen[robot]].copy()


def _ccw_pick(p_rel, candidates_rel, ties):
    """Counterclockwise tie-break: the paper's 2D screw rule."""
    best = None
    best_delta = None
    theta_p = _angle(p_rel)
    for idx, f_rel in zip(ties, candidates_rel):
        delta = (_angle(f_rel) - theta_p) % (2.0 * np.pi)
        if best_delta is None or delta < best_delta:
            best_delta = delta
            best = idx
    return best
