"""Planar FSYNC simulator for the 2D baseline.

2D local frames are rotations (no reflections — the 2D model assumes
common chirality, matching the paper's right-handedness assumption in
3D) plus uniform scalings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.geometry.tolerance import DEFAULT_TOL

from repro.errors import SimulationError

__all__ = ["Frame2D", "Observation2D", "FsyncScheduler2D",
           "random_frames_2d", "ExecutionResult2D"]


@dataclass(frozen=True)
class Frame2D:
    """A planar local coordinate system: rotation angle plus scale."""

    angle: float = 0.0
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise SimulationError("2D frame scale must be positive")

    def _matrix(self) -> np.ndarray:
        c, s = np.cos(self.angle), np.sin(self.angle)
        return np.array([[c, -s], [s, c]])

    def observe(self, world_point, position) -> np.ndarray:
        rel = np.asarray(world_point, dtype=float) - np.asarray(
            position, dtype=float)
        return (self._matrix().T @ rel) / self.scale

    def to_world(self, local_point, position) -> np.ndarray:
        return np.asarray(position, dtype=float) + self.scale * (
            self._matrix() @ np.asarray(local_point, dtype=float))


class Observation2D:
    """A planar Look-phase snapshot in local coordinates."""

    def __init__(self, points, self_index: int, target=None) -> None:
        self.points = [np.asarray(p, dtype=float) for p in points]
        self.self_index = int(self_index)
        self.target = None if target is None else [
            np.asarray(p, dtype=float) for p in target]

    def own_position(self) -> np.ndarray:
        return self.points[self.self_index]


@dataclass
class ExecutionResult2D:
    """Trace of a planar FSYNC run."""

    configurations: list[list[np.ndarray]]
    reached: bool
    fixpoint: bool

    @property
    def rounds(self) -> int:
        return len(self.configurations) - 1

    @property
    def final(self) -> list[np.ndarray]:
        return self.configurations[-1]


def random_frames_2d(n: int, rng: np.random.Generator,
                     scale_range: tuple[float, float] = (0.25, 4.0)
                     ) -> list[Frame2D]:
    """Independent random planar frames."""
    low, high = scale_range
    return [Frame2D(angle=float(rng.uniform(0, 2 * np.pi)),
                    scale=float(np.exp(rng.uniform(np.log(low),
                                                   np.log(high)))))
            for _ in range(n)]


class FsyncScheduler2D:
    """FSYNC Look–Compute–Move in the plane."""

    def __init__(self, algorithm: Callable[[Observation2D], np.ndarray],
                 frames: list[Frame2D], target=None) -> None:
        self.algorithm = algorithm
        self.frames = list(frames)
        self.target = target

    def step(self, points: list[np.ndarray]) -> list[np.ndarray]:
        if len(points) != len(self.frames):
            raise SimulationError("one frame per robot is required")
        destinations = []
        for i, (pos, frame) in enumerate(zip(points, self.frames)):
            local = [frame.observe(p, pos) for p in points]
            obs = Observation2D(local, self_index=i, target=self.target)
            d = np.asarray(self.algorithm(obs), dtype=float)
            if d.shape != (2,) or not np.all(np.isfinite(d)):
                raise SimulationError("2D algorithm must return a 2-vector")
            destinations.append(frame.to_world(d, pos))
        return destinations

    def run(self, initial_points, stop_condition=None,
            max_rounds: int = 50) -> ExecutionResult2D:
        points = [np.asarray(p, dtype=float)[:2] for p in initial_points]
        trace = [list(points)]
        if stop_condition is not None and stop_condition(points):
            return ExecutionResult2D(trace, reached=True, fixpoint=False)
        for _ in range(max_rounds):
            new_points = self.step(points)
            moved = any(float(np.linalg.norm(a - b))
                        > DEFAULT_TOL.motion_slack(1.0)
                        for a, b in zip(new_points, points))
            points = new_points
            trace.append(list(points))
            if stop_condition is not None and stop_condition(points):
                return ExecutionResult2D(trace, reached=True, fixpoint=False)
            if not moved:
                return ExecutionResult2D(trace, reached=False, fixpoint=True)
        if stop_condition is None:
            return ExecutionResult2D(trace, reached=False, fixpoint=False)
        raise SimulationError(
            f"2D execution did not terminate within {max_rounds} rounds")
