"""2D symmetricity ``ρ(P)`` (Suzuki–Yamashita).

``ρ(P)`` is the largest ``k`` such that the cyclic group ``C_k`` about
the center ``c(P)`` of the smallest enclosing circle acts on ``P`` —
with the exception that ``ρ(P) = 1`` whenever a robot sits at
``c(P)`` (that robot can simply leave, breaking every rotation).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeometryError
from repro.geometry.balls import smallest_enclosing_ball
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance

__all__ = ["center_2d", "symmetricity_2d", "rotation_group_order_2d"]


def _as_planar(points) -> list[np.ndarray]:
    pts = []
    for p in points:
        arr = np.asarray(p, dtype=float)
        if arr.shape == (2,):
            pts.append(arr)
        elif arr.shape == (3,):
            pts.append(arr[:2])
        else:
            raise GeometryError("2D points must be 2- or 3-vectors")
    return pts


def center_2d(points, tol: Tolerance = DEFAULT_TOL) -> np.ndarray:
    """Center ``c(P)`` of the smallest enclosing circle."""
    pts = _as_planar(points)
    embedded = [np.array([p[0], p[1], 0.0]) for p in pts]
    return smallest_enclosing_ball(embedded, tol).center[:2]


def rotation_group_order_2d(points, center=None,
                            tol: Tolerance = DEFAULT_TOL) -> int:
    """Largest ``k`` with ``C_k`` (about the circle center) acting on P.

    Unlike :func:`symmetricity_2d` this ignores the center-robot
    exception — it is the plain geometric rotation order.
    """
    pts = _as_planar(points)
    c = center_2d(pts, tol) if center is None else np.asarray(center)
    rel = [p - c for p in pts]
    scale = max(float(np.linalg.norm(r)) for r in rel)
    if scale <= tol.abs_tol:
        return len(pts)  # all robots at one point
    slack = tol.relative_slack(scale)
    off = [r for r in rel if float(np.linalg.norm(r)) > slack]
    if not off:
        return len(pts)
    bound = _gcd_of_shell_sizes(off, slack)
    for k in range(bound, 0, -1):
        if bound % k == 0 and _preserved_by_rotation(rel, k, slack):
            return k
    return 1


def _gcd_of_shell_sizes(off_center, slack: float) -> int:
    shells: list[tuple[float, int]] = []
    for r in off_center:
        radius = float(np.linalg.norm(r))
        for i, (existing, count) in enumerate(shells):
            if abs(existing - radius) <= 10 * slack:
                shells[i] = (existing, count + 1)
                break
        else:
            shells.append((radius, 1))
    sizes = [count for _, count in shells]
    return math.gcd(*sizes) if sizes else 1


def _preserved_by_rotation(rel, k: int, slack: float) -> bool:
    angle = 2.0 * np.pi / k
    cos, sin = np.cos(angle), np.sin(angle)
    rot = np.array([[cos, -sin], [sin, cos]])
    for r in rel:
        image = rot @ r
        if not any(float(np.linalg.norm(image - q)) <= 10 * slack
                   for q in rel):
            return False
    return True


def symmetricity_2d(points, tol: Tolerance = DEFAULT_TOL) -> int:
    """``ρ(P)`` with the center-robot exception."""
    pts = _as_planar(points)
    c = center_2d(pts, tol)
    scale = max(float(np.linalg.norm(p - c)) for p in pts)
    slack = tol.geometric_slack(scale)
    if any(float(np.linalg.norm(p - c)) <= slack for p in pts):
        distinct = len({tuple(np.round(p, 6)) for p in pts})
        if distinct > 1:
            return 1
        return len(pts)  # the point of multiplicity n has rho = n
    return rotation_group_order_2d(pts, center=c, tol=tol)
