"""Span-based tracing for the FSYNC pipeline.

The scheduler opens one span per Look–Compute–Move round and one per
phase inside it (:class:`repro.robots.scheduler.FsyncScheduler`), and
the :mod:`repro.api` façade wraps each experiment run in a root span.
Three tracers implement the same tiny protocol (``span`` /
``phase_totals`` / ``close``):

* :data:`NULL_TRACER` — the default.  ``span()`` returns one shared
  no-op context manager (no allocation, no clock read), so fully
  instrumented code with tracing disabled stays within noise of the
  uninstrumented build (``tests/obs/test_trace.py`` guards this).
* :class:`AggregatingTracer` — in-memory per-name totals (count and
  total seconds).  Used whenever a run manifest needs per-phase
  wall-time summaries but no trace file was requested.
* :class:`JsonlTracer` — additionally appends one JSON record per
  finished span to a file.  The first record is a schema-versioned
  header (:data:`TRACE_SCHEMA_VERSION`); timestamps are seconds
  relative to the tracer's construction, never epoch time.

Tracers are process-local: the workers of a parallel experiment run
keep the no-op tracer, so a trace of a ``--jobs N`` run records the
driver-side structure (experiment and fan-out spans) while a
``--jobs 1`` run records every round and phase inline.  All timing
flows through the audited clock (:mod:`repro.obs.clock`) and never
into experiment rows (REP005).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import IO, Any, Callable, Iterator

from repro.obs.clock import monotonic

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "AggregatingTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "NullTracer",
    "activated",
    "get_tracer",
    "render_phase_totals",
    "set_tracer",
]

TRACE_SCHEMA_VERSION = 1


class _NullSpan:
    """A reusable no-op context manager (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every call is a cheap no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def phase_totals(self) -> dict:
        return {}

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


class _Span:
    """One live span; records its duration when the ``with`` exits."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_depth")

    def __init__(self, tracer: "AggregatingTracer", name: str,
                 attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._depth = self._tracer._enter()
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        duration = self._tracer._clock() - self._start
        self._tracer._exit(self, self._start, duration, self._depth)
        return False


class AggregatingTracer:
    """In-memory tracer: per-span-name call counts and total seconds.

    ``phase_totals`` feeds the run manifest's per-phase wall-time
    summary.  Subclasses hook :meth:`_record` to persist individual
    spans.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else monotonic
        self._origin = self._clock()
        self._totals: dict[str, list] = {}
        self._depth = 0

    def span(self, name: str, **attrs: Any) -> _Span:
        return _Span(self, name, attrs)

    def _enter(self) -> int:
        depth = self._depth
        self._depth = depth + 1
        return depth

    def _exit(self, span: _Span, start: float, duration: float,
              depth: int) -> None:
        self._depth = depth
        bucket = self._totals.get(span.name)
        if bucket is None:
            self._totals[span.name] = [1, duration]
        else:
            bucket[0] += 1
            bucket[1] += duration
        self._record(span, start, duration, depth)

    def _record(self, span: _Span, start: float, duration: float,
                depth: int) -> None:
        """Per-span hook for persisting tracers (no-op here)."""

    def phase_totals(self) -> dict[str, dict]:
        """``{span name: {"count": n, "total_s": seconds}}``, sorted."""
        return {
            name: {"count": count, "total_s": round(total, 9)}
            for name, (count, total) in sorted(self._totals.items())
        }

    def close(self) -> None:
        pass


class JsonlTracer(AggregatingTracer):
    """Aggregating tracer that also writes a JSONL trace file.

    Record shapes (one JSON object per line)::

        {"schema": 1, "kind": "trace-header"}
        {"kind": "span", "name": ..., "depth": ...,
         "t0_s": ..., "dur_s": ..., "attrs": {...}}

    ``t0_s`` is seconds since the tracer was created (monotonic, not
    epoch).  Records are flushed on :meth:`close`.
    """

    def __init__(self, path, clock: Callable[[], float] | None = None
                 ) -> None:
        super().__init__(clock=clock)
        self._path = path
        self._handle: IO[str] | None = open(path, "w", encoding="utf-8")
        self._write({"schema": TRACE_SCHEMA_VERSION,
                     "kind": "trace-header"})

    def _write(self, record: dict) -> None:
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def _record(self, span: _Span, start: float, duration: float,
                depth: int) -> None:
        record = {
            "kind": "span",
            "name": span.name,
            "depth": depth,
            "t0_s": round(start - self._origin, 9),
            "dur_s": round(duration, 9),
        }
        if span.attrs:
            record["attrs"] = span.attrs
        self._write(record)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def render_phase_totals(totals: dict[str, dict],
                        header: str = "trace phases:") -> str:
    """Stable text rollup of :meth:`AggregatingTracer.phase_totals`.

    One line per span name (the tracer already sorts them) with the
    call count, mean and total wall time in milliseconds — the
    ``look``/``compute``/``move`` rows summarize where a run's rounds
    spent their time.  This renders the *existing* ``phase_totals``
    schema (``{name: {"count", "total_s"}}``); it never reshapes it.
    """
    lines = [header]
    if not totals:
        lines.append("  (no spans recorded)")
        return "\n".join(lines)
    for name, data in totals.items():
        count = data["count"]
        total_ms = data["total_s"] * 1000.0
        mean_ms = total_ms / count if count else 0.0
        lines.append(f"  {name}: count={count} mean_ms={mean_ms:.3f} "
                     f"total_ms={total_ms:.3f}")
    return "\n".join(lines)


_active_tracer = NULL_TRACER


def get_tracer():
    """The process's active tracer (:data:`NULL_TRACER` by default)."""
    return _active_tracer


def set_tracer(tracer) -> None:
    """Install ``tracer`` as the process's active tracer."""
    global _active_tracer
    _active_tracer = tracer


@contextmanager
def activated(tracer) -> Iterator[Any]:
    """Activate ``tracer`` for the duration of the ``with`` block."""
    previous = get_tracer()
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
