"""The metrics registry: counters, histograms, and the cache view.

One process-wide default :class:`MetricsRegistry` collects *logical*
counters from the instrumented layers — the round engine
(``scheduler.*``), the matching kernel (``matching.*``), the seeding
plumbing (``seeds.*``) and the experiment façade (``experiment.*``).
Logical counters count model events (rounds executed, observations
built, matchings solved), so they are a pure function of the work
performed: the parallel runner snapshots each worker's registry
around every chunk and merges the deltas into the driver's registry
(:func:`repro.perf.parallel.parallel_map`), and because counter merge
is addition (and histogram merge is count/total addition with
min/·max), the merged totals are identical for any ``--jobs`` value.

The three-level cache hierarchy keeps its own counters
(:func:`repro.perf.stats.hierarchy_stats`); :func:`cache_metrics`
flattens them into the same ``name -> value`` namespace
(``cache.l1.symmetry.hits``, ``cache.l2.misses``, ...), and
:func:`render_cache_metrics` is the one renderer behind every
``--cache-stats`` flag — the CLI and
:class:`repro.robots.scheduler.ExecutionResult` both read the L1
counters through :func:`l1_snapshot`/:func:`l1_delta`, so their
numbers can never disagree.

The array-backend layer (:mod:`repro.backend`) counts its kernel
calls, fallbacks and device transfers on the ``backend.*`` namespace.
Those are *performance* counters, not logical ones: how many einsum
or lexsort calls a run issues depends on cache luck (a cold worker
cache redoes detections a warm inline cache would have served), so
they are jobs-dependent by nature.  :func:`split_performance`
separates them from the logical counters and the run façade reports
them beside the cache hierarchy — in the ``backend`` section of the
metrics artifact and the ``--cache-stats`` render — never inside the
jobs-invariant logical snapshot.
"""

from __future__ import annotations

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "PERFORMANCE_PREFIXES",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "backend_metrics",
    "cache_metrics",
    "inc",
    "l1_delta",
    "l1_snapshot",
    "metrics_artifact",
    "observe",
    "registry",
    "render_cache_metrics",
    "render_snapshot",
    "snapshot_delta",
    "split_performance",
    "write_metrics",
]

#: Counter namespaces that measure performance (kernel calls issued,
#: fallbacks taken, device transfers paid) rather than logical model
#: events.  Performance counters depend on cache luck and therefore on
#: the ``--jobs`` partition; the jobs-invariance contract only covers
#: the logical remainder.  The ``serve.`` namespace (queue depth,
#: coalesce hits, deadline misses) is scheduling-dependent for the
#: same reason: two identical query bursts coalesce differently
#: depending on arrival timing.
PERFORMANCE_PREFIXES = ("backend.", "serve.")

METRICS_SCHEMA_VERSION = 1


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, value: int = 1) -> None:
        self.value += value


class Histogram:
    """Count / total / min / max summary of observed values."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def as_dict(self) -> dict:
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max}


class MetricsRegistry:
    """Named counters and histograms with mergeable snapshots."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def histogram(self, name: str) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        return hist

    def inc(self, name: str, value: int = 1) -> None:
        self.counter(name).inc(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def snapshot(self) -> dict:
        """``{"counters": {...}, "histograms": {...}}``, keys sorted."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "histograms": {name: self._histograms[name].as_dict()
                           for name in sorted(self._histograms)},
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (e.g. a worker delta) into this registry.

        Counter merge is addition and histogram merge is count/total
        addition with min-of-mins / max-of-maxes, so merging the
        chunk deltas of any worker partition yields the same totals
        as running every item inline.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += data["count"]
            hist.total += data["total"]
            for bound, pick in (("min", min), ("max", max)):
                value = data.get(bound)
                if value is None:
                    continue
                current = getattr(hist, bound)
                setattr(hist, bound,
                        value if current is None else pick(current, value))

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()


_default_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def inc(name: str, value: int = 1) -> None:
    """Increment a counter on the default registry."""
    _default_registry.inc(name, value)


def observe(name: str, value: float) -> None:
    """Observe a histogram value on the default registry."""
    _default_registry.observe(name, value)


def snapshot_delta(before: dict, after: dict) -> dict:
    """The activity between two :meth:`MetricsRegistry.snapshot` calls.

    Counters and histogram count/total subtract; min/max report the
    ``after`` bounds (the union window).  Entries with zero activity
    are dropped so a delta only names what actually happened.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            counters[name] = delta
    histograms = {}
    for name, data in after.get("histograms", {}).items():
        base = before.get("histograms", {}).get(
            name, {"count": 0, "total": 0.0})
        count = data["count"] - base["count"]
        if count:
            histograms[name] = {
                "count": count,
                "total": data["total"] - base["total"],
                "min": data["min"],
                "max": data["max"],
            }
    return {"counters": counters, "histograms": histograms}


def _flatten_ints(prefix: str, mapping: dict, into: dict) -> None:
    for key, value in mapping.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, int):
            into[f"{prefix}.{key}"] = value
        elif isinstance(value, dict):
            _flatten_ints(f"{prefix}.{key}", value, into)


def cache_metrics(stats: dict | None = None) -> dict[str, int]:
    """The cache hierarchy's counters as flat sorted metric names.

    ``cache.l1.hits``, ``cache.l1.symmetry.misses``,
    ``cache.l2.publishes``, ``cache.l3.entries``, ... — one namespace
    shared with the registry counters, pulled live from
    :func:`repro.perf.stats.hierarchy_stats` (or flattened from a
    ``stats`` snapshot in that shape).
    """
    if stats is None:
        from repro.perf.stats import hierarchy_stats

        stats = hierarchy_stats()
    flat: dict[str, int] = {}
    for level in ("l1", "l2", "l3"):
        counters = dict(stats[level])
        sub_caches = counters.pop("caches", None)
        _flatten_ints(f"cache.{level}", counters, flat)
        if sub_caches:
            _flatten_ints(f"cache.{level}", sub_caches, flat)
    return dict(sorted(flat.items()))


def split_performance(counters: dict) -> tuple[dict, dict]:
    """Split a counter mapping into (logical, performance) parts.

    Performance counters are the :data:`PERFORMANCE_PREFIXES`
    namespaces; everything else is logical.  Key order is preserved.
    """
    logical: dict = {}
    performance: dict = {}
    for name, value in counters.items():
        target = performance if name.startswith(PERFORMANCE_PREFIXES) \
            else logical
        target[name] = value
    return logical, performance


def backend_metrics() -> dict[str, int]:
    """The live ``backend.*`` performance counters, flat and sorted.

    When the run built any neighbor index, the active dense/k-d
    cutover is reported beside the ``backend.neighbor_index.*`` split
    counters (a configuration gauge, not a counter — it names the
    threshold the split was measured under).
    """
    counters = _default_registry.snapshot()["counters"]
    flat = dict(split_performance(counters)[1])
    if any(name.startswith("backend.neighbor_index.") for name in flat):
        from repro.backend.base import DENSE_INDEX_CUTOVER

        flat["backend.neighbor_index.dense_cutover"] = DENSE_INDEX_CUTOVER
    return dict(sorted(flat.items()))


def l1_snapshot() -> dict[str, dict[str, int]]:
    """Nested integer counters of the L1 congruence/round caches.

    The one source behind both ``ExecutionResult.cache_stats`` and
    the flat ``cache.l1.*`` metric names, so the scheduler's per-run
    deltas and the CLI's ``--cache-stats`` render always agree.
    """
    from repro.perf import cache_stats

    return {
        name: {key: value for key, value in counters.items()
               if isinstance(value, int) and not isinstance(value, bool)}
        for name, counters in cache_stats().items()
        if isinstance(counters, dict)
    }


def l1_delta(before: dict, after: dict) -> dict:
    """Per-run difference of two :func:`l1_snapshot` calls."""
    return {
        name: {key: value - before.get(name, {}).get(key, 0)
               for key, value in counters.items()}
        for name, counters in after.items()
    }


def render_snapshot(snapshot: dict, header: str = "metrics:") -> str:
    """Stable sorted ``name = value`` rendering of a snapshot."""
    lines = [header]
    for name in sorted(snapshot.get("counters", {})):
        lines.append(f"  {name} = {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        lines.append(
            f"  {name} count={data['count']} total={data['total']:.6f} "
            f"min={data['min']} max={data['max']}")
    return "\n".join(lines)


def render_cache_metrics(flat: dict[str, int] | None = None,
                         backend: dict[str, int] | None = None) -> str:
    """One stable sorted rendering of the L1/L2/L3 counters.

    Replaces the CLI's bespoke per-command cache printers: every
    ``--cache-stats`` flag routes through here.  Live (no-argument)
    calls also report the ``backend.*`` performance counters in their
    own section; explicit ``flat`` callers keep the historical
    cache-only output unless they pass ``backend`` too.
    """
    if flat is None:
        flat = cache_metrics()
        if backend is None:
            backend = backend_metrics()
    lines = ["cache hierarchy:"]
    for name in sorted(flat):
        lines.append(f"  {name} = {flat[name]}")
    if backend:
        lines.append("backend:")
        for name in sorted(backend):
            lines.append(f"  {name} = {backend[name]}")
    return "\n".join(lines)


def metrics_artifact(snapshot: dict | None = None,
                     extra: dict | None = None) -> dict:
    """The schema-versioned payload behind ``--metrics PATH``."""
    snapshot = snapshot if snapshot is not None \
        else _default_registry.snapshot()
    logical, performance = split_performance(snapshot.get("counters", {}))
    backend = snapshot.get("backend")
    if backend is None:
        backend = dict(sorted(performance.items()))
    payload = {
        "schema": METRICS_SCHEMA_VERSION,
        "kind": "metrics-snapshot",
        "counters": logical,
        "histograms": snapshot.get("histograms", {}),
        "cache": cache_metrics(),
        "backend": backend,
    }
    if extra:
        payload.update(extra)
    return payload


def write_metrics(path, snapshot: dict | None = None,
                  extra: dict | None = None) -> dict:
    """Write :func:`metrics_artifact` to ``path`` as sorted JSON."""
    import json
    from pathlib import Path

    payload = metrics_artifact(snapshot, extra)
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return payload
