"""Observability: tracing, metrics, and run manifests.

The layer the :mod:`repro.api` façade, the CLI and the scheduler
share for *seeing* a run without changing it:

* :mod:`repro.obs.trace` — span-based tracing of the Look–Compute–
  Move pipeline (no-op by default; JSONL artifact on request);
* :mod:`repro.obs.metrics` — the registry of logical counters and
  histograms, unified with the cache hierarchy's counters and merged
  deterministically across parallel workers;
* :mod:`repro.obs.manifest` — schema-versioned run manifests (seeds,
  cache configuration, versions, row digests, phase wall-times);
* :mod:`repro.obs.clock` — the single audited monotonic clock
  (REP005: wall-clock reads live here and nowhere else).

Timing never feeds experiment rows; it only reaches trace and
manifest artifacts.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.clock import monotonic, reset_clock, set_clock
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    deterministic_view,
    write_manifest,
)
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    cache_metrics,
    metrics_artifact,
    registry,
    render_cache_metrics,
    render_snapshot,
    snapshot_delta,
    write_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    AggregatingTracer,
    JsonlTracer,
    NullTracer,
    activated,
    get_tracer,
    set_tracer,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
    "NULL_TRACER",
    "TRACE_SCHEMA_VERSION",
    "AggregatingTracer",
    "JsonlTracer",
    "MetricsRegistry",
    "NullTracer",
    "activated",
    "build_manifest",
    "cache_metrics",
    "deterministic_view",
    "get_tracer",
    "metrics_artifact",
    "monotonic",
    "registry",
    "render_cache_metrics",
    "render_snapshot",
    "reset_clock",
    "set_clock",
    "set_tracer",
    "snapshot_delta",
    "write_manifest",
    "write_metrics",
]
