"""Deterministic run manifests: what produced these rows?

A manifest is the audit record for one experiment run: the seed and
its ``SeedSequence`` spawn-tree shape, the cache configuration, the
package and schema versions, a digest of the rows actually produced,
the run's logical metric counters, and per-phase wall-time summaries.
Everything except the ``timing`` section is a pure function of
``(experiment, spec)`` — :func:`deterministic_view` strips the
wall-clock section (and machine-local artifact paths), and
``tests/obs`` pins that the view is identical across ``--jobs``
values and repeat runs.

Wall-clock data appears *only* here and in traces, never in rows
(REP005); the timing values come from the tracer, which reads the
audited clock (:mod:`repro.obs.clock`).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "cache_config",
    "deterministic_view",
    "jsonable_rows",
    "package_info",
    "rows_digest",
    "write_manifest",
]

MANIFEST_SCHEMA_VERSION = 1

_SEED_STRATEGY = "numpy.random.SeedSequence(root).spawn per trial"


def package_info() -> dict:
    """Name and version of the package that produced the run."""
    from repro import __version__

    return {"name": "repro", "version": __version__}


def cache_config() -> dict:
    """The cache hierarchy's configuration (not its counters)."""
    import os

    from repro.perf import cache as _cache
    from repro.perf import disk as _disk
    from repro.perf import shared as _shared

    store = _disk.disk_cache()
    l3 = {"enabled": store is not None}
    if store is not None:
        info = store.info()
        l3["version"] = info.get("version")
    return {
        "enabled": _cache.is_enabled(),
        "l1_max_classes": _cache._MAX_CLASSES,
        "l2_capacity_bytes": int(os.environ.get(
            _shared._ENV_CAPACITY, _shared._DEFAULT_CAPACITY)),
        "l3": l3,
    }


def rows_digest(rows) -> str:
    """SHA-256 of the rows' canonical JSON form."""
    canonical = json.dumps(rows, sort_keys=True, default=str,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_manifest(*, experiment: str, spec: dict, rows,
                   metrics: dict, phase_totals: dict,
                   seed_streams: int = 0,
                   artifacts: dict | None = None) -> dict:
    """Assemble the manifest for one finished run.

    ``spec`` holds the driver parameters that were actually consumed
    (trials/seed/jobs/cache as applicable); ``metrics`` is the run's
    logical-counter delta; ``phase_totals`` comes from the tracer and
    is the only wall-clock-derived section; ``seed_streams`` counts
    the ``SeedSequence`` children spawned from the root seed.
    """
    json_rows = _jsonable_rows(rows)
    manifest = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "kind": "run-manifest",
        "package": package_info(),
        "experiment": experiment,
        "spec": dict(spec),
        "seeds": {
            "root": spec.get("seed"),
            "strategy": _SEED_STRATEGY,
            "streams": int(seed_streams),
        },
        "cache": cache_config(),
        "rows": {"count": len(json_rows),
                 "sha256": rows_digest(json_rows)},
        "metrics": metrics,
        "timing": {"phases": phase_totals},
    }
    if artifacts:
        manifest["artifacts"] = {name: str(path)
                                 for name, path in artifacts.items()
                                 if path is not None}
    return manifest


def jsonable_rows(rows) -> list:
    """Rows with dataclass entries expanded to plain dicts."""
    from dataclasses import asdict, is_dataclass

    return [asdict(row) if is_dataclass(row) else row for row in rows]


_jsonable_rows = jsonable_rows


def deterministic_view(manifest: dict) -> dict:
    """The manifest minus wall-clock timing and machine-local paths.

    Two runs of the same ``(experiment, spec)`` — at any ``--jobs``
    value — must agree on this view byte-for-byte.
    """
    return {key: value for key, value in manifest.items()
            if key not in ("timing", "artifacts")}


def write_manifest(path, manifest: dict) -> None:
    """Write ``manifest`` to ``path`` as sorted, indented JSON."""
    Path(path).write_text(
        json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8")
