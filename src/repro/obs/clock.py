"""The audited monotonic clock behind all observability timing.

REP005 bans wall-clock reads under ``src/`` and ``benchmarks/``
because experiment rows must be a pure function of ``(inputs, seed)``.
Tracing and run manifests *do* need durations, so this module is the
single audited exception: reprolint's REP005 rule allows
monotonic-clock reads only here (see
:mod:`repro.lint.rules.determinism`), and every other module routes
timing through :func:`monotonic`.

Two properties keep the exception safe:

* only *relative* durations are ever derived from the clock — no
  epoch timestamps, so nothing in an artifact identifies when a run
  happened;
* the clock is injectable (:func:`set_clock`), so tests drive spans
  with deterministic fake time and the tracer/manifest plumbing is
  itself testable without real timing.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["monotonic", "reset_clock", "set_clock"]


def _system_clock() -> float:
    # The single audited monotonic read in the tree (REP005 allows it
    # in this module only): timing taken here flows to trace and
    # manifest artifacts, never into experiment rows.
    return time.perf_counter()


_clock: Callable[[], float] = _system_clock


def monotonic() -> float:
    """Seconds on the active monotonic clock (injectable)."""
    return _clock()


def set_clock(clock: Callable[[], float]) -> None:
    """Replace the clock; tests inject deterministic fake time."""
    global _clock
    _clock = clock


def reset_clock() -> None:
    """Restore the system monotonic clock."""
    global _clock
    _clock = _system_clock
