"""Plane formation (Yamauchi–Uehara–Kijima–Yamashita, DISC 2015).

The predecessor problem the paper builds on: make the robots land on a
common plane without multiplicities.  Solvable iff no *3D* rotation
group survives in ``ϱ(P)`` — i.e. the tetrahedral group is not in the
symmetricity.  Implemented on top of this library's substrate:
``ψ_SYM`` breaks the 3D rotation group, then every robot moves into
the plane through ``b(P)`` perpendicular to the surviving principal
axis, at a radius that encodes its (cylindrical radius, height) class
so no two robots collide.
"""

from repro.planeformation.algorithm import (
    is_plane_formable,
    make_plane_formation_algorithm,
    is_coplanar,
)

__all__ = [
    "is_plane_formable",
    "make_plane_formation_algorithm",
    "is_coplanar",
]
