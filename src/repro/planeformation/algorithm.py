"""Plane formation built on the pattern-formation substrate.

Characterization ([21], DISC 2015): FSYNC robots cannot form a plane
from ``P`` iff ``γ(P)`` is a 3D rotation group (``T``, ``O``, ``I``)
and no robot is on its rotation axes — equivalently, iff the
symmetricity ``ϱ(P)`` contains a 3D group.  Since ``T`` is the minimal
3D group, the test is simply ``T ∉ ϱ(P)``.

Algorithm: run ``ψ_SYM`` until terminal — the surviving group
``G = γ(P') ∈ ϱ(P)`` is then cyclic or dihedral (or trivial).  The
robots agree on the plane through ``b(P')`` perpendicular to the
principal axis and on a *planar landing pattern*: one ring per orbit
of the ``G``-decomposition, each ring a free ``G``-orbit in the plane
(radius fixed by the orbit's agreed rank, azimuth chosen off the
secondary axes so the orbit stays free).  The landing pattern is an
equivariant function of ``P'``, so robots reach it with the standard
matching ``M(P, F̃)`` machinery — distinct robots land on distinct
points by construction.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.configuration import Configuration
from repro.core.decomposition import principal_axis_of_d2
from repro.core.local_views import ordered_orbits
from repro.core.symmetricity import symmetricity
from repro.errors import SimulationError, UnsolvableError
from repro.geometry.tolerance import DEFAULT_TOL
from repro.geometry.vectors import orthonormal_basis_for
from repro.groups.group import GroupKind
from repro.robots.algorithms.matching import match_configuration_to_pattern
from repro.robots.algorithms.sym import is_sym_terminal, psi_sym
from repro.robots.model import Observation

__all__ = ["is_plane_formable", "make_plane_formation_algorithm",
           "is_coplanar"]


def is_plane_formable(config: Configuration) -> bool:
    """True iff the plane formation problem is solvable from ``P``."""
    rho = symmetricity(config)
    return all(spec.is_2d for spec in rho.specs)


def is_coplanar(points, slack_scale: float | None = None) -> bool:
    """True if all points lie on one plane (within tolerance)."""
    if slack_scale is None:
        slack_scale = DEFAULT_TOL.geometric_slack(1.0)
    arr = np.asarray([np.asarray(p, dtype=float) for p in points])
    centered = arr - arr.mean(axis=0)
    if len(arr) <= 3:
        return True
    _, singular, _ = np.linalg.svd(centered, full_matrices=False)
    scale = max(float(singular[0]), 1e-300)
    return float(singular[-1]) <= slack_scale * scale


def make_plane_formation_algorithm() -> Callable[[Observation], np.ndarray]:
    """Build the oblivious plane-formation algorithm."""

    def plane_form(observation: Observation) -> np.ndarray:
        config = Configuration(observation.points)
        if is_coplanar(config.points):
            return observation.own_position()
        if not is_sym_terminal(config):
            return psi_sym(observation)
        group = config.rotation_group
        if group is not None and group.spec.is_3d:
            raise UnsolvableError(
                "plane formation unsolvable: a 3D rotation group "
                "survived symmetry breaking (T in varrho(P))")
        landing = _planar_landing_pattern(config)
        destinations = match_configuration_to_pattern(config, landing)
        return destinations[observation.self_index]

    return plane_form


def _agreed_frame(config: Configuration) -> tuple[np.ndarray, np.ndarray,
                                                  np.ndarray]:
    """In-plane directions ``(u, v)`` and the plane normal ``w``.

    ``w`` is the principal axis when the surviving group is nontrivial
    (``u`` anchored on a secondary axis for dihedral groups, on the
    first off-axis orbit for cyclic ones); for ``C_1`` a canonical
    frame from the configuration is used.  All choices are
    equivariant; residual in-plane spin is absorbed by the landing
    pattern's ``G``-invariance.
    """
    group = config.rotation_group
    if group is None:
        raise SimulationError("agreed frame needs a finite rotation group")
    if group.is_trivial:
        from repro.robots.algorithms.embedding import _canonical_frame

        frame = _canonical_frame(config)
        return frame[:, 0], frame[:, 1], frame[:, 2]
    if group.spec.kind is GroupKind.DIHEDRAL and group.spec.param == 2:
        w = principal_axis_of_d2(config, group)
    else:
        w = group.principal_axis.direction
    if group.spec.kind is GroupKind.DIHEDRAL:
        secondary = next(a.direction for a in group.axes
                         if abs(float(np.dot(a.direction, w)))
                         < DEFAULT_TOL.geometric_slack(1.0))
        u = secondary / np.linalg.norm(secondary)
    else:
        u = _first_offaxis_azimuth(config, w)
    v = np.cross(w, u)
    return u, v, w


def _first_offaxis_azimuth(config: Configuration,
                           w: np.ndarray) -> np.ndarray:
    group = config.rotation_group
    center = config.center
    slack = DEFAULT_TOL.geometric_slack(config.radius)
    for orbit in ordered_orbits(config, group):
        rel = config.points[orbit[0]] - center
        perp = rel - float(np.dot(rel, w)) * w
        if float(np.linalg.norm(perp)) > slack:
            return perp / np.linalg.norm(perp)
    # All robots on the axis: collinear, handled before we get here.
    u, _, _ = orthonormal_basis_for(w)
    return u


def _planar_landing_pattern(config: Configuration) -> list[np.ndarray]:
    """One free in-plane ``G``-orbit (ring) per orbit of ``P``."""
    group = config.rotation_group
    u, v, w = _agreed_frame(config)
    center = config.center
    radius = config.radius
    orbits = ordered_orbits(config, group)
    rings: list[np.ndarray] = []
    count = len(orbits)
    if group.spec.kind is GroupKind.DIHEDRAL:
        sector = np.pi / group.spec.param
    elif group.spec.param >= 2:
        sector = 2.0 * np.pi / group.spec.param
    else:
        sector = 2.0 * np.pi
    for i, orbit in enumerate(orbits):
        ring_radius = radius * (1.0 + i) / (count + 1.0)
        # Keep the azimuth strictly inside one sector so the in-plane
        # orbit is free (off every secondary axis).
        phi = sector * (0.25 + 0.5 * (i + 1.0) / (count + 2.0))
        seed = center + ring_radius * (np.cos(phi) * u + np.sin(phi) * v)
        ring = [center + mat @ (seed - center) for mat in group.elements]
        distinct = []
        for p in ring:
            if not any(np.linalg.norm(p - q)
                       <= DEFAULT_TOL.coincidence_slack(radius)
                       for q in distinct):
                distinct.append(p)
        if len(distinct) != len(orbit):
            raise SimulationError(
                "landing ring is not a free orbit (azimuth hit an axis)")
        rings.extend(distinct)
    return rings
