"""reprolint — domain-specific static analysis for the reproduction.

Seven file-local AST rules plus four cross-module dataflow rules
turn the model's semantic invariants into compile-time failures (see
``docs/STATIC_ANALYSIS.md``):

==========  =========================================================
REP001      tolerance discipline: float comparisons go through
            :mod:`repro.geometry.tolerance`, never raw literals
REP002      obliviousness: robot algorithms are pure functions of the
            local observation (the paper's robot model)
REP003      cache purity: L1/L2/L3 keys hash exact bytes; no mutable
            module state behind cached callables
REP004      seeding discipline: every stream descends from a seeded
            ``SeedSequence``; ``spawn`` is the only fan-out
REP005      row determinism: no wall-clock, unsorted filesystem
            listings, or hash-order iteration feeding experiment rows
REP006      backend purity: kernels reach numpy/scipy/numba/cupy
            only through the ``repro.backend`` protocol
REP007      campaign purity: cell digests derive only from the
            deterministic spec record
REP008      determinism taint: no clock/identity/set-order value
            flows — across modules — into rows, digests, manifests
            or cache keys
REP009      seed provenance: no cross-module seed arithmetic feeding
            an RNG on a run path; ``SeedSequence.spawn`` only
REP010      resource lifecycle: shared-memory acquire/release pairing
            holds on exception paths; no pre-fork thread primitives
REP011      facade contract: public ``repro.api``/``repro.campaign``
            signatures fully annotated; ``GRID_AXES`` in sync with
            ``ExperimentSpec``
==========  =========================================================

REP001–REP007 are pure functions of one file; REP008–REP011 run on
the whole-project IR built by :mod:`repro.lint.project` and flow
values through :mod:`repro.lint.dataflow` (incrementally cached with
``--cache-dir``; SARIF output with ``--format sarif``).

Suppress a false positive inline, justification mandatory::

    x = 1e-300  # reprolint: disable=REP001 -- underflow guard, not a tolerance

Run as ``python -m repro.lint [paths...]`` or ``repro lint``.
"""

from __future__ import annotations

from repro.lint.cli import main, report_as_json
from repro.lint.framework import (
    FileContext,
    LintReport,
    Rule,
    Violation,
    lint_file,
    run_paths,
)
from repro.lint.rules import RULE_CLASSES, default_rules

__all__ = [
    "FileContext",
    "LintReport",
    "Rule",
    "RULE_CLASSES",
    "Violation",
    "default_rules",
    "lint_file",
    "main",
    "report_as_json",
    "run_paths",
]
