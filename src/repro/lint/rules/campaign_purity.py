"""REP007 — campaign purity.

A campaign cell's digest is its identity: it is the unit of resume
(completed digests are skipped), of coalescing (equal digests run
once) and of the cross-``jobs`` byte-identity contract on the results
store.  That only works if the digest preimage is a pure function of
the cell's deterministic spec record — the same fields the run
manifest's ``deterministic_view`` carries — and of nothing else.  One
``os.getpid()`` or ``datetime.now()`` in the preimage and every
re-run recomputes the whole grid while reporting "0 skipped" bugs
that no unit test on a single machine can catch.

Mechanical checks for files under ``campaign/`` (mirroring REP003's
key-purity checks for ``perf/``):

* **machine/process identity anywhere** — ``os.getpid``/``getppid``/
  ``uname``, ``socket.gethostname``/``getfqdn``, ``platform.node``/
  ``uname``, ``uuid.uuid1``/``uuid4``, ``getpass.getuser`` and any
  ``secrets.*`` call: worker ids, hostnames and random tokens must
  never exist in campaign code where they could leak into a record
  (wall-clock is already policed repo-wide by REP005);
* **printed bytes in digest builders** — ``repr(...).encode()`` and
  f-strings inside functions with ``digest`` in their name: digests
  hash canonical JSON of explicit fields, never interpolated reprs
  (error messages under ``raise`` are exempt).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import (
    FileContext,
    Rule,
    Violation,
    iter_function_defs,
)

__all__ = ["CampaignPurity"]

_IDENTITY_CALLS = {
    ("os", "getpid"), ("os", "getppid"), ("os", "uname"),
    ("socket", "gethostname"), ("socket", "getfqdn"),
    ("platform", "node"), ("platform", "uname"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
    ("getpass", "getuser"),
}


def _dotted(node: ast.AST) -> tuple[str, str] | None:
    """``(base, attr)`` for simple ``base.attr`` / ``a.base.attr``."""
    if not isinstance(node, ast.Attribute):
        return None
    value = node.value
    if isinstance(value, ast.Name):
        return value.id, node.attr
    if isinstance(value, ast.Attribute):
        return value.attr, node.attr
    return None


class CampaignPurity(Rule):
    rule_id = "REP007"
    summary = ("campaign cell digests must derive only from the "
               "deterministic spec record — no process, host or "
               "random identity")

    def applies(self, posix_path: str) -> bool:
        return ("/campaign/" in posix_path
                or posix_path.startswith("campaign/"))

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._identity_call(ctx, node)
        yield from self._digest_builders(ctx)

    def _identity_call(self, ctx: FileContext,
                       node: ast.Call) -> Iterator[Violation]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        base, attr = dotted
        if dotted in _IDENTITY_CALLS:
            yield ctx.violation(
                node, self.rule_id,
                f"{base}.{attr}() is machine/process identity; campaign "
                f"records and digests must be a pure function of the "
                f"deterministic spec record — identical on every host "
                f"and worker")
        elif base == "secrets":
            yield ctx.violation(
                node, self.rule_id,
                f"secrets.{attr}() is nondeterministic by design; "
                f"campaign cells are keyed by content digest, never "
                f"by random token")

    def _digest_builders(self, ctx: FileContext) -> Iterator[Violation]:
        for func in iter_function_defs(ctx.tree):
            if "digest" not in func.name.lower():
                continue
            for node in ast.walk(func):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr == "encode" and \
                        isinstance(node.func.value, ast.Call) and \
                        isinstance(node.func.value.func, ast.Name) and \
                        node.func.value.func.id == "repr":
                    yield ctx.violation(
                        node, self.rule_id,
                        f"repr().encode() inside digest builder "
                        f"{func.name}(); digests hash canonical JSON "
                        f"of explicit fields, not printed forms")
                elif isinstance(node, ast.JoinedStr) and any(
                        isinstance(part, ast.FormattedValue)
                        for part in node.values):
                    if self._under_raise(ctx, node):
                        continue  # error message, not digest material
                    yield ctx.violation(
                        node, self.rule_id,
                        f"f-string inside digest builder {func.name}(); "
                        f"interpolation prints values — build the "
                        f"preimage as an explicit mapping and hash its "
                        f"canonical JSON")

    @staticmethod
    def _under_raise(ctx: FileContext, node: ast.AST) -> bool:
        for _ in range(4):
            parent = ctx.parent(node)
            if parent is None:
                return False
            if isinstance(parent, ast.Raise):
                return True
            node = parent
        return False
