"""REP010 — shared-resource lifecycle across the process tree.

POSIX shared memory is the one resource in this repo the operating
system will not clean up for us: a ``SharedMemory`` segment created
with ``create=True`` and never ``unlink()``-ed outlives the process
in ``/dev/shm``, and the exception path is where that happens — an
allocation succeeds, a later call raises, and the handle leaks with
no test noticing.  This rule tracks every acquisition of a watched
resource and demands one of:

* acquisition inside a ``with`` block;
* cleanup (``close``/``unlink``/``shutdown``/``terminate``/
  ``release``/``join``) reachable on the exception path — i.e. in a
  ``finally`` or ``except`` body;
* no risky call between acquisition and the point the resource
  escapes (returned to the caller, who then owns the lifecycle).

The watched set starts at ``shared_memory.SharedMemory(create=True)``
and grows by a fixpoint over *factories*: any function that acquires
a watched resource and lets it escape through its return value
(directly or wrapped in a constructor call, the
``SharedStore.create`` pattern) becomes watched itself, so
``self._store = SharedStore.create(lock)`` two modules away is held
to the same standard as the raw ``SharedMemory`` call.  Attaching by
name (no ``create=True``) is exempt — the creator owns the segment.

A second check guards the warm pool's fork boundary: threads and
thread locks created on a pre-fork path (any function reachable from
the parent-side methods of a ``*.pool`` module) are flagged, because
a lock held by another thread at ``fork()`` time deadlocks the
child.  Only ``multiprocessing`` primitives from the pool's own
context are fork-safe there.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.dataflow import _iter_calls, call_graph, reachable
from repro.lint.framework import ProjectRule, Violation
from repro.lint.project import (ExprIR, FunctionInfo, ModuleSummary,
                                Project, ResourceEvent)

__all__ = ["ResourceLifecycleRule"]

#: Base constructors: acquiring one of these with ``create=True``
#: allocates a kernel object that must be explicitly released.
_BASE_CREATORS = frozenset({
    "multiprocessing.shared_memory.SharedMemory",
})

_THREAD_CREATORS = frozenset({
    "threading.Thread", "threading.Timer",
    "threading.Lock", "threading.RLock",
    "threading.Condition", "threading.Event",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "threading.Barrier",
})

_MAX_FACTORY_ROUNDS = 10


def _all_names(expr: ExprIR) -> set[str]:
    """Every variable name in the expression, call args included."""
    names = set(expr.names)
    for call in expr.calls:
        for arg in call.args:
            names.update(_all_names(arg))
        for _, value in call.keywords:
            names.update(_all_names(value))
        if call.recv is not None:
            names.update(_all_names(call.recv))
        if call.ref is not None:
            names.add(call.ref.split(".", 1)[0])
    return names


def _escaping_vars(info: FunctionInfo) -> set[str]:
    """Variables that reach a return value, one wrapper hop deep.

    Covers both ``return shm`` and the classmethod-factory idiom
    ``store = cls(shm, lock); return store``.
    """
    assigned_from: dict[str, set[str]] = {}
    returned: set[str] = set()
    for kind, targets, expr in info.ops:
        if kind == "assign" and len(targets) == 1:
            assigned_from.setdefault(targets[0], set()).update(
                _all_names(expr))
        elif kind == "return":
            returned.update(_all_names(expr))
    escaping = set(returned)
    for target in returned:
        escaping.update(assigned_from.get(target, ()))
    return escaping


class ResourceLifecycleRule(ProjectRule):
    """Shared-resource acquire/release pairing (REP010)."""

    rule_id = "REP010"
    summary = "shared-memory resource can leak on an exception path " \
              "or is never released; or thread primitive created " \
              "pre-fork"

    def check_project(self, project: Project) -> Iterable[Violation]:
        watched = self._watched_factories(project)
        for summary, info in project.iter_functions():
            for event in info.resources:
                if not self._is_watched(project, summary, info, event,
                                        watched):
                    continue
                violation = self._verdict(summary, event)
                if violation is not None:
                    yield violation
        yield from self._prefork_threads(project)

    # -- factory fixpoint ----------------------------------------------
    def _acquires(self, project: Project, summary: ModuleSummary,
                  info: FunctionInfo, ref: str | None, create: bool,
                  watched: set[str]) -> bool:
        qualified = project.resolve_ref(summary, info, ref)
        if qualified is None:
            return False
        if qualified in _BASE_CREATORS:
            return create
        return qualified in watched

    def _is_watched(self, project: Project, summary: ModuleSummary,
                    info: FunctionInfo, event: ResourceEvent,
                    watched: set[str]) -> bool:
        return self._acquires(project, summary, info, event.ref,
                              event.create_kw, watched)

    def _watched_factories(self, project: Project) -> set[str]:
        """Functions whose return value carries a watched resource."""
        watched: set[str] = set()
        for _ in range(_MAX_FACTORY_ROUNDS):
            changed = False
            for summary, info in project.iter_functions():
                qualified = f"{summary.name}.{info.qualname}"
                if qualified in watched:
                    continue
                if self._returns_resource(project, summary, info,
                                          watched):
                    watched.add(qualified)
                    changed = True
            if not changed:
                break
        return watched

    def _returns_resource(self, project: Project,
                          summary: ModuleSummary, info: FunctionInfo,
                          watched: set[str]) -> bool:
        for ref, create in info.return_call_refs:
            if self._acquires(project, summary, info, ref, create,
                              watched):
                return True
        escaping: set[str] | None = None
        for event in info.resources:
            if not self._acquires(project, summary, info, event.ref,
                                  event.create_kw, watched):
                continue
            if escaping is None:
                escaping = _escaping_vars(info)
            if event.var in escaping:
                return True
        return False

    # -- per-acquisition verdict ---------------------------------------
    def _verdict(self, summary: ModuleSummary,
                 event: ResourceEvent) -> Violation | None:
        if event.in_with or event.cleanup_protected:
            return None
        if event.risky_after:
            return Violation(
                path=summary.path, line=event.line, col=event.col,
                rule=self.rule_id,
                message=(f"shared resource `{event.var}` can leak: "
                         f"calls after this acquisition may raise "
                         f"before cleanup runs; release it in a "
                         f"try/finally or except block (or use "
                         f"`with`)"))
        if not event.cleanup_any and not event.returned:
            return Violation(
                path=summary.path, line=event.line, col=event.col,
                rule=self.rule_id,
                message=(f"shared resource `{event.var}` is never "
                         f"released: no close()/unlink() on any "
                         f"path and it does not escape this "
                         f"function"))
        return None

    # -- pre-fork thread primitives ------------------------------------
    def _prefork_threads(self, project: Project,
                         ) -> Iterable[Violation]:
        roots = []
        for name in sorted(project.modules):
            if not (name.endswith(".pool") or name == "pool"):
                continue
            summary = project.modules[name]
            for qual in sorted(summary.functions):
                # Worker entry points run post-fork in the child;
                # everything else in a pool module is parent-side.
                leaf = qual.rsplit(".", 1)[-1]
                if leaf.startswith("_worker"):
                    continue
                roots.append((name, qual))
        if not roots:
            return
        graph = call_graph(project)
        prefork = reachable(graph, roots)
        emitted: set[tuple[str, int, int]] = set()
        for summary, info in project.iter_functions():
            if (summary.name, info.qualname) not in prefork:
                continue
            for _, _, expr in info.ops:
                for call in _iter_calls(expr):
                    qualified = project.resolve_ref(summary, info,
                                                    call.ref)
                    if qualified not in _THREAD_CREATORS:
                        continue
                    key = (summary.path, call.line, call.col)
                    if key in emitted:
                        continue
                    emitted.add(key)
                    yield Violation(
                        path=summary.path, line=call.line,
                        col=call.col, rule=self.rule_id,
                        message=(f"{qualified} created on a "
                                 f"pre-fork warm-pool path; a lock "
                                 f"held at fork() deadlocks the "
                                 f"child — use the pool context's "
                                 f"multiprocessing primitives"))
