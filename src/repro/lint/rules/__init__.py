"""Rule registry for reprolint.

``default_rules()`` returns one fresh instance of every REP rule in
id order.  New rules register here; ids are never reused.
"""

from __future__ import annotations

from repro.lint.framework import Rule
from repro.lint.rules.backend_purity import BackendPurity
from repro.lint.rules.cache_purity import CachePurity
from repro.lint.rules.campaign_purity import CampaignPurity
from repro.lint.rules.determinism import RowDeterminism
from repro.lint.rules.determinism_taint import DeterminismTaintRule
from repro.lint.rules.facade_contract import FacadeContractRule
from repro.lint.rules.lifecycle import ResourceLifecycleRule
from repro.lint.rules.obliviousness import ObliviousnessContract
from repro.lint.rules.seed_provenance import SeedProvenanceRule
from repro.lint.rules.seeding import SeedingDiscipline
from repro.lint.rules.tolerance import ToleranceDiscipline

__all__ = ["default_rules", "RULE_CLASSES"]

RULE_CLASSES: tuple[type[Rule], ...] = (
    ToleranceDiscipline,
    ObliviousnessContract,
    CachePurity,
    SeedingDiscipline,
    RowDeterminism,
    BackendPurity,
    CampaignPurity,
    DeterminismTaintRule,
    SeedProvenanceRule,
    ResourceLifecycleRule,
    FacadeContractRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    return [cls() for cls in RULE_CLASSES]
