"""REP006 — array-backend purity.

The swarm-scale kernels are retargetable because every protocol
operation (``einsum``, ``lexsort``/``argsort``, the Kabsch SVD,
nearest-neighbour queries) flows through
:func:`repro.backend.get_backend`; a single runtime switch then moves
all of them to Numba or CuPy at once, and the ``backend.*`` metrics
stay an honest account of where the work ran.  A direct NumPy/SciPy
call inside a ported kernel silently pins that kernel to the host
CPU — the benchmark still passes, the backend switch just stops
meaning anything — and a direct ``numba``/``cupy`` import outside
``src/repro/backend/`` bypasses the capability probing and graceful
fallback that keep the tree importable on machines without the
optional accelerators.

Two checks:

* **optional-accelerator imports** — ``import numba`` / ``import
  cupy`` (and ``from numba import ...``) anywhere outside
  ``src/repro/backend/``;
* **protocol ops in ported kernels** — inside the ported kernel
  modules (symmetry detection, orbit decomposition, the batched Look
  phase, ψ_PF matching), calls to ``np.einsum`` / ``np.lexsort`` /
  ``np.argsort`` / ``np.linalg.svd``, any ``cKDTree`` / ``KDTree`` /
  ``cdist`` construction, and ``scipy.spatial`` imports.  Other
  ``np.*`` calls (norms, stacking, boolean masks) are fine — only the
  operations the protocol abstracts must go through it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import FileContext, Rule, Violation

__all__ = ["BackendPurity"]

#: Files allowed to touch numba/cupy and the raw protocol ops.
_BACKEND_DIR = "repro/backend/"

#: The ported kernel modules (path suffixes).
_KERNEL_SUFFIXES = (
    "repro/groups/detection.py",
    "repro/groups/axes.py",
    "repro/core/decomposition.py",
    "repro/core/local_views.py",
    "repro/robots/scheduler.py",
    "repro/robots/algorithms/matching.py",
)

#: Optional accelerator packages gated behind the backend registry.
_ACCELERATORS = ("numba", "cupy")

#: ``np.<attr>`` calls the protocol abstracts.
_NP_PROTOCOL_OPS = ("einsum", "lexsort", "argsort")

#: Spatial-index constructors the protocol abstracts.
_SPATIAL_NAMES = ("cKDTree", "KDTree", "cdist")


def _is_np(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id in ("np", "numpy")


def _root_module(name: str) -> str:
    return name.split(".", 1)[0]


class BackendPurity(Rule):
    rule_id = "REP006"
    summary = ("kernels reach numpy/scipy/numba/cupy only through "
               "the repro.backend protocol")

    def applies(self, posix_path: str) -> bool:
        return _BACKEND_DIR not in posix_path

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        in_kernel = ctx.posix_path.endswith(_KERNEL_SUFFIXES)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = _root_module(alias.name)
                    if root in _ACCELERATORS:
                        yield ctx.violation(
                            node, self.rule_id,
                            f"direct 'import {alias.name}' outside "
                            f"src/repro/backend/ bypasses capability "
                            f"probing; select the accelerator through "
                            f"repro.backend.get_backend()")
                    elif in_kernel and root == "scipy":
                        yield ctx.violation(
                            node, self.rule_id,
                            f"'import {alias.name}' in a ported kernel "
                            f"module; use the backend's neighbor_index/"
                            f"pairwise_distances instead")
                continue
            if isinstance(node, ast.ImportFrom):
                root = _root_module(node.module or "")
                if root in _ACCELERATORS:
                    yield ctx.violation(
                        node, self.rule_id,
                        f"direct 'from {node.module} import ...' outside "
                        f"src/repro/backend/ bypasses capability "
                        f"probing; select the accelerator through "
                        f"repro.backend.get_backend()")
                elif in_kernel and root == "scipy":
                    yield ctx.violation(
                        node, self.rule_id,
                        f"'from {node.module} import ...' in a ported "
                        f"kernel module; use the backend's "
                        f"neighbor_index/pairwise_distances instead")
                continue
            if not in_kernel or not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                # np.einsum / np.lexsort / np.argsort
                if _is_np(func.value) and func.attr in _NP_PROTOCOL_OPS:
                    yield ctx.violation(
                        node, self.rule_id,
                        f"np.{func.attr}() in a ported kernel module; "
                        f"call get_backend().{func.attr}() so the op "
                        f"retargets with the backend switch")
                    continue
                # np.linalg.svd
                if (func.attr == "svd"
                        and isinstance(func.value, ast.Attribute)
                        and func.value.attr == "linalg"
                        and _is_np(func.value.value)):
                    yield ctx.violation(
                        node, self.rule_id,
                        "np.linalg.svd() in a ported kernel module; "
                        "call get_backend().kabsch() (or move the "
                        "decomposition behind the protocol)")
                    continue
            name = func.attr if isinstance(func, ast.Attribute) else \
                func.id if isinstance(func, ast.Name) else None
            if name in _SPATIAL_NAMES:
                yield ctx.violation(
                    node, self.rule_id,
                    f"{name}() in a ported kernel module; use "
                    f"get_backend().neighbor_index() / "
                    f"pairwise_distances() instead")
