"""REP011 — façade typing and campaign axis drift.

Two contracts that only a project-wide view can check:

**Public signatures on the façade are fully annotated.**  The repo's
mypy gate runs strict on a growing allow-list; this rule is the
linter-side mirror that does not need mypy installed: every public
function or method (name not starting with ``_``) in
:mod:`repro.api` or under ``repro.campaign`` must annotate every
parameter and its return type.  ``*args``/``**kwargs`` count;
``self``/``cls`` and ``__init__``'s return do not.  Unannotated
façade signatures are how untyped values leak into the typed core.

**``GRID_AXES`` stays in sync with ``ExperimentSpec``.**  The
campaign grid expands each axis by setting the same-named field on
:class:`repro.api.ExperimentSpec` — an axis with no matching field
would silently expand into cells whose setting is dropped on the
floor.  The tuple lives in ``repro.campaign.spec`` and the dataclass
in ``repro.api``, so a single-file pass cannot see the drift.  The
rule resolves the ``ExperimentSpec`` import in any module defining a
``GRID_AXES`` constant and requires every axis name to be a declared
field of that class.

**``SPEC_WIRE_FIELDS`` stays in sync with both.**  The query server's
wire protocol pins which spec fields a run query can carry
(``repro.serve.protocol``).  Two drifts are possible and both are
silent at runtime: a wire field with no matching ``ExperimentSpec``
field would crash (or worse, be dropped) at decode, and a
``GRID_AXES`` axis missing from the wire tuple means the service
cannot express a campaign cell.  The rule requires every wire field
to be a spec field and every grid axis to be a wire field.

**Record classes have no plain fields.**  The query/spec records are
frozen dataclasses; a *plain* (unannotated) class-body assignment on
one is silently not a dataclass field — it never reaches ``asdict``,
the wire, or a digest.  On facade modules, any public class that has
annotated fields must not also carry public plain assignments.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.framework import ProjectRule, Violation
from repro.lint.project import ModuleSummary, Project

__all__ = ["FacadeContractRule"]

#: Modules whose public signatures must be fully annotated.
_TYPED_FACADES = ("repro.api", "repro.campaign", "repro.serve")

_AXIS_CONSTANT = "GRID_AXES"
_WIRE_CONSTANT = "SPEC_WIRE_FIELDS"
_SPEC_CLASS = "ExperimentSpec"


def _in_facade(name: str) -> bool:
    return any(name == facade or name.startswith(facade + ".")
               for facade in _TYPED_FACADES)


class FacadeContractRule(ProjectRule):
    """Façade annotations + grid-axis drift (REP011)."""

    rule_id = "REP011"
    summary = "public facade signature unannotated, or campaign/" \
              "serve wire constants out of sync with ExperimentSpec"

    def check_project(self, project: Project) -> Iterable[Violation]:
        for name in sorted(project.modules):
            summary = project.modules[name]
            if _in_facade(name):
                yield from self._check_annotations(summary)
                yield from self._check_plain_fields(summary)
            if _AXIS_CONSTANT in summary.constants:
                yield from self._check_axes(project, summary)
            if _WIRE_CONSTANT in summary.constants:
                yield from self._check_wire_fields(project, summary)

    def _check_annotations(self, summary: ModuleSummary,
                           ) -> Iterable[Violation]:
        for qual in sorted(summary.functions):
            info = summary.functions[qual]
            if not info.is_public or qual == "<module>":
                continue
            # Methods of private classes are not facade surface.
            if info.cls is not None and info.cls.startswith("_"):
                continue
            # Only top-level functions and direct methods are facade
            # surface; nested functions are implementation detail.
            direct = (qual == info.name or
                      (info.cls is not None and
                       qual == f"{info.cls}.{info.name}"))
            if not direct:
                continue
            for missing in info.missing_annotations:
                what = ("return type" if missing == "return"
                        else f"parameter `{missing}`")
                yield Violation(
                    path=summary.path, line=info.line, col=info.col,
                    rule=self.rule_id,
                    message=(f"public facade signature "
                             f"`{qual}` leaves {what} "
                             f"unannotated"))

    def _check_plain_fields(self, summary: ModuleSummary,
                            ) -> Iterable[Violation]:
        for cls_name in sorted(summary.class_plain_fields):
            if cls_name.startswith("_"):
                continue
            if not summary.class_fields.get(cls_name):
                continue  # not record-shaped; plain attrs are fine
            for fname, line in summary.class_plain_fields[cls_name]:
                if fname.startswith("_"):
                    continue
                yield Violation(
                    path=summary.path, line=line, col=0,
                    rule=self.rule_id,
                    message=(f"record class `{cls_name}` assigns "
                             f"`{fname}` without a type annotation; "
                             f"a plain assignment is not a dataclass "
                             f"field and silently drops off the "
                             f"record"))

    def _spec_fields(self, project: Project, summary: ModuleSummary,
                     ) -> "tuple[str, tuple[str, ...] | None]":
        """Resolve the imported ``ExperimentSpec``'s declared fields."""
        target = summary.imports.get(_SPEC_CLASS)
        if target is None:
            return "", None
        module_name, _, class_name = target.rpartition(".")
        spec_module = project.modules.get(module_name)
        if spec_module is None:
            return target, None
        return target, spec_module.class_fields.get(class_name)

    def _check_wire_fields(self, project: Project,
                           summary: ModuleSummary,
                           ) -> Iterable[Violation]:
        wire = summary.constants[_WIRE_CONSTANT]
        if not isinstance(wire, (tuple, list)):
            return
        line = summary.constant_lines.get(_WIRE_CONSTANT, 0)
        target, fields = self._spec_fields(project, summary)
        if fields is not None:
            for fname in wire:
                if not isinstance(fname, str) or fname in fields:
                    continue
                yield Violation(
                    path=summary.path, line=line, col=0,
                    rule=self.rule_id,
                    message=(f"{_WIRE_CONSTANT} field `{fname}` has "
                             f"no matching field on {target}; the "
                             f"wire would carry a setting the spec "
                             f"cannot hold"))
        # Every campaign axis must be expressible on the wire, or the
        # service cannot serve what the campaign can run.
        wire_names = {fname for fname in wire if isinstance(fname, str)}
        for other_name in sorted(project.modules):
            other = project.modules[other_name]
            axes = other.constants.get(_AXIS_CONSTANT)
            if not isinstance(axes, (tuple, list)):
                continue
            for axis in axes:
                if not isinstance(axis, str) or axis in wire_names:
                    continue
                yield Violation(
                    path=summary.path, line=line, col=0,
                    rule=self.rule_id,
                    message=(f"{_AXIS_CONSTANT} axis `{axis}` "
                             f"(defined in {other_name}) is missing "
                             f"from {_WIRE_CONSTANT}; the query "
                             f"server cannot express that campaign "
                             f"axis"))

    def _check_axes(self, project: Project, summary: ModuleSummary,
                    ) -> Iterable[Violation]:
        axes = summary.constants[_AXIS_CONSTANT]
        if not isinstance(axes, (tuple, list)):
            return
        target = summary.imports.get(_SPEC_CLASS)
        if target is None:
            return
        module_name, _, class_name = target.rpartition(".")
        spec_module = project.modules.get(module_name)
        if spec_module is None:
            return
        fields = spec_module.class_fields.get(class_name)
        if fields is None:
            return
        line = summary.constant_lines.get(_AXIS_CONSTANT, 0)
        for axis in axes:
            if not isinstance(axis, str) or axis in fields:
                continue
            yield Violation(
                path=summary.path, line=line, col=0,
                rule=self.rule_id,
                message=(f"{_AXIS_CONSTANT} axis `{axis}` has no "
                         f"matching field on "
                         f"{module_name}.{class_name}; the grid "
                         f"would expand a setting that is silently "
                         f"dropped"))
