"""REP011 — façade typing and campaign axis drift.

Two contracts that only a project-wide view can check:

**Public signatures on the façade are fully annotated.**  The repo's
mypy gate runs strict on a growing allow-list; this rule is the
linter-side mirror that does not need mypy installed: every public
function or method (name not starting with ``_``) in
:mod:`repro.api` or under ``repro.campaign`` must annotate every
parameter and its return type.  ``*args``/``**kwargs`` count;
``self``/``cls`` and ``__init__``'s return do not.  Unannotated
façade signatures are how untyped values leak into the typed core.

**``GRID_AXES`` stays in sync with ``ExperimentSpec``.**  The
campaign grid expands each axis by setting the same-named field on
:class:`repro.api.ExperimentSpec` — an axis with no matching field
would silently expand into cells whose setting is dropped on the
floor.  The tuple lives in ``repro.campaign.spec`` and the dataclass
in ``repro.api``, so a single-file pass cannot see the drift.  The
rule resolves the ``ExperimentSpec`` import in any module defining a
``GRID_AXES`` constant and requires every axis name to be a declared
field of that class.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.framework import ProjectRule, Violation
from repro.lint.project import ModuleSummary, Project

__all__ = ["FacadeContractRule"]

#: Modules whose public signatures must be fully annotated.
_TYPED_FACADES = ("repro.api", "repro.campaign")

_AXIS_CONSTANT = "GRID_AXES"
_SPEC_CLASS = "ExperimentSpec"


def _in_facade(name: str) -> bool:
    return any(name == facade or name.startswith(facade + ".")
               for facade in _TYPED_FACADES)


class FacadeContractRule(ProjectRule):
    """Façade annotations + grid-axis drift (REP011)."""

    rule_id = "REP011"
    summary = "public facade signature unannotated, or campaign " \
              "GRID_AXES out of sync with ExperimentSpec"

    def check_project(self, project: Project) -> Iterable[Violation]:
        for name in sorted(project.modules):
            summary = project.modules[name]
            if _in_facade(name):
                yield from self._check_annotations(summary)
            if _AXIS_CONSTANT in summary.constants:
                yield from self._check_axes(project, summary)

    def _check_annotations(self, summary: ModuleSummary,
                           ) -> Iterable[Violation]:
        for qual in sorted(summary.functions):
            info = summary.functions[qual]
            if not info.is_public or qual == "<module>":
                continue
            # Methods of private classes are not facade surface.
            if info.cls is not None and info.cls.startswith("_"):
                continue
            # Only top-level functions and direct methods are facade
            # surface; nested functions are implementation detail.
            direct = (qual == info.name or
                      (info.cls is not None and
                       qual == f"{info.cls}.{info.name}"))
            if not direct:
                continue
            for missing in info.missing_annotations:
                what = ("return type" if missing == "return"
                        else f"parameter `{missing}`")
                yield Violation(
                    path=summary.path, line=info.line, col=info.col,
                    rule=self.rule_id,
                    message=(f"public facade signature "
                             f"`{qual}` leaves {what} "
                             f"unannotated"))

    def _check_axes(self, project: Project, summary: ModuleSummary,
                    ) -> Iterable[Violation]:
        axes = summary.constants[_AXIS_CONSTANT]
        if not isinstance(axes, (tuple, list)):
            return
        target = summary.imports.get(_SPEC_CLASS)
        if target is None:
            return
        module_name, _, class_name = target.rpartition(".")
        spec_module = project.modules.get(module_name)
        if spec_module is None:
            return
        fields = spec_module.class_fields.get(class_name)
        if fields is None:
            return
        line = summary.constant_lines.get(_AXIS_CONSTANT, 0)
        for axis in axes:
            if not isinstance(axis, str) or axis in fields:
                continue
            yield Violation(
                path=summary.path, line=line, col=0,
                rule=self.rule_id,
                message=(f"{_AXIS_CONSTANT} axis `{axis}` has no "
                         f"matching field on "
                         f"{module_name}.{class_name}; the grid "
                         f"would expand a setting that is silently "
                         f"dropped"))
