"""REP001 — tolerance discipline.

The paper's constructions live in exact real arithmetic; the
reproduction compares float64 quantities, and every such comparison
must go through the audited slacks of
:mod:`repro.geometry.tolerance` (``Tolerance`` methods, ``DEFAULT_TOL``
and the named degeneracy floors).  A raw ``1e-6``-style literal at a
call site is an unreviewed claim about accumulated rounding error —
exactly the kind of constant that silently drifts out of sync with
the real error budget when kernels are vectorized or reordered.

Two checks:

* **raw tolerance literals** — numeric literals with
  ``1e-100 <= |x| <= 1e-4`` anywhere outside
  ``geometry/tolerance.py``.  Values below ``1e-100`` are underflow
  guards for denominators (e.g. ``max(scale, 1e-300)``), not
  tolerances, and are exempt.
* **float equality** — ``==`` / ``!=`` against a float literal;
  use ``Tolerance.close`` / ``isclose`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import FileContext, Rule, Violation

__all__ = ["ToleranceDiscipline"]

#: Literals with magnitude at or below this are tolerance-shaped.
LITERAL_CEILING = 1e-4  # reprolint: disable=REP001 -- the rule's own definitional threshold
#: ... and magnitudes below this are underflow guards, not slacks.
LITERAL_FLOOR = 1e-100  # reprolint: disable=REP001 -- the rule's own definitional threshold

_EXEMPT_SUFFIX = "geometry/tolerance.py"


class ToleranceDiscipline(Rule):
    rule_id = "REP001"
    summary = ("float comparisons must use repro.geometry.tolerance "
               "slacks, not raw literals")

    def applies(self, posix_path: str) -> bool:
        return not posix_path.endswith(_EXEMPT_SUFFIX)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant):
                value = node.value
                if isinstance(value, bool) or \
                        not isinstance(value, (int, float)):
                    continue
                magnitude = abs(float(value))
                if LITERAL_FLOOR <= magnitude <= LITERAL_CEILING:
                    yield ctx.violation(
                        node, self.rule_id,
                        f"raw tolerance literal {value!r}; derive the "
                        f"slack from repro.geometry.tolerance "
                        f"(Tolerance methods or a named floor)")
            elif isinstance(node, ast.Compare):
                yield from self._check_equality(ctx, node)

    def _check_equality(self, ctx: FileContext,
                        node: ast.Compare) -> Iterator[Violation]:
        operands = [node.left, *node.comparators]
        for op, right in zip(node.ops, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left = operands[operands.index(right) - 1]
            for side in (left, right):
                if isinstance(side, ast.Constant) and \
                        isinstance(side.value, float):
                    yield ctx.violation(
                        node, self.rule_id,
                        f"float equality against {side.value!r}; use "
                        f"Tolerance.close/isclose (exact float == is "
                        f"representation-dependent)")
                    break
