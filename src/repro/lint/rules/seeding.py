"""REP004 — seeding discipline.

Every random stream in the reproduction must descend from one
``np.random.SeedSequence`` root so that (a) a run is a pure function
of its seed and (b) parallel trials are statistically independent.
Two historical failure modes motivated the rule:

* the legacy module-level RNG (``np.random.rand`` & co.) is hidden
  process-global state — results then depend on call order across the
  whole program, which the ``--jobs`` fan-out scrambles;
* arithmetic fan-out (``default_rng(seed + t)``) collides: adjacent
  experiment seeds share streams (trial ``t`` of seed ``s`` equals
  trial ``t-1`` of seed ``s+1``).  ``SeedSequence.spawn`` (wrapped by
  :func:`repro.perf.spawn_seeds`) is the only sanctioned fan-out.

Flagged everywhere under ``src/`` and ``benchmarks/``:

* calls to the legacy ``np.random.*`` / stdlib ``random.*`` stateful
  API;
* ``default_rng()`` with no argument (OS-entropy seeding — the run is
  then not reproducible);
* arithmetic inside the ``default_rng``/``SeedSequence`` argument
  (``seed + t``-style fan-out).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import FileContext, Rule, Violation

__all__ = ["SeedingDiscipline"]

_NUMPY_LEGACY = {
    "seed", "rand", "randn", "random", "randint", "random_integers",
    "random_sample", "ranf", "sample", "choice", "shuffle",
    "permutation", "normal", "uniform", "standard_normal", "binomial",
    "poisson", "exponential", "RandomState", "get_state", "set_state",
}
_STDLIB_RANDOM = {
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "normalvariate",
    "getrandbits",
}


def _is_np_random(node: ast.AST) -> bool:
    """True for the expression ``np.random`` / ``numpy.random``."""
    return (isinstance(node, ast.Attribute) and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy"))


def _contains_arithmetic(node: ast.AST) -> bool:
    return any(isinstance(child, ast.BinOp)
               for child in ast.walk(node))


class SeedingDiscipline(Rule):
    rule_id = "REP004"
    summary = ("streams derive from seeded default_rng/SeedSequence; "
               "spawn() is the only fan-out")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if _is_np_random(func.value) and \
                        func.attr in _NUMPY_LEGACY:
                    yield ctx.violation(
                        node, self.rule_id,
                        f"np.random.{func.attr}() uses the hidden "
                        f"module-global RNG; results depend on global "
                        f"call order — use a seeded "
                        f"np.random.default_rng(...) generator")
                    continue
                if isinstance(func.value, ast.Name) and \
                        func.value.id == "random" and \
                        func.attr in _STDLIB_RANDOM:
                    yield ctx.violation(
                        node, self.rule_id,
                        f"random.{func.attr}() uses the stdlib "
                        f"module-global RNG; use a seeded "
                        f"np.random.default_rng(...) generator")
                    continue
            name = func.attr if isinstance(func, ast.Attribute) else \
                func.id if isinstance(func, ast.Name) else None
            if name not in ("default_rng", "SeedSequence"):
                continue
            if name == "default_rng" and not node.args and \
                    not node.keywords:
                yield ctx.violation(
                    node, self.rule_id,
                    "default_rng() without a seed draws OS entropy; "
                    "the run is then not a function of its seed")
                continue
            for arg in node.args:
                if _contains_arithmetic(arg):
                    yield ctx.violation(
                        node, self.rule_id,
                        f"arithmetic inside {name}(...) is "
                        f"collision-prone seed fan-out (seed+t of "
                        f"seed s aliases seed s+1); use "
                        f"SeedSequence.spawn / repro.perf.spawn_seeds")
                    break
