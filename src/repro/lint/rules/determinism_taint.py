"""REP008 — nondeterminism taint reaching reproducibility sinks.

REP005 flags a clock read *next to* a row append; it is blind the
moment the value crosses a function boundary.  REP008 closes that
hole with a whole-project taint pass: values produced by clock reads,
host/process identity calls, or set-iteration order are labelled at
the source and tracked through assignments, arithmetic, wrapper
calls, returns and call arguments until they either die (attribute
store, ``len``, ``sorted``) or arrive at one of the repo's
reproducibility sinks — experiment rows, ``cell_digest``, manifest
fields covered by ``deterministic_view``, or an L2/L3 cache key.  A
helper that returns ``monotonic()`` taints every caller; a callee
that forwards a parameter into ``exact_digest`` turns each tainted
call site into a finding *at that call site*.

Sources
    wall/monotonic clock reads (``time.*``, ``datetime.now``,
    ``repro.obs.clock.monotonic``); host/process identity
    (``os.getpid``, ``socket.gethostname``, ``uuid.uuid4``,
    ``os.urandom``); iteration order of a ``set`` (concrete the
    moment the set is iterated or fixed with ``list``/``tuple``).

Sinks
    ``cell_digest``/``digest_preimage``; ``build_manifest``'s
    deterministic keywords (``rows``/``spec``/``metrics``/
    ``seed_streams`` — ``phase_totals`` and ``artifacts`` are
    stripped by ``deterministic_view`` and stay exempt);
    ``rows_digest``; ``exact_digest``; the L3 disk-cache and shared
    L2-store key arguments; ``build_cell_record``.

``sorted(...)`` sanitizes order labels; storing into an attribute
kills taint (field-blind by design — see docs/STATIC_ANALYSIS.md).
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.dataflow import (Finding, SinkSpec, TaintAnalysis,
                                 TaintSpec)
from repro.lint.framework import ProjectRule, Violation
from repro.lint.project import Project

__all__ = ["DeterminismTaintRule"]

_CLOCK_SOURCES = (
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
    "repro.obs.clock.monotonic",
)
_IDENTITY_SOURCES = (
    "os.getpid", "os.getppid", "os.getcwd", "os.uname",
    "socket.gethostname", "platform.node", "platform.platform",
    "uuid.uuid1", "uuid.uuid4", "os.urandom",
)

#: Fully-qualified sink → which arguments must stay deterministic.
_SINKS = {
    "repro.campaign.spec.cell_digest": SinkSpec(
        name="cell_digest", all_args=True),
    "repro.campaign.spec.digest_preimage": SinkSpec(
        name="digest_preimage", all_args=True),
    "repro.obs.manifest.build_manifest": SinkSpec(
        name="build_manifest (deterministic fields)",
        keywords=frozenset({"rows", "spec", "metrics", "seed_streams"})),
    "repro.obs.manifest.rows_digest": SinkSpec(
        name="rows_digest", all_args=True),
    "repro.perf.stats.exact_digest": SinkSpec(
        name="exact_digest (L2 cache key)", all_args=True),
    "repro.perf.disk.disk_get": SinkSpec(
        name="disk_get (L3 cache key)", arg_indices=frozenset({0, 1})),
    "repro.perf.disk.disk_put": SinkSpec(
        name="disk_put (L3 cache key)", arg_indices=frozenset({0, 1})),
    "repro.perf.disk.disk_get_object": SinkSpec(
        name="disk_get_object (L3 cache key)",
        arg_indices=frozenset({0, 1})),
    "repro.perf.disk.disk_put_object": SinkSpec(
        name="disk_put_object (L3 cache key)",
        arg_indices=frozenset({0, 1})),
    "repro.perf.shared.shared_get_or_compute": SinkSpec(
        name="shared_get_or_compute (L2 cache key)",
        arg_indices=frozenset({0, 1})),
    "repro.campaign.store.build_cell_record": SinkSpec(
        name="build_cell_record", all_args=True),
}

_TRANSPARENT = frozenset({
    "str", "repr", "int", "float", "list", "tuple", "dict",
    "round", "abs", "min", "max", "sum", "format",
    "json.dumps", "copy.deepcopy",
})
_KILLERS = frozenset({"len", "bool", "isinstance", "type"})

_KIND_PHRASE = {
    "clock": "clock read",
    "identity": "host/process identity",
    "hashorder": "set iteration order",
}


def build_spec() -> TaintSpec:
    """The REP008 taint configuration (exposed for tests)."""
    sources = {name: ("clock", name) for name in _CLOCK_SOURCES}
    sources.update(
        {name: ("identity", name) for name in _IDENTITY_SOURCES})
    return TaintSpec(
        sources=sources,
        sinks=dict(_SINKS),
        sanitizers=frozenset({"sorted"}),
        transparent=_TRANSPARENT,
        killers=_KILLERS,
        set_labels=True,
        report_kinds=frozenset({"clock", "identity", "hashorder"}),
    )


def _message(finding: Finding) -> str:
    kind = finding.label[0]
    phrase = _KIND_PHRASE.get(kind, kind)
    origin = finding.label[1] if len(finding.label) > 1 else None
    if origin and origin not in ("set-iteration", "set-order"):
        phrase = f"{phrase} ({origin})"
    message = f"{phrase} flows into {finding.sink}"
    if finding.via is not None:
        message += f" via {finding.via}"
    return message + "; deterministic outputs must not depend on it"


class DeterminismTaintRule(ProjectRule):
    """Cross-module determinism taint (REP008)."""

    rule_id = "REP008"
    summary = "nondeterministic value (clock, host identity, set " \
              "order) flows into rows, digests, manifests, or cache " \
              "keys"

    def check_project(self, project: Project) -> Iterable[Violation]:
        findings = TaintAnalysis(project, build_spec()).run()
        seen: set[tuple[str, int, int, str, str]] = set()
        for finding in findings:
            key = (finding.path, finding.line, finding.col,
                   finding.sink, finding.label[0])
            if key in seen:
                continue
            seen.add(key)
            yield Violation(path=finding.path, line=finding.line,
                            col=finding.col, rule=self.rule_id,
                            message=_message(finding))
