"""REP005 — nondeterminism feeding experiment rows.

The FSYNC model is synchronous and deterministic, and the CI gate
diffs experiment rows byte-for-byte across worker counts and cache
states.  Any ambient nondeterminism — wall-clock reads, filesystem
enumeration order, hash-order iteration — that reaches a row breaks
that contract in ways a unit test cannot catch (it passes on every
machine it was written on).

Flagged everywhere under ``src/`` and ``benchmarks/``:

* **wall-clock reads** — ``time.time``/``time.time_ns``,
  ``datetime.datetime.now``/``utcnow``, ``datetime.date.today``;
* **monotonic-clock reads** — ``time.perf_counter``/``monotonic``
  (and the ``_ns`` variants) everywhere except the audited clock
  module :mod:`repro.obs.clock`: timing belongs to the observability
  layer (traces and manifests), and routing every read through the
  injectable clock keeps it out of rows *and* testable;
* **unsorted directory listings** — ``os.listdir``, ``os.scandir``,
  ``glob.glob``/``iglob`` and ``Path.iterdir``/``glob``/``rglob``
  calls not wrapped directly in ``sorted(...)``: the OS returns
  entries in on-disk order;
* **set iteration** — ``for x in {...}`` / ``for x in set(...)``:
  iteration order of a str-keyed set varies with ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import FileContext, Rule, Violation

__all__ = ["RowDeterminism"]

_CLOCK_CALLS = {
    ("time", "time"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"),
    ("date", "today"),
}
_MONOTONIC_CALLS = {
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
}
# The one module allowed to read the process clock: everything else
# must go through its injectable ``repro.obs.clock.monotonic()``.
_AUDITED_CLOCK_MODULES = ("repro/obs/clock.py",)
_LISTING_MODULE_CALLS = {
    ("os", "listdir"), ("os", "scandir"),
    ("glob", "glob"), ("glob", "iglob"),
}
_LISTING_METHODS = {"iterdir", "rglob"}


def _dotted(node: ast.AST) -> tuple[str, str] | None:
    """``(base, attr)`` for simple ``base.attr`` / ``a.base.attr``."""
    if not isinstance(node, ast.Attribute):
        return None
    value = node.value
    if isinstance(value, ast.Name):
        return value.id, node.attr
    if isinstance(value, ast.Attribute):
        return value.attr, node.attr
    return None


class RowDeterminism(Rule):
    rule_id = "REP005"
    summary = ("no wall-clock, unsorted listings, or hash-order "
               "iteration in code feeding experiment rows")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._call(ctx, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._set_iteration(ctx, node)

    def _call(self, ctx: FileContext,
              node: ast.Call) -> Iterator[Violation]:
        dotted = _dotted(node.func)
        if dotted in _CLOCK_CALLS:
            base, attr = dotted
            yield ctx.violation(
                node, self.rule_id,
                f"{base}.{attr}() reads the wall clock; rows must be "
                f"a pure function of (inputs, seed) — inject the "
                f"timestamp or stamp the artifact outside the row "
                f"pipeline")
            return
        if dotted in _MONOTONIC_CALLS and not any(
                ctx.posix_path.endswith(mod)
                for mod in _AUDITED_CLOCK_MODULES):
            base, attr = dotted
            yield ctx.violation(
                node, self.rule_id,
                f"{base}.{attr}() reads the process clock outside the "
                f"audited module (repro/obs/clock.py); call "
                f"repro.obs.clock.monotonic() so tests can inject a "
                f"fake clock and timing stays out of rows")
            return
        listing = None
        if dotted in _LISTING_MODULE_CALLS:
            listing = f"{dotted[0]}.{dotted[1]}()"
        elif isinstance(node.func, ast.Attribute) and \
                node.func.attr in _LISTING_METHODS:
            listing = f".{node.func.attr}()"
        elif isinstance(node.func, ast.Attribute) and \
                node.func.attr == "glob" and \
                not isinstance(node.func.value, ast.Name):
            listing = ".glob()"
        if listing is not None and not self._sorted_parent(ctx, node):
            yield ctx.violation(
                node, self.rule_id,
                f"{listing} enumerates the filesystem in on-disk "
                f"order; wrap it in sorted(...)")

    def _sorted_parent(self, ctx: FileContext, node: ast.Call) -> bool:
        parent = ctx.parent(node)
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "sorted")

    def _set_iteration(self, ctx: FileContext,
                       node: ast.For | ast.AsyncFor,
                       ) -> Iterator[Violation]:
        it = node.iter
        is_set = isinstance(it, (ast.Set, ast.SetComp)) or (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id in ("set", "frozenset"))
        if is_set:
            yield ctx.violation(
                it, self.rule_id,
                "iterating a set: order follows PYTHONHASHSEED for "
                "str/object elements; iterate sorted(...) or a "
                "deterministic sequence")
