"""REP009 — seed provenance across call boundaries.

The repo's reproducibility contract says every RNG consumed on a
run-experiment path derives from ``numpy.random.SeedSequence.spawn``:
spawned children are statistically independent and their derivation
is order-insensitive, while ad-hoc arithmetic (``seed * 1000 + i``)
silently correlates streams and couples results to loop order.  The
file-local REP004 catches ``default_rng(seed + i)`` written directly
at the call site; this rule catches the laundered version — a helper
in one module computing the arithmetic and a consumer in another
module feeding its return value to ``default_rng``.

The taint pass labels every binary-arithmetic expression over
variables; ``SeedSequence.spawn(...)`` results are relabelled clean
(that is the sanctioned derivation); a labelled value reaching
``numpy.random.default_rng``/``Generator``/``SeedSequence``'s seed
argument — in this function or any transitive callee — is a finding.
Direct single-expression arithmetic at the sink is left to REP004
(``skip_direct_binop``) so one mistake yields one finding.

Scope: modules transitively imported by :mod:`repro.api` or the
campaign pool/runner — the paths whose determinism the CI gate
actually diffs.  Code outside that closure (one-off analysis
scripts) may derive seeds however it likes.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.dataflow import (Finding, SinkSpec, TaintAnalysis,
                                 TaintSpec)
from repro.lint.framework import ProjectRule, Violation
from repro.lint.project import Project

__all__ = ["SeedProvenanceRule"]

#: Roots whose import closure bounds the rule (the gated run paths).
_SCOPE_ROOTS = ["repro.api", "repro.campaign.pool",
                "repro.campaign.runner"]

_RNG_SINKS = {
    "numpy.random.default_rng": SinkSpec(
        name="default_rng", arg_indices=frozenset({0}),
        keywords=frozenset({"seed"}), skip_direct_binop=True),
    "numpy.random.Generator": SinkSpec(
        name="Generator", arg_indices=frozenset({0}),
        skip_direct_binop=True),
    "numpy.random.SeedSequence": SinkSpec(
        name="SeedSequence", arg_indices=frozenset({0}),
        keywords=frozenset({"entropy"}), skip_direct_binop=True),
    "numpy.random.PCG64": SinkSpec(
        name="PCG64", arg_indices=frozenset({0}),
        skip_direct_binop=True),
}


def build_spec() -> TaintSpec:
    """The REP009 taint configuration (exposed for tests)."""
    return TaintSpec(
        sinks=dict(_RNG_SINKS),
        #: ``ss.spawn(n)`` is the sanctioned derivation — its result
        #: is clean no matter what fed the parent sequence.
        tail_sources={"spawn": ("spawned",)},
        transparent=frozenset({"int", "abs", "list", "tuple"}),
        killers=frozenset({"len"}),
        arithmetic_label=True,
        report_kinds=frozenset({"arith"}),
    )


def _message(finding: Finding) -> str:
    message = (f"seed derived by arithmetic reaches "
               f"{finding.sink}")
    if finding.via is not None:
        message += f" via {finding.via}"
    return (message + "; derive child seeds with "
            "SeedSequence.spawn() instead")


class SeedProvenanceRule(ProjectRule):
    """Cross-module seed provenance (REP009)."""

    rule_id = "REP009"
    summary = "RNG on a run path seeded by cross-module seed " \
              "arithmetic instead of SeedSequence.spawn"

    def check_project(self, project: Project) -> Iterable[Violation]:
        scope = project.import_closure(list(_SCOPE_ROOTS))
        scope_paths = {project.modules[name].path for name in scope}
        findings = TaintAnalysis(project, build_spec()).run()
        seen: set[tuple[str, int, int, str]] = set()
        for finding in findings:
            if scope_paths and finding.path not in scope_paths:
                continue
            key = (finding.path, finding.line, finding.col,
                   finding.sink)
            if key in seen:
                continue
            seen.add(key)
            yield Violation(path=finding.path, line=finding.line,
                            col=finding.col, rule=self.rule_id,
                            message=_message(finding))
