"""REP002 — the oblivious-robot contract.

In the Yamauchi–Uehara–Yamashita model (PODC 2016) robots are
*oblivious*: each activation computes the next destination as a pure
function of the current local observation.  Nothing may survive a
round — no counters, no caches, no flags stashed on the robot.  The
correctness proofs (and the adversary's power) depend on it.

For code under ``robots/algorithms/`` three mechanical checks
approximate the contract:

* **module-level mutable containers** — a ``dict``/``list``/``set``
  bound at module scope is writable cross-round state; constants must
  be immutable (tuples, frozensets, ``MappingProxyType``).
* **``global`` / ``nonlocal`` rebinding** — an algorithm function
  that rebinds an enclosing name is keeping state by definition.
* **attribute writes on parameters** — ``observation.seen = True``
  or ``setattr(robot, ...)`` stashes per-round state on objects the
  scheduler passes in.  (Writes to ``self``/``cls`` in methods are a
  class's own initialization, not cross-round smuggling.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import FileContext, Rule, Violation

__all__ = ["ObliviousnessContract"]

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                  "OrderedDict", "Counter", "deque"}
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.SetComp, ast.DictComp)
_SELF_NAMES = {"self", "cls"}


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else None
        return name in _MUTABLE_CALLS
    return False


class ObliviousnessContract(Rule):
    rule_id = "REP002"
    summary = ("robot algorithms must be pure functions of the local "
               "observation (no module state, no stashed attributes)")

    def applies(self, posix_path: str) -> bool:
        return "robots/algorithms/" in posix_path

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._module_state(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else \
                    "nonlocal"
                yield ctx.violation(
                    node, self.rule_id,
                    f"'{kind} {', '.join(node.names)}' rebinds state "
                    f"outside the observation; oblivious algorithms "
                    f"may not keep cross-round state")
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                yield from self._parameter_writes(ctx, node)

    def _module_state(self, ctx: FileContext) -> Iterator[Violation]:
        for stmt in ctx.tree.body:
            targets: list[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if names == ["__all__"]:
                continue
            if _is_mutable_value(value):
                yield ctx.violation(
                    stmt, self.rule_id,
                    f"module-level mutable container "
                    f"{', '.join(names) or '<target>'}; any round could "
                    f"mutate it — freeze it (tuple/frozenset/"
                    f"MappingProxyType)")

    def _parameter_writes(self, ctx: FileContext,
                          func: ast.FunctionDef | ast.AsyncFunctionDef,
                          ) -> Iterator[Violation]:
        args = func.args
        params = {a.arg for a in (*args.posonlyargs, *args.args,
                                  *args.kwonlyargs)}
        if args.vararg:
            params.add(args.vararg.arg)
        if args.kwarg:
            params.add(args.kwarg.arg)
        params -= _SELF_NAMES
        for node in self._own_body(func):
            if isinstance(node, (ast.Assign, ast.AugAssign,
                                 ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id in params:
                        yield ctx.violation(
                            node, self.rule_id,
                            f"writes attribute "
                            f"'{target.value.id}.{target.attr}' on a "
                            f"parameter of {func.name}(); per-round "
                            f"state on scheduler-owned objects breaks "
                            f"obliviousness")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "setattr" and node.args and \
                    isinstance(node.args[0], ast.Name) and \
                    node.args[0].id in params:
                yield ctx.violation(
                    node, self.rule_id,
                    f"setattr() on parameter '{node.args[0].id}' of "
                    f"{func.name}(); per-round state on "
                    f"scheduler-owned objects breaks obliviousness")

    @staticmethod
    def _own_body(func: ast.FunctionDef | ast.AsyncFunctionDef,
                  ) -> Iterator[ast.AST]:
        """Walk ``func`` without descending into nested functions
        (those are checked against their own parameter lists)."""
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))
