"""REP003 — cache purity.

The three-level cache hierarchy (``src/repro/perf/``) is only sound
if a stored value is a pure deterministic function of its key's
preimage: L2 entries are served across processes and L3 entries
across runs, so any impurity becomes an irreproducible wrong answer
long after the code that computed it has scrolled away.

Mechanical checks for files under ``perf/``:

* **``repr()``/``str()`` bytes in keys** — key digests must hash the
  exact bytes of their operands (``tobytes()``, IEEE-754 for floats),
  never a printed form: ``repr(0.1)`` depends on the repr algorithm,
  not the value's bits, and silently aliases distinct keys (or splits
  equal ones).  Flagged: ``repr(...).encode()`` anywhere, and
  ``str(x).encode()`` where ``x`` is a bare name (an attribute or a
  coercion like ``str(int(x))`` is deterministic by construction);
  plus f-strings inside ``*key*``/``*digest*`` functions.
* **``global`` rebinding** — cache lifecycle singletons are the only
  sanctioned module rebinding, and each site must carry a justified
  suppression so the set stays audited.
* **mutable default arguments** — a shared default dict/list is
  cross-call state that leaks between cache lookups.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import (
    FileContext,
    Rule,
    Violation,
    iter_function_defs,
)

__all__ = ["CachePurity"]

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.SetComp, ast.DictComp)


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class CachePurity(Rule):
    rule_id = "REP003"
    summary = ("cache keys must hash exact bytes and cached callables "
               "may not rely on mutable module state")

    def applies(self, posix_path: str) -> bool:
        return "/perf/" in posix_path or posix_path.startswith("perf/")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._printed_bytes(ctx, node)
            elif isinstance(node, ast.Global):
                yield ctx.violation(
                    node, self.rule_id,
                    f"'global {', '.join(node.names)}' in a cache "
                    f"module; only audited lifecycle singletons may "
                    f"rebind module state (suppress with a "
                    f"justification if this is one)")
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                yield from self._mutable_defaults(ctx, node)
        yield from self._fstrings_in_key_builders(ctx)

    def _printed_bytes(self, ctx: FileContext,
                       node: ast.Call) -> Iterator[Violation]:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "encode"
                and isinstance(node.func.value, ast.Call)):
            return
        inner = node.func.value
        name = _call_name(inner)
        if name == "repr":
            yield ctx.violation(
                node, self.rule_id,
                "hashes repr() bytes; key digests must use exact "
                "bytes (tobytes()/IEEE-754), printed forms alias "
                "distinct floats")
        elif name == "str" and inner.args and \
                isinstance(inner.args[0], (ast.Name, ast.Constant,
                                           ast.BinOp)):
            yield ctx.violation(
                node, self.rule_id,
                "hashes str() of a value; if it can be a float the "
                "printed form is not its bytes — add an explicit "
                "exact-byte branch instead")

    def _mutable_defaults(self, ctx: FileContext,
                          func: ast.FunctionDef | ast.AsyncFunctionDef,
                          ) -> Iterator[Violation]:
        for default in (*func.args.defaults, *func.args.kw_defaults):
            if default is None:
                continue
            if isinstance(default, _MUTABLE_LITERALS):
                yield ctx.violation(
                    default, self.rule_id,
                    f"mutable default argument in {func.name}(); the "
                    f"shared instance is cross-call cache state")

    def _fstrings_in_key_builders(self, ctx: FileContext,
                                  ) -> Iterator[Violation]:
        for func in iter_function_defs(ctx.tree):
            lowered = func.name.lower()
            if "key" not in lowered and "digest" not in lowered:
                continue
            for node in ast.walk(func):
                if isinstance(node, ast.JoinedStr) and any(
                        isinstance(part, ast.FormattedValue)
                        for part in node.values):
                    if self._under_raise(ctx, node):
                        continue  # error message, not key material
                    yield ctx.violation(
                        node, self.rule_id,
                        f"f-string inside key builder {func.name}(); "
                        f"interpolation prints values — hash exact "
                        f"bytes instead")

    @staticmethod
    def _under_raise(ctx: FileContext, node: ast.AST) -> bool:
        for _ in range(4):
            parent = ctx.parent(node)
            if parent is None:
                return False
            if isinstance(parent, ast.Raise):
                return True
            node = parent
        return False
