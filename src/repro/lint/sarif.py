"""SARIF 2.1.0 renderer for reprolint reports.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard GitHub code scanning ingests; emitting it lets reprolint
findings land as inline PR annotations with no custom tooling.  The
payload is the minimal valid subset of the 2.1.0 schema: one run, one
tool driver listing every registered rule, one result per violation
with a physical location.  ``tests/lint/test_sarif.py`` pins the
structure the same way the JSON schema-v1 pin does.
"""

from __future__ import annotations

from typing import Sequence

from repro.lint.framework import LintReport, Rule

__all__ = ["report_as_sarif", "SARIF_VERSION", "SARIF_SCHEMA_URI"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Reported for violations whose rule is not in the registry passed to
#: the renderer (REP000 meta findings use index -1 per the SARIF spec
#: convention "no ruleIndex available" → omitted).
_TOOL_NAME = "reprolint"


def report_as_sarif(report: LintReport, rules: Sequence[Rule],
                    tool_version: str) -> dict[str, object]:
    """The SARIF 2.1.0 payload for a finished run."""
    ordered = sorted(rules, key=lambda rule: rule.rule_id)
    rule_index = {rule.rule_id: i for i, rule in enumerate(ordered)}
    descriptors: list[dict[str, object]] = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
        }
        for rule in ordered
    ]
    results: list[dict[str, object]] = []
    for violation in report.violations:
        result: dict[str, object] = {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(violation.line, 1),
                            "startColumn": violation.col + 1,
                        },
                    },
                },
            ],
        }
        if violation.rule in rule_index:
            result["ruleIndex"] = rule_index[violation.rule]
        results.append(result)
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA_URI,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "version": tool_version,
                        "rules": descriptors,
                    },
                },
                "results": results,
            },
        ],
    }
