"""Core machinery of ``reprolint``: contexts, rules, driver.

The linter is a thin deterministic pipeline:

1. collect ``*.py`` files from the given paths (sorted walk — the
   output order must not depend on filesystem enumeration order,
   which is exactly the kind of nondeterminism REP005 polices);
2. parse each file once into an :class:`ast.Module` shared by every
   rule through a :class:`FileContext`;
3. run each registered :class:`Rule` whose :meth:`Rule.applies`
   predicate accepts the file;
4. drop violations silenced by an inline suppression (see
   :mod:`repro.lint.suppress` — a justification is mandatory) and
   report the rest.

Rules are pure functions of the file context: no rule may keep state
across files, consult the clock, or read anything but the context —
the linter holds itself to the invariants it enforces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.lint.cache import AnalysisCache, file_digest
from repro.lint.project import (IR_VERSION, ModuleSummary, Project,
                                summarize_module)
from repro.lint.suppress import SuppressionTable, parse_suppressions

__all__ = [
    "Violation",
    "FileContext",
    "Rule",
    "ProjectRule",
    "LintReport",
    "iter_python_files",
    "lint_file",
    "run_paths",
    "cache_signature",
]

#: Rule id used for meta problems (bad suppressions, parse errors).
#: It cannot be suppressed.
META_RULE = "REP000"


@dataclass(frozen=True, order=True)
class Violation:
    """One finding, addressable as ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"{self.message}"

    def as_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class FileContext:
    """Everything a rule may look at for one file."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines: list[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=display_path)
        self.suppressions: SuppressionTable = parse_suppressions(source)
        self._parents: dict[ast.AST, ast.AST] | None = None

    @property
    def posix_path(self) -> str:
        """Forward-slash path used for rule scoping decisions."""
        return self.display_path.replace("\\", "/")

    def parent(self, node: ast.AST) -> ast.AST | None:
        """Parent AST node (the map is built on first use)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[child] = outer
            self._parents = parents
        return self._parents.get(node)

    def violation(self, node: ast.AST, rule: str, message: str) -> Violation:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        return Violation(path=self.display_path, line=line, col=col,
                         rule=rule, message=message)


class Rule:
    """Base class: subclasses set ``rule_id``/``summary`` and
    implement :meth:`check`."""

    rule_id: str = META_RULE
    summary: str = ""

    def applies(self, posix_path: str) -> bool:
        """Whether this rule runs on the given file (path-scoped)."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError
        yield  # pragma: no cover


class ProjectRule(Rule):
    """A rule over the whole project rather than one file.

    Project rules see the assembled :class:`~repro.lint.project.Project`
    (every module's summary) and run once per lint invocation, after
    all files are summarized.  They never run per-file, so
    :meth:`applies` is False; their violations are still filtered
    through each file's inline suppression table by the driver.
    """

    def applies(self, posix_path: str) -> bool:
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: Project) -> Iterable[Violation]:
        raise NotImplementedError


@dataclass
class LintReport:
    """Aggregated result of one lint run."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0
    #: Incremental-cache accounting (never part of the JSON payload —
    #: reports must be byte-identical cold vs. warm).
    files_analyzed: int = 0
    files_reused: int = 0

    @property
    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for v in self.violations:
            counts[v.rule] = counts.get(v.rule, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0


def iter_python_files(paths: Sequence[str | Path],
                      root: Path | None = None) -> Iterator[Path]:
    """Yield ``*.py`` files beneath ``paths`` in sorted order.

    Directories are walked recursively; hidden directories and
    ``__pycache__`` are skipped.  Sorting makes the lint output a
    pure function of the tree's contents.
    """
    base = root if root is not None else Path.cwd()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = base / path
        if path.is_file():
            yield path
        elif path.is_dir():
            entries = sorted(path.iterdir(), key=lambda p: p.name)
            for entry in entries:
                if entry.name.startswith(".") or \
                        entry.name == "__pycache__":
                    continue
                if entry.is_dir():
                    yield from iter_python_files([entry], root=base)
                elif entry.suffix == ".py":
                    yield entry


def _display_path(path: Path, root: Path | None) -> str:
    base = root if root is not None else Path.cwd()
    try:
        return str(path.relative_to(base))
    except ValueError:
        return str(path)


def _analyze_source(path: Path, display: str, source: str,
                    rules: Sequence[Rule],
                    ) -> tuple[list[Violation], int,
                               SuppressionTable | None,
                               ModuleSummary | None]:
    """Run the per-file stage: file rules, suppressions, summary."""
    try:
        ctx = FileContext(path, display, source)
    except SyntaxError as exc:
        return ([Violation(path=display, line=exc.lineno or 0,
                           col=exc.offset or 0, rule=META_RULE,
                           message=f"file does not parse: {exc.msg}")],
                0, None, None)
    found: list[Violation] = list(ctx.suppressions.problems(display))
    suppressed = 0
    for rule in rules:
        if not rule.applies(ctx.posix_path):
            continue
        for violation in rule.check(ctx):
            if violation.rule != META_RULE and \
                    ctx.suppressions.is_suppressed(violation.line,
                                                   violation.rule):
                suppressed += 1
            else:
                found.append(violation)
    summary = summarize_module(ctx.posix_path, ctx.tree)
    return sorted(found), suppressed, ctx.suppressions, summary


def lint_file(path: Path, rules: Sequence[Rule],
              root: Path | None = None) -> tuple[list[Violation], int]:
    """Lint one file; returns (violations, suppressed_count).

    Only the per-file stage runs here — :class:`ProjectRule` needs the
    whole tree and is driven by :func:`run_paths`.
    """
    display = _display_path(path, root)
    source = path.read_text(encoding="utf-8")
    violations, suppressed, _, _ = _analyze_source(path, display, source,
                                                   rules)
    return violations, suppressed


def cache_signature(rules: Sequence[Rule]) -> str:
    """Global analysis-cache key: invalidates on any linter change."""
    ids = ",".join(sorted(rule.rule_id for rule in rules))
    return f"ir={IR_VERSION};rules={ids}"


def _entry_from_analysis(digest: str, violations: list[Violation],
                         suppressed: int,
                         table: SuppressionTable | None,
                         summary: ModuleSummary | None,
                         ) -> dict[str, Any]:
    return {
        "digest": digest,
        "violations": [v.as_json() for v in violations],
        "suppressed": suppressed,
        "suppress_lines": ({str(line): sorted(ids) for line, ids
                            in table.by_line.items()}
                           if table is not None else None),
        "summary": summary.as_json() if summary is not None else None,
    }


def _entry_decode(entry: dict[str, Any],
                  ) -> tuple[list[Violation], int,
                             SuppressionTable | None,
                             ModuleSummary | None]:
    violations = [
        Violation(path=str(v["path"]), line=int(v["line"]),
                  col=int(v["col"]), rule=str(v["rule"]),
                  message=str(v["message"]))
        for v in entry["violations"]
    ]
    table: SuppressionTable | None = None
    if entry["suppress_lines"] is not None:
        table = SuppressionTable(by_line={
            int(line): set(ids)
            for line, ids in entry["suppress_lines"].items()})
    summary = (ModuleSummary.from_json(entry["summary"])
               if entry["summary"] is not None else None)
    return violations, int(entry["suppressed"]), table, summary


def run_paths(paths: Sequence[str | Path], rules: Sequence[Rule],
              root: Path | None = None,
              cache_dir: str | Path | None = None) -> LintReport:
    """Lint every Python file beneath ``paths`` with ``rules``.

    Two stages: the per-file stage (file rules + module summaries,
    served from the incremental cache when ``cache_dir`` is given and
    the file's digest is unchanged) and the project stage
    (:class:`ProjectRule` over the assembled summaries, recomputed
    every run so editing one module re-checks its dependents).
    """
    report = LintReport()
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    cache: AnalysisCache | None = None
    if cache_dir is not None:
        cache = AnalysisCache.load(cache_dir, cache_signature(rules))

    summaries: list[ModuleSummary] = []
    tables: dict[str, SuppressionTable] = {}
    seen: set[Path] = set()
    live: set[str] = set()
    for path in iter_python_files(paths, root=root):
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        report.files += 1
        display = _display_path(path, root)
        live.add(display)
        data = path.read_bytes()
        digest = file_digest(data)
        entry = cache.get(display, digest) if cache is not None else None
        if entry is not None:
            violations, suppressed, table, summary = _entry_decode(entry)
            report.files_reused += 1
        else:
            source = data.decode("utf-8")
            violations, suppressed, table, summary = _analyze_source(
                path, display, source, file_rules)
            report.files_analyzed += 1
            if cache is not None:
                cache.put(display, _entry_from_analysis(
                    digest, violations, suppressed, table, summary))
        report.violations.extend(violations)
        report.suppressed += suppressed
        if table is not None:
            tables[display] = table
        if summary is not None:
            summaries.append(summary)

    project = Project(summaries)
    for rule in project_rules:
        for violation in rule.check_project(project):
            table = tables.get(violation.path)
            if violation.rule != META_RULE and table is not None and \
                    table.is_suppressed(violation.line, violation.rule):
                report.suppressed += 1
            else:
                report.violations.append(violation)

    if cache is not None:
        cache.prune(live)
        cache.save()
    report.violations.sort()
    return report


def iter_function_defs(tree: ast.AST) -> Iterable[ast.FunctionDef |
                                                  ast.AsyncFunctionDef]:
    """All function definitions in the tree (nested included)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
