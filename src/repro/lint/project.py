"""Project model for reprolint's cross-module engine.

The file-local rules (REP001-REP007) are pure functions of one
:class:`~repro.lint.framework.FileContext`; the cross-module rules
(REP008-REP011) need a *project*: which modules exist, what each one
imports, which functions call which, and how values flow between
them.  This module builds that model in two stages:

1. :func:`summarize_module` lowers one parsed file into a
   :class:`ModuleSummary` — imports resolved to dotted targets,
   module-level literal constants, and one :class:`FunctionInfo` per
   function (methods and nested functions included).  Each function
   carries a small serializable IR: an ordered list of ops
   (assignments, returns, loop bindings, bare expressions) whose
   expressions record the names they read, the calls they make and a
   few structural flags.  The summary is a pure function of the file's
   source, which is what makes the incremental cache
   (:mod:`repro.lint.cache`) sound: it is keyed by the file's content
   digest alone.
2. :class:`Project` assembles the summaries, resolves dotted call
   references against imports and symbol tables, and answers the
   queries the dataflow pass (:mod:`repro.lint.dataflow`) and the
   project rules ask: "which function is ``shared.SharedStore.create``
   here?", "which modules are transitively imported from
   ``repro.api``?".

Everything is deliberately conservative and *field-blind*: taint does
not flow through object attributes or global state, calls that cannot
be resolved statically propagate their arguments' labels to their
result, and containers are tainted as a whole.  The soundness caveats
are documented in ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "CallIR",
    "ExprIR",
    "FunctionInfo",
    "IR_VERSION",
    "ModuleSummary",
    "Project",
    "ResourceEvent",
    "module_name_for",
    "summarize_module",
]

#: Bumped whenever the lowering changes shape; part of the analysis
#: cache signature so stale summaries are never deserialized.
IR_VERSION = 2

#: Methods whose call on a resource variable counts as releasing it.
_CLEANUP_METHODS = frozenset((
    "close", "unlink", "shutdown", "terminate", "release", "join",
))


def module_name_for(posix_path: str) -> str:
    """Dotted module name for a display path.

    ``src/repro/obs/clock.py`` maps to ``repro.obs.clock`` (the
    ``src``-layout root is stripped); anything else maps to its path
    with separators replaced by dots (``benchmarks/bench_x.py`` →
    ``benchmarks.bench_x``) — such modules can *refer to* package
    modules but are never import targets themselves.
    """
    path = posix_path
    if path.endswith(".py"):
        path = path[:-3]
    parts = [part for part in path.split("/") if part]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "__root__"


# ---------------------------------------------------------------------------
# IR dataclasses (all JSON-serializable through as_json/from_json)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExprIR:
    """What the dataflow pass needs to know about one expression."""

    names: tuple[str, ...] = ()
    calls: tuple["CallIR", ...] = ()
    binop: bool = False
    isset: bool = False
    line: int = 0
    col: int = 0

    def as_json(self) -> dict[str, Any]:
        return {
            "n": list(self.names),
            "c": [c.as_json() for c in self.calls],
            "b": self.binop,
            "s": self.isset,
            "l": self.line,
            "o": self.col,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ExprIR":
        return cls(names=tuple(data["n"]),
                   calls=tuple(CallIR.from_json(c) for c in data["c"]),
                   binop=data["b"], isset=data["s"],
                   line=data["l"], col=data["o"])


@dataclass(frozen=True)
class CallIR:
    """One call site: dotted callee reference plus lowered arguments."""

    ref: str | None
    args: tuple[ExprIR, ...] = ()
    keywords: tuple[tuple[str | None, ExprIR], ...] = ()
    #: Receiver expression for method calls whose base is not a pure
    #: dotted name (``SeedSequence(seed).spawn(n)``) — taint on the
    #: receiver reaches the result.
    recv: ExprIR | None = None
    #: ``create=True`` keyword present (SharedMemory creation side).
    create_kw: bool = False
    line: int = 0
    col: int = 0

    def as_json(self) -> dict[str, Any]:
        return {
            "r": self.ref,
            "a": [a.as_json() for a in self.args],
            "k": [[name, expr.as_json()] for name, expr in self.keywords],
            "v": self.recv.as_json() if self.recv is not None else None,
            "cw": self.create_kw,
            "l": self.line,
            "o": self.col,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "CallIR":
        return cls(
            ref=data["r"],
            args=tuple(ExprIR.from_json(a) for a in data["a"]),
            keywords=tuple((name, ExprIR.from_json(expr))
                           for name, expr in data["k"]),
            recv=(ExprIR.from_json(data["v"])
                  if data["v"] is not None else None),
            create_kw=data["cw"], line=data["l"], col=data["o"])


@dataclass(frozen=True)
class ResourceEvent:
    """One candidate acquisition site for the lifecycle rule."""

    var: str
    ref: str | None
    create_kw: bool
    line: int
    col: int
    in_with: bool
    risky_after: bool
    cleanup_any: bool
    cleanup_protected: bool
    returned: bool
    stored_self: bool

    def as_json(self) -> dict[str, Any]:
        return {
            "var": self.var, "ref": self.ref, "cw": self.create_kw,
            "l": self.line, "o": self.col, "w": self.in_with,
            "ra": self.risky_after, "ca": self.cleanup_any,
            "cp": self.cleanup_protected, "rt": self.returned,
            "ss": self.stored_self,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ResourceEvent":
        return cls(var=data["var"], ref=data["ref"], create_kw=data["cw"],
                   line=data["l"], col=data["o"], in_with=data["w"],
                   risky_after=data["ra"], cleanup_any=data["ca"],
                   cleanup_protected=data["cp"], returned=data["rt"],
                   stored_self=data["ss"])


@dataclass
class FunctionInfo:
    """One function (or method, or nested function) in IR form."""

    name: str
    qualname: str
    cls: str | None
    params: tuple[str, ...]
    line: int
    col: int
    #: Ordered ops: ("assign", targets, ExprIR) / ("iter", targets,
    #: ExprIR) for loop bindings / ("return", (), ExprIR) /
    #: ("expr", (), ExprIR).
    ops: list[tuple[str, tuple[str, ...], ExprIR]] = field(
        default_factory=list)
    #: Nested function name → qualname, for call resolution.
    local_funcs: dict[str, str] = field(default_factory=dict)
    #: (ref, had create=True kwarg) of calls whose result this
    #: function returns (directly, or through a local variable).
    return_call_refs: tuple[tuple[str, bool], ...] = ()
    resources: tuple[ResourceEvent, ...] = ()
    is_public: bool = True
    #: Parameter names (plus "return") lacking annotations.
    missing_annotations: tuple[str, ...] = ()

    def as_json(self) -> dict[str, Any]:
        return {
            "name": self.name, "qual": self.qualname, "cls": self.cls,
            "params": list(self.params), "l": self.line, "o": self.col,
            "ops": [[kind, list(targets), expr.as_json()]
                    for kind, targets, expr in self.ops],
            "locals": dict(self.local_funcs),
            "retrefs": [[ref, create] for ref, create
                        in self.return_call_refs],
            "res": [event.as_json() for event in self.resources],
            "pub": self.is_public,
            "missann": list(self.missing_annotations),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FunctionInfo":
        info = cls(name=data["name"], qualname=data["qual"],
                   cls=data["cls"], params=tuple(data["params"]),
                   line=data["l"], col=data["o"])
        info.ops = [(kind, tuple(targets), ExprIR.from_json(expr))
                    for kind, targets, expr in data["ops"]]
        info.local_funcs = dict(data["locals"])
        info.return_call_refs = tuple((str(ref), bool(create))
                                      for ref, create in data["retrefs"])
        info.resources = tuple(ResourceEvent.from_json(event)
                               for event in data["res"])
        info.is_public = data["pub"]
        info.missing_annotations = tuple(data["missann"])
        return info


@dataclass
class ModuleSummary:
    """Everything the project pass keeps about one module."""

    name: str
    path: str  # display path, forward slashes
    imports: dict[str, str] = field(default_factory=dict)
    deps: tuple[str, ...] = ()
    constants: dict[str, Any] = field(default_factory=dict)
    #: constant name → line it is defined on
    constant_lines: dict[str, int] = field(default_factory=dict)
    #: qualname ("f", "Cls.m", "outer.inner") → FunctionInfo
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name → tuple of annotated field names (dataclass-style)
    class_fields: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: class name → tuple of ``(name, line)`` for *plain* (unannotated)
    #: class-body assignments.  On a dataclass these are silently not
    #: fields — the facade-contract rule flags them on record classes.
    class_plain_fields: dict[str, tuple[tuple[str, int], ...]] = field(
        default_factory=dict)

    def as_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "path": self.path,
            "imports": dict(sorted(self.imports.items())),
            "deps": sorted(self.deps),
            "constants": {k: self.constants[k]
                          for k in sorted(self.constants)},
            "constant_lines": {k: self.constant_lines[k]
                               for k in sorted(self.constant_lines)},
            "functions": {qual: info.as_json()
                          for qual, info in sorted(self.functions.items())},
            "class_fields": {name: list(fields) for name, fields in
                             sorted(self.class_fields.items())},
            "class_plain_fields": {
                name: [[fname, line] for fname, line in fields]
                for name, fields in
                sorted(self.class_plain_fields.items())},
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ModuleSummary":
        summary = cls(name=data["name"], path=data["path"])
        summary.imports = dict(data["imports"])
        summary.deps = tuple(data["deps"])
        summary.constants = dict(data["constants"])
        summary.constant_lines = {name: int(line) for name, line
                                  in data["constant_lines"].items()}
        summary.functions = {qual: FunctionInfo.from_json(info)
                             for qual, info in data["functions"].items()}
        summary.class_fields = {name: tuple(fields) for name, fields in
                                data["class_fields"].items()}
        summary.class_plain_fields = {
            name: tuple((str(fname), int(line)) for fname, line in fields)
            for name, fields in data["class_plain_fields"].items()}
        return summary


# ---------------------------------------------------------------------------
# Lowering: AST -> ModuleSummary
# ---------------------------------------------------------------------------


def _call_ref(func: ast.AST) -> str | None:
    """Dotted reference for a call's func expression.

    ``a.b.c`` forms resolve fully; a method on a computed base
    (``SeedSequence(s).spawn``) yields ``"?.spawn"`` so tail-based
    matchers still see the method name.
    """
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        base = _call_ref(func.value)
        if base is not None:
            return base + "." + func.attr
        return "?." + func.attr
    return None


def _lower_call(node: ast.Call) -> CallIR:
    ref = _call_ref(node.func)
    recv: ExprIR | None = None
    if isinstance(node.func, ast.Attribute) and not isinstance(
            node.func.value, (ast.Name, ast.Attribute)):
        recv = _lower_expr(node.func.value)
    args = []
    for arg in node.args:
        target = arg.value if isinstance(arg, ast.Starred) else arg
        args.append(_lower_expr(target))
    keywords: list[tuple[str | None, ExprIR]] = []
    create_kw = False
    for kw in node.keywords:
        keywords.append((kw.arg, _lower_expr(kw.value)))
        if kw.arg == "create" and isinstance(kw.value, ast.Constant) \
                and kw.value.value is True:
            create_kw = True
    return CallIR(ref=ref, args=tuple(args), keywords=tuple(keywords),
                  recv=recv, create_kw=create_kw,
                  line=node.lineno, col=node.col_offset)


def _lower_expr(node: ast.AST) -> ExprIR:
    """Lower one expression: free names, call sites, structure flags."""
    names: list[str] = []
    calls: list[CallIR] = []
    flags = {"binop": False, "isset": False}

    def walk(n: ast.AST) -> None:
        if isinstance(n, ast.Call):
            calls.append(_lower_call(n))
            # The callee chain itself contributes no data flow; the
            # arguments are lowered inside the CallIR.
            return
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load):
            if n.id not in names:
                names.append(n.id)
            return
        if isinstance(n, ast.Attribute):
            walk(n.value)
            return
        if isinstance(n, (ast.BinOp, ast.AugAssign)):
            flags["binop"] = True
        if isinstance(n, (ast.Set, ast.SetComp)):
            flags["isset"] = True
        if isinstance(n, (ast.Lambda, ast.FunctionDef,
                          ast.AsyncFunctionDef)):
            return  # deferred bodies do not flow here
        for child in ast.iter_child_nodes(n):
            walk(child)

    walk(node)
    return ExprIR(names=tuple(names), calls=tuple(calls),
                  binop=flags["binop"], isset=flags["isset"],
                  line=getattr(node, "lineno", 0),
                  col=getattr(node, "col_offset", 0))


def _target_names(target: ast.AST) -> tuple[str, ...]:
    """Plain names bound by an assignment target (attributes and
    subscripts are field-blind and dropped)."""
    if isinstance(target, ast.Name):
        return (target.id,)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return tuple(names)
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return ()


def _self_target(target: ast.AST) -> str | None:
    """``"self.attr"`` for an attribute store on self, else None."""
    if isinstance(target, ast.Attribute) and \
            isinstance(target.value, ast.Name) and \
            target.value.id in ("self", "cls"):
        return f"{target.value.id}.{target.attr}"
    return None


class _FunctionLowerer:
    """Lowers one function body to ops + resource events."""

    def __init__(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                 qualname: str, cls_name: str | None) -> None:
        self.node: ast.FunctionDef | ast.AsyncFunctionDef = node
        self.info = FunctionInfo(
            name=node.name, qualname=qualname, cls=cls_name,
            params=self._param_names(node), line=node.lineno,
            col=node.col_offset,
            is_public=not node.name.startswith("_"))
        self._candidates: list[tuple[str, CallIR, bool]] = []
        self._nested: list[ast.FunctionDef | ast.AsyncFunctionDef] = []

    @staticmethod
    def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef,
                     ) -> tuple[str, ...]:
        args = node.args
        ordered = (list(args.posonlyargs) + list(args.args)
                   + list(args.kwonlyargs))
        names = [a.arg for a in ordered]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        return tuple(names)

    def lower(self) -> tuple[FunctionInfo,
                             list[ast.FunctionDef | ast.AsyncFunctionDef]]:
        self._missing_annotations()
        for stmt in self.node.body:
            self._stmt(stmt, in_with=False)
        self._finish_resources()
        self._return_refs()
        return self.info, self._nested

    def _missing_annotations(self) -> None:
        node, args = self.node, self.node.args
        ordered = (list(args.posonlyargs) + list(args.args)
                   + list(args.kwonlyargs))
        missing = [a.arg for a in ordered
                   if a.annotation is None
                   and a.arg not in ("self", "cls")]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if node.returns is None and node.name != "__init__":
            missing.append("return")
        self.info.missing_annotations = tuple(missing)

    # -- statements ----------------------------------------------------
    def _stmt(self, stmt: ast.stmt, in_with: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.info.local_funcs[stmt.name] = \
                f"{self.info.qualname}.{stmt.name}"
            self._nested.append(stmt)
            return
        if isinstance(stmt, ast.ClassDef):
            return  # nested classes are out of scope
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assign(stmt)
            return
        if isinstance(stmt, ast.Return):
            expr = _lower_expr(stmt.value) if stmt.value is not None \
                else ExprIR(line=stmt.lineno, col=stmt.col_offset)
            self.info.ops.append(("return", (), expr))
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.info.ops.append(("iter", _target_names(stmt.target),
                                  _lower_expr(stmt.iter)))
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub, in_with)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                targets = _target_names(item.optional_vars) \
                    if item.optional_vars is not None else ()
                expr = _lower_expr(item.context_expr)
                self.info.ops.append(("assign", targets, expr))
                if targets:
                    for call in expr.calls:
                        self._candidates.append((targets[0], call, True))
            for sub in stmt.body:
                self._stmt(sub, in_with=True)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self.info.ops.append(("expr", (), _lower_expr(stmt.test)))
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub, in_with)
            return
        if isinstance(stmt, ast.Try):
            for sub in stmt.body + stmt.orelse + stmt.finalbody:
                self._stmt(sub, in_with)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._stmt(sub, in_with)
            return
        if isinstance(stmt, ast.Expr):
            self.info.ops.append(("expr", (), _lower_expr(stmt.value)))
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            lowered = [_lower_expr(part) for part in
                       (stmt.exc, stmt.cause) if part is not None] \
                if isinstance(stmt, ast.Raise) else [_lower_expr(stmt.test)]
            for expr in lowered:
                self.info.ops.append(("expr", (), expr))
            return
        # Pass/Break/Continue/Global/Nonlocal/Import...: no data flow.

    def _assign(self, stmt: ast.Assign | ast.AnnAssign | ast.AugAssign,
                ) -> None:
        if stmt.value is None:
            return
        expr = _lower_expr(stmt.value)
        if isinstance(stmt, ast.Assign):
            targets: list[str] = []
            for target in stmt.targets:
                targets.extend(_target_names(target))
                self._resource_candidate(target, expr)
            self.info.ops.append(("assign", tuple(targets), expr))
        elif isinstance(stmt, ast.AnnAssign):
            names = _target_names(stmt.target)
            self.info.ops.append(("assign", names, expr))
            self._resource_candidate(stmt.target, expr)
        else:  # AugAssign: target reads itself, result has arithmetic
            names = _target_names(stmt.target)
            combined = ExprIR(names=tuple(set(expr.names) | set(names)),
                              calls=expr.calls, binop=True,
                              isset=expr.isset, line=expr.line,
                              col=expr.col)
            self.info.ops.append(("assign", names, combined))

    def _resource_candidate(self, target: ast.AST, expr: ExprIR) -> None:
        var = None
        names = _target_names(target)
        if len(names) == 1:
            var = names[0]
        else:
            var = _self_target(target)
        if var is None:
            return
        for call in expr.calls:
            self._candidates.append((var, call, False))

    # -- post-passes over the original AST -----------------------------
    def _finish_resources(self) -> None:
        """Resolve each candidate acquisition into a ResourceEvent."""
        cleanup_lines: dict[str, list[tuple[int, bool]]] = {}
        returned_vars: set[str] = set()
        return_lines: list[int] = []
        risky_lines: list[int] = []

        protected: set[int] = set()
        for outer in ast.walk(self.node):
            if isinstance(outer, ast.Try):
                shielded = outer.finalbody + [
                    stmt for handler in outer.handlers
                    for stmt in handler.body]
                for stmt in shielded:
                    for inner in ast.walk(stmt):
                        if isinstance(inner, ast.Call):
                            protected.add(inner.lineno)

        for node in ast.walk(self.node):
            if isinstance(node, ast.Call):
                base = _call_ref(node.func)
                if base is not None and "." in base and \
                        base.rsplit(".", 1)[1] in _CLEANUP_METHODS:
                    owner = base.rsplit(".", 1)[0]
                    cleanup_lines.setdefault(owner, []).append(
                        (node.lineno, node.lineno in protected))
                else:
                    risky_lines.append(node.lineno)
            elif isinstance(node, ast.Return) and node.value is not None:
                return_lines.append(node.lineno)
                for name_node in ast.walk(node.value):
                    if isinstance(name_node, ast.Name):
                        returned_vars.add(name_node.id)

        events = []
        for var, call, in_with in self._candidates:
            cleanups = cleanup_lines.get(var, [])
            events.append(ResourceEvent(
                var=var, ref=call.ref, create_kw=call.create_kw,
                line=call.line, col=call.col, in_with=in_with,
                risky_after=any(line > call.line for line in risky_lines),
                cleanup_any=bool(cleanups),
                cleanup_protected=any(prot for _, prot in cleanups),
                returned=(var in returned_vars
                          or var.startswith(("self.", "cls."))),
                stored_self=var.startswith(("self.", "cls."))))
        self.info.resources = tuple(events)

    def _return_refs(self) -> None:
        """Refs of calls whose results this function returns."""
        assigned_refs: dict[str, tuple[str, bool]] = {}
        refs: list[tuple[str, bool]] = []
        for kind, targets, expr in self.info.ops:
            if kind == "assign" and len(targets) == 1 and expr.calls:
                call = expr.calls[0]
                if call.ref is not None:
                    assigned_refs[targets[0]] = (call.ref,
                                                 call.create_kw)
            elif kind == "return":
                for call in expr.calls:
                    if call.ref is not None:
                        refs.append((call.ref, call.create_kw))
                for name in expr.names:
                    if name in assigned_refs:
                        refs.append(assigned_refs[name])
        self.info.return_call_refs = tuple(dict.fromkeys(refs))


def _module_imports(tree: ast.Module, module_name: str, is_package: bool,
                    ) -> tuple[dict[str, str], set[str]]:
    """(local name → dotted target, imported module deps)."""
    imports: dict[str, str] = {}
    deps: set[str] = set()
    package = module_name if is_package else (
        module_name.rsplit(".", 1)[0] if "." in module_name else "")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = alias.name
                deps.add(target)
                if alias.asname is not None:
                    imports[alias.asname] = target
                else:
                    imports[target.split(".")[0]] = target.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = package.split(".") if package else []
                cut = len(anchor) - (node.level - 1)
                anchor = anchor[:cut] if cut > 0 else []
                base = ".".join(anchor + ([base] if base else []))
            if not base:
                continue
            deps.add(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}"
                deps.add(target)
                imports[alias.asname or alias.name] = target
    expanded = set()
    for dep in deps:
        parts = dep.split(".")
        for i in range(1, len(parts) + 1):
            expanded.add(".".join(parts[:i]))
    return imports, expanded


def _jsonable_const(value: Any) -> Any:
    """The JSON-safe form of a literal constant, or raise TypeError.

    The summaries round-trip through the on-disk cache as JSON, so
    only JSON-representable constants are kept (set/bytes literals
    like rule tables are dropped); tuples canonicalize to lists so
    cold and warm runs see identical values.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable_const(item) for item in value]
    raise TypeError(type(value).__name__)


def _module_constants(tree: ast.Module,
                      ) -> tuple[dict[str, Any], dict[str, int]]:
    """Module-level literal constants (``GRID_AXES``-style tuples)."""
    constants: dict[str, Any] = {}
    lines: dict[str, int] = {}
    for stmt in tree.body:
        target: ast.AST | None = None
        value: ast.AST | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        try:
            constants[target.id] = _jsonable_const(
                ast.literal_eval(value))
        except (ValueError, TypeError, SyntaxError, MemoryError):
            continue
        lines[target.id] = stmt.lineno
    return constants, lines


def summarize_module(posix_path: str, tree: ast.Module) -> ModuleSummary:
    """Lower one parsed module into its project summary."""
    name = module_name_for(posix_path)
    is_package = posix_path.endswith("__init__.py")
    imports, deps = _module_imports(tree, name, is_package)
    constants, constant_lines = _module_constants(tree)
    summary = ModuleSummary(name=name, path=posix_path, imports=imports,
                            deps=tuple(sorted(deps)),
                            constants=constants,
                            constant_lines=constant_lines)

    pending: list[tuple[ast.FunctionDef | ast.AsyncFunctionDef,
                        str, str | None]] = []
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pending.append((stmt, stmt.name, None))
        elif isinstance(stmt, ast.ClassDef):
            fields: list[str] = []
            plain: list[tuple[str, int]] = []
            for sub in stmt.body:
                if isinstance(sub, ast.AnnAssign) and \
                        isinstance(sub.target, ast.Name):
                    fields.append(sub.target.id)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            plain.append((target.id, sub.lineno))
                elif isinstance(sub, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    pending.append((sub, f"{stmt.name}.{sub.name}",
                                    stmt.name))
            summary.class_fields[stmt.name] = tuple(fields)
            summary.class_plain_fields[stmt.name] = tuple(plain)

    while pending:
        node, qualname, cls_name = pending.pop(0)
        info, nested = _FunctionLowerer(node, qualname, cls_name).lower()
        summary.functions[qualname] = info
        for child in nested:
            pending.append((child, f"{qualname}.{child.name}", cls_name))

    # Module-level statements form a pseudo-function so module-scope
    # calls participate in the analysis.
    module_info = FunctionInfo(name="<module>", qualname="<module>",
                               cls=None, params=(), line=1, col=0,
                               missing_annotations=())
    lowerer = _FunctionLowerer.__new__(_FunctionLowerer)
    lowerer.info = module_info
    lowerer._candidates = []
    lowerer._nested = []
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom)):
            continue
        lowerer._stmt(stmt, in_with=False)
    summary.functions["<module>"] = module_info
    return summary


# ---------------------------------------------------------------------------
# Project assembly and reference resolution
# ---------------------------------------------------------------------------


class Project:
    """All module summaries plus resolution and reachability queries."""

    def __init__(self, summaries: list[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.name] = summary

    def iter_functions(self) -> Iterator[tuple[ModuleSummary,
                                               FunctionInfo]]:
        """Every function, in deterministic (module, qualname) order."""
        for name in sorted(self.modules):
            summary = self.modules[name]
            for qual in sorted(summary.functions):
                yield summary, summary.functions[qual]

    def resolve_ref(self, summary: ModuleSummary, info: FunctionInfo,
                    ref: str | None) -> str | None:
        """Fully-qualified dotted name for a call reference.

        Local symbols win over imports; unresolvable heads (local
        variables, builtins) return the ref itself when it is already
        dotted (so external matchers can inspect it) or None.
        """
        if ref is None:
            return None
        head, _, rest = ref.partition(".")
        if head in ("self", "cls") and info.cls is not None and rest:
            return f"{summary.name}.{info.cls}.{rest}"
        if head in info.local_funcs and not rest:
            return f"{summary.name}.{info.local_funcs[head]}"
        if head in summary.functions and not rest:
            return f"{summary.name}.{head}"
        if head in summary.class_fields:
            return f"{summary.name}.{ref}"
        if head in summary.imports:
            target = summary.imports[head]
            return f"{target}.{rest}" if rest else target
        # Unresolved heads (builtins, local variables) pass through so
        # external matchers can still inspect the raw reference.
        return ref

    def function_for(self, qualified: str | None,
                     ) -> tuple[ModuleSummary, FunctionInfo] | None:
        """The project function behind a fully-qualified name.

        Tries the longest module-name prefix; ``pkg.mod.Cls`` resolves
        to ``Cls.__init__`` when present (constructor call).
        """
        if qualified is None:
            return None
        parts = qualified.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            summary = self.modules.get(module)
            if summary is None:
                continue
            qual = ".".join(parts[split:])
            if qual in summary.functions:
                return summary, summary.functions[qual]
            init = f"{qual}.__init__"
            if qual in summary.class_fields and init in summary.functions:
                return summary, summary.functions[init]
            return None
        return None

    def import_closure(self, roots: list[str]) -> set[str]:
        """Modules transitively imported from ``roots`` (project
        modules only; parent packages included)."""
        seen: set[str] = set()
        frontier = [root for root in roots if root in self.modules]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            summary = self.modules.get(name)
            if summary is None:
                continue
            for dep in summary.deps:
                if dep in self.modules and dep not in seen:
                    frontier.append(dep)
        return seen
