"""Command line front end: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 clean, 1 findings, 2 usage error.  JSON output is a
stable schema (``tests/lint/test_json_output.py`` pins it)::

    {
      "version": 1,
      "files": 42,
      "suppressed": 3,
      "by_rule": {"REP001": 2},
      "violations": [
        {"rule": "REP001", "path": "src/...", "line": 10,
         "col": 4, "message": "..."}
      ]
    }

``--format sarif`` emits SARIF 2.1.0 for GitHub code scanning (see
:mod:`repro.lint.sarif`).  ``--cache-dir DIR`` enables the
incremental analysis cache; reports are byte-identical with or
without it (cache statistics go to stderr, never into the report).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.framework import LintReport, run_paths
from repro.lint.rules import default_rules
from repro.lint.sarif import report_as_sarif

__all__ = ["main", "report_as_json", "render_text"]

JSON_SCHEMA_VERSION = 1

#: Reported as the SARIF tool version; bumped with the rule set.
TOOL_VERSION = "2.0.0"

_DEFAULT_PATHS = ("src", "benchmarks")


def report_as_json(report: LintReport) -> dict[str, object]:
    """The stable JSON payload for a finished run."""
    return {
        "version": JSON_SCHEMA_VERSION,
        "files": report.files,
        "suppressed": report.suppressed,
        "by_rule": report.by_rule,
        "violations": [v.as_json() for v in report.violations],
    }


def render_text(report: LintReport) -> str:
    lines = [v.render() for v in report.violations]
    lines.append(
        f"reprolint: {len(report.violations)} finding(s), "
        f"{report.suppressed} suppressed, {report.files} file(s)")
    return "\n".join(lines)


def _list_rules() -> str:
    lines = []
    for rule in default_rules():
        lines.append(f"{rule.rule_id}  {rule.summary}")
    return "\n".join(lines)


def _render(report: LintReport, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(report_as_json(report), indent=2)
    if fmt == "sarif":
        return json.dumps(
            report_as_sarif(report, default_rules(), TOOL_VERSION),
            indent=2)
    return render_text(report)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Domain-specific static analysis for the "
                    "reproduction: tolerance discipline, "
                    "obliviousness, cache purity, seeding, "
                    "determinism, and the cross-module dataflow "
                    "rules (taint, seed provenance, resource "
                    "lifecycle, facade contracts).")
    parser.add_argument(
        "paths", nargs="*", default=list(_DEFAULT_PATHS),
        help="files or directories to lint (default: src benchmarks)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--output", default=None,
        help="write the report to this file (in --format) and print "
             "only the one-line summary to stdout")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="incremental analysis cache directory; unchanged files "
             "are served from it (stats go to stderr, the report is "
             "byte-identical either way)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro.lint: path(s) not found: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    report = run_paths(args.paths, default_rules(),
                       cache_dir=args.cache_dir)
    if args.cache_dir is not None:
        print(f"repro.lint: cache {args.cache_dir}: "
              f"{report.files_reused} reused, "
              f"{report.files_analyzed} analyzed",
              file=sys.stderr)
    if args.output is not None:
        rendered = _render(report, args.format)
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(render_text(report).splitlines()[-1])
    else:
        print(_render(report, args.format))
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
