"""Inline suppression of reprolint findings.

Syntax (a trailing comment on the flagged line, or a standalone
comment on the line directly above a flagged statement)::

    denom = 1e-300  # reprolint: disable=REP001 -- underflow guard, not a tolerance

    # reprolint: disable=REP003 -- singleton lifecycle, reset in tests
    global _store

Rules:

* the justification after ``--`` is **mandatory** — a suppression
  without one is itself reported (REP000) and does not silence
  anything;
* rule ids are comma-separated (``disable=REP001,REP004``);
* ``REP000`` (meta findings) cannot be suppressed;
* suppressions are line-scoped: a trailing comment covers its own
  line, a standalone comment covers the next line.  Multi-line
  statements are reported at their first line, so that is where the
  suppression goes.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.framework import Violation

__all__ = ["SuppressionTable", "parse_suppressions"]

_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$")

_RULE_ID = re.compile(r"^REP\d{3}$")


@dataclass
class SuppressionTable:
    """Per-line map of suppressed rule ids plus malformed entries."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: (line, message) pairs for malformed suppressions.
    malformed: list[tuple[int, str]] = field(default_factory=list)

    def is_suppressed(self, line: int, rule: str) -> bool:
        return rule in self.by_line.get(line, set())

    def problems(self, path: str) -> Iterator["Violation"]:
        from repro.lint.framework import META_RULE, Violation

        for line, message in self.malformed:
            yield Violation(path=path, line=line, col=0,
                            rule=META_RULE, message=message)


def _comment_tokens(source: str) -> Iterator[tuple[int, bool, str]]:
    """(line, is_standalone, text) for every comment token.

    Tokenizing (rather than scanning lines) keeps reprolint-looking
    text inside strings and docstrings from being treated as a
    suppression.
    """
    lines = source.splitlines()
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        line, col = tok.start
        before = lines[line - 1][:col] if line <= len(lines) else ""
        yield line, not before.strip(), tok.string


def parse_suppressions(source: str) -> SuppressionTable:
    """Scan ``source`` for ``# reprolint: disable=...`` comments."""
    table = SuppressionTable()
    for index, standalone, text in _comment_tokens(source):
        match = _PATTERN.search(text)
        if match is None:
            if "reprolint:" in text:
                table.malformed.append(
                    (index, "unparseable reprolint comment; expected "
                            "'# reprolint: disable=REPnnn -- reason'"))
            continue
        reason = match.group("reason")
        rules = [r.strip() for r in match.group("rules").split(",")
                 if r.strip()]
        bad = [r for r in rules if not _RULE_ID.match(r)]
        if bad:
            table.malformed.append(
                (index, f"unknown rule id(s) in suppression: "
                        f"{', '.join(sorted(bad))}"))
            continue
        if "REP000" in rules:
            table.malformed.append(
                (index, "REP000 (meta findings) cannot be suppressed"))
            continue
        if not reason:
            table.malformed.append(
                (index, "suppression requires a justification: append "
                        "' -- <why this is a false positive>'"))
            continue
        target = index + 1 if standalone else index
        table.by_line.setdefault(target, set()).update(rules)
    return table
