"""Forward taint analysis over the project IR.

The engine is generic: a :class:`TaintSpec` names source calls (whose
results carry a label), sink calls (where labelled values must not
arrive), sanitizers and transparent wrappers; the analysis then runs a
whole-project fixpoint over the function summaries built by
:mod:`repro.lint.project` and reports every sink reached by a
reportable label — including flows that cross call boundaries in
either direction.

Labels are small tuples.  Concrete labels name an origin
(``("clock", "time.monotonic")``); the placeholder ``("param", i)``
stands for "whatever the caller passes as parameter *i*" and is
translated through call sites by the fixpoint, which is what makes
the pass interprocedural: a callee that forwards parameter 2 into a
sink produces one ``param→sink`` fact, and every caller that passes a
concretely-labelled value in that position yields a finding *at the
call site*.

Deliberate imprecision (documented in ``docs/STATIC_ANALYSIS.md``):

* field-blind — attribute stores kill taint, attribute loads are
  clean;
* flow-insensitive within a function — assignments union rather than
  overwrite, so re-binding a name does not launder a label, at the
  cost of occasional false positives;
* unresolvable calls conservatively propagate the union of their
  argument labels to their result and never act as sinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.lint.project import (CallIR, ExprIR, FunctionInfo,
                                ModuleSummary, Project)

__all__ = [
    "Finding",
    "FunctionFacts",
    "SinkSpec",
    "TaintAnalysis",
    "TaintSpec",
    "call_graph",
    "reachable",
]

Label = tuple[str, ...]

_MAX_ROUNDS = 20
_MAX_LOCAL_PASSES = 8


@dataclass(frozen=True)
class SinkSpec:
    """One sink call: which arguments must stay label-free."""

    name: str  # short human name for messages
    all_args: bool = False
    arg_indices: frozenset[int] = frozenset()
    keywords: frozenset[str] = frozenset()
    #: Skip reporting an "arith" label when the argument expression is
    #: itself the arithmetic (a file-local rule already flags that).
    skip_direct_binop: bool = False


@dataclass(frozen=True)
class TaintSpec:
    """Configuration of one taint pass."""

    #: fully-qualified callee → concrete label its result carries
    sources: dict[str, Label] = field(default_factory=dict)
    #: trailing attribute name → label (``{"spawn": ("spawned",)}``)
    #: for methods on computed receivers
    tail_sources: dict[str, Label] = field(default_factory=dict)
    #: fully-qualified callee → sink description
    sinks: dict[str, SinkSpec] = field(default_factory=dict)
    #: calls that strip order-dependence labels from their arguments
    sanitizers: frozenset[str] = frozenset()
    #: calls whose result carries exactly its arguments' labels
    transparent: frozenset[str] = frozenset()
    #: calls whose result is always clean (``len``)
    killers: frozenset[str] = frozenset()
    #: add an ("arith",) label to binary-op expressions over names
    arithmetic_label: bool = False
    #: track set construction / iteration order labels
    set_labels: bool = False
    #: label kinds that constitute a finding when they reach a sink
    report_kinds: frozenset[str] = frozenset()

    def is_reportable(self, label: Label) -> bool:
        return bool(label) and label[0] in self.report_kinds


@dataclass(frozen=True)
class Finding:
    """One sink reached by a reportable label."""

    path: str
    line: int
    col: int
    sink: str
    label: Label
    #: callee the flow passed through, for call-site findings
    via: str | None = None


@dataclass
class FunctionFacts:
    """Interprocedural summary of one function."""

    returns: set[Label] = field(default_factory=set)
    #: param index → sink names its value reaches in the callee
    param_sink: dict[int, set[str]] = field(default_factory=dict)


FnKey = tuple[str, str]  # (module name, qualname)


def _param_offset(info: FunctionInfo) -> int:
    """1 for methods (``self``/``cls`` receives no argument)."""
    if info.params and info.params[0] in ("self", "cls"):
        return 1
    return 0


class TaintAnalysis:
    """One spec applied to one project."""

    def __init__(self, project: Project, spec: TaintSpec) -> None:
        self.project = project
        self.spec = spec
        self.facts: dict[FnKey, FunctionFacts] = {}
        self._hits: set[Finding] = set()
        for summary, info in project.iter_functions():
            self.facts[(summary.name, info.qualname)] = FunctionFacts()

    # -- public API ----------------------------------------------------
    def run(self) -> list[Finding]:
        """Fixpoint over all functions; returns sorted findings."""
        for _ in range(_MAX_ROUNDS):
            changed = False
            for summary, info in self.project.iter_functions():
                if self._analyze(summary, info):
                    changed = True
            if not changed:
                break
        return sorted(self._hits,
                      key=lambda f: (f.path, f.line, f.col, f.sink,
                                     f.label, f.via or ""))

    # -- per-function abstract interpretation --------------------------
    def _analyze(self, summary: ModuleSummary, info: FunctionInfo,
                 ) -> bool:
        key = (summary.name, info.qualname)
        facts = self.facts[key]
        before = (frozenset(facts.returns),
                  tuple(sorted((k, frozenset(v))
                               for k, v in facts.param_sink.items())),
                  len(self._hits))
        env: dict[str, set[Label]] = {}
        for index, name in enumerate(info.params):
            if name in ("self", "cls") and index == 0:
                continue
            env[name] = {("param", str(index))}
        for _ in range(_MAX_LOCAL_PASSES):
            snapshot = {name: set(labels) for name, labels in env.items()}
            for kind, targets, expr in info.ops:
                labels = self._eval_expr(summary, info, facts, env, expr)
                if kind == "iter":
                    labels = self._iteration_labels(labels, expr)
                if kind in ("assign", "iter"):
                    for target in targets:
                        env.setdefault(target, set()).update(labels)
                elif kind == "return":
                    facts.returns.update(labels)
            if env == snapshot:
                break
        after = (frozenset(facts.returns),
                 tuple(sorted((k, frozenset(v))
                              for k, v in facts.param_sink.items())),
                 len(self._hits))
        return before != after

    def _iteration_labels(self, labels: set[Label], expr: ExprIR,
                          ) -> set[Label]:
        """Iterating a set makes order-dependence concrete."""
        if not self.spec.set_labels:
            return labels
        if expr.isset or ("setval",) in labels:
            labels = {lab for lab in labels if lab != ("setval",)}
            labels.add(("hashorder", "set-iteration"))
        return labels

    def _eval_expr(self, summary: ModuleSummary, info: FunctionInfo,
                   facts: FunctionFacts, env: dict[str, set[Label]],
                   expr: ExprIR) -> set[Label]:
        labels: set[Label] = set()
        for name in expr.names:
            labels.update(env.get(name, ()))
        for call in expr.calls:
            labels.update(self._eval_call(summary, info, facts, env,
                                          call))
        if self.spec.arithmetic_label and expr.binop and \
                (expr.names or expr.calls):
            labels.add(("arith",))
        if self.spec.set_labels and expr.isset:
            labels.add(("setval",))
        return labels

    def _eval_call(self, summary: ModuleSummary, info: FunctionInfo,
                   facts: FunctionFacts, env: dict[str, set[Label]],
                   call: CallIR) -> set[Label]:
        spec = self.spec
        arg_labels = [self._eval_expr(summary, info, facts, env, arg)
                      for arg in call.args]
        kw_labels = [(name, self._eval_expr(summary, info, facts, env,
                                            value))
                     for name, value in call.keywords]
        merged: set[Label] = set()
        for labels in arg_labels:
            merged.update(labels)
        for _, labels in kw_labels:
            merged.update(labels)
        if call.recv is not None:
            merged.update(self._eval_expr(summary, info, facts, env,
                                          call.recv))
        # A method on a local variable propagates the receiver too
        # (``tainted.encode()`` stays tainted).
        receiver: set[Label] = set()
        if call.ref is not None and "." in call.ref:
            head = call.ref.split(".", 1)[0]
            receiver = env.get(head, set())
        merged.update(receiver)

        qualified = self.project.resolve_ref(summary, info, call.ref)
        if qualified in spec.sources:
            return {spec.sources[qualified]}
        tail = call.ref.rsplit(".", 1)[1] \
            if call.ref is not None and "." in call.ref else None
        if tail is not None and tail in spec.tail_sources:
            return {spec.tail_sources[tail]}
        if qualified in spec.killers:
            return set()
        if qualified in spec.sanitizers:
            return {lab for lab in merged
                    if lab[0] not in ("setval", "hashorder")}
        if qualified in spec.sinks:
            self._check_sink(summary, info, facts, spec.sinks[qualified],
                             call, arg_labels, kw_labels)
        if qualified in spec.transparent:
            return self._convert_set_labels(qualified, merged)
        resolved = self.project.function_for(qualified)
        if resolved is not None:
            return self._through_callee(summary, info, facts, call,
                                        arg_labels, kw_labels,
                                        resolved[0], resolved[1])
        if spec.set_labels and qualified in ("set", "frozenset"):
            merged.add(("setval",))
        return merged

    def _convert_set_labels(self, qualified: str | None,
                            labels: set[Label]) -> set[Label]:
        """``list(a_set)`` fixes an order: latent becomes concrete."""
        if self.spec.set_labels and qualified in ("list", "tuple") and \
                ("setval",) in labels:
            labels = {lab for lab in labels if lab != ("setval",)}
            labels.add(("hashorder", "set-order"))
        return labels

    # -- call boundary translation -------------------------------------
    def _labels_for_param(self, callee: FunctionInfo, param_index: int,
                          arg_labels: list[set[Label]],
                          kw_labels: list[tuple[str | None, set[Label]]],
                          ) -> set[Label]:
        offset = _param_offset(callee)
        positional = param_index - offset
        if 0 <= positional < len(arg_labels):
            return arg_labels[positional]
        if 0 <= param_index < len(callee.params):
            wanted = callee.params[param_index]
            for name, labels in kw_labels:
                if name == wanted:
                    return labels
        return set()

    def _through_callee(self, summary: ModuleSummary, info: FunctionInfo,
                        facts: FunctionFacts, call: CallIR,
                        arg_labels: list[set[Label]],
                        kw_labels: list[tuple[str | None, set[Label]]],
                        callee_summary: ModuleSummary,
                        callee: FunctionInfo) -> set[Label]:
        callee_facts = self.facts[(callee_summary.name, callee.qualname)]
        result: set[Label] = set()
        for label in callee_facts.returns:
            if label[0] == "param":
                result.update(self._labels_for_param(
                    callee, int(label[1]), arg_labels, kw_labels))
            else:
                result.add(label)
        for param_index in sorted(callee_facts.param_sink):
            sinks = callee_facts.param_sink[param_index]
            incoming = self._labels_for_param(callee, param_index,
                                              arg_labels, kw_labels)
            for label in incoming:
                if self.spec.is_reportable(label):
                    for sink in sorted(sinks):
                        self._hits.add(Finding(
                            path=summary.path, line=call.line,
                            col=call.col, sink=sink, label=label,
                            via=f"{callee_summary.name}."
                                f"{callee.qualname}"))
                elif label[0] == "param":
                    own = facts.param_sink.setdefault(int(label[1]),
                                                      set())
                    own.update(sinks)
        return result

    def _check_sink(self, summary: ModuleSummary, info: FunctionInfo,
                    facts: FunctionFacts, sink: SinkSpec, call: CallIR,
                    arg_labels: list[set[Label]],
                    kw_labels: list[tuple[str | None, set[Label]]],
                    ) -> None:
        checked: list[tuple[ExprIR, set[Label]]] = []
        for index, labels in enumerate(arg_labels):
            if sink.all_args or index in sink.arg_indices:
                checked.append((call.args[index], labels))
        for (name, labels), (_, value) in zip(kw_labels, call.keywords):
            if name is None:
                continue
            if sink.all_args or name in sink.keywords:
                checked.append((value, labels))
        for expr, labels in checked:
            for label in labels:
                if not self.spec.is_reportable(label):
                    if label[0] == "param":
                        own = facts.param_sink.setdefault(
                            int(label[1]), set())
                        own.add(sink.name)
                    continue
                if label == ("arith",) and sink.skip_direct_binop and \
                        expr.binop:
                    continue
                self._hits.add(Finding(
                    path=summary.path, line=call.line, col=call.col,
                    sink=sink.name, label=label, via=None))


# ---------------------------------------------------------------------------
# Call graph (for reachability-style rules)
# ---------------------------------------------------------------------------


def _iter_calls(expr: ExprIR) -> Iterable[CallIR]:
    for call in expr.calls:
        yield call
        for arg in call.args:
            yield from _iter_calls(arg)
        for _, value in call.keywords:
            yield from _iter_calls(value)
        if call.recv is not None:
            yield from _iter_calls(call.recv)


def call_graph(project: Project) -> dict[FnKey, set[FnKey]]:
    """Conservative project-internal call graph (resolved edges only)."""
    graph: dict[FnKey, set[FnKey]] = {}
    for summary, info in project.iter_functions():
        edges: set[FnKey] = set()
        for _, _, expr in info.ops:
            for call in _iter_calls(expr):
                qualified = project.resolve_ref(summary, info, call.ref)
                resolved = project.function_for(qualified)
                if resolved is not None:
                    edges.add((resolved[0].name, resolved[1].qualname))
        graph[(summary.name, info.qualname)] = edges
    return graph


def reachable(graph: dict[FnKey, set[FnKey]],
              roots: Iterable[FnKey]) -> set[FnKey]:
    """Transitive closure of ``roots`` over the call graph."""
    seen: set[FnKey] = set()
    frontier = [root for root in roots if root in graph]
    while frontier:
        key = frontier.pop()
        if key in seen:
            continue
        seen.add(key)
        for target in graph.get(key, ()):
            if target not in seen:
                frontier.append(target)
    return seen
