"""Incremental on-disk analysis cache for reprolint.

One JSON file (``analysis.json`` inside ``--cache-dir``) maps each
linted file's display path to the SHA-256 digest of its bytes plus
everything the driver computed from it: file-rule violations, the
suppression table, and the module summary used by the cross-module
pass.  On a warm run, files whose digest is unchanged are served from
the cache byte-identically; the project fixpoint still re-runs over
all (cached or fresh) summaries, which is how *dependents* of an
edited module are re-analyzed without being re-parsed.

The cache is keyed defensively: a global signature covering the cache
format version and the registered rule ids invalidates everything
when the linter itself changes.  Corrupt or mismatched caches are
ignored, never trusted — the cache can only make a run faster, not
change its output.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

__all__ = ["AnalysisCache", "file_digest"]

_CACHE_FORMAT = 2
_CACHE_FILENAME = "analysis.json"


def file_digest(data: bytes) -> str:
    """Content digest used as the per-file cache key."""
    return hashlib.sha256(data).hexdigest()


class AnalysisCache:
    """Digest-keyed per-file entries behind one atomic JSON file."""

    def __init__(self, cache_dir: Path, signature: str) -> None:
        self.path = cache_dir / _CACHE_FILENAME
        self.signature = signature
        self.entries: dict[str, dict[str, Any]] = {}
        self.reused = 0
        self.analyzed = 0
        self._dirty = False

    @classmethod
    def load(cls, cache_dir: str | Path, signature: str,
             ) -> "AnalysisCache":
        cache = cls(Path(cache_dir), signature)
        try:
            raw = cache.path.read_text(encoding="utf-8")
            payload = json.loads(raw)
        except (OSError, ValueError):
            return cache
        if not isinstance(payload, dict) or \
                payload.get("format") != _CACHE_FORMAT or \
                payload.get("signature") != signature:
            return cache
        entries = payload.get("entries")
        if isinstance(entries, dict):
            cache.entries = {
                path: entry for path, entry in entries.items()
                if isinstance(entry, dict) and "digest" in entry
            }
        return cache

    def get(self, display_path: str, digest: str,
            ) -> dict[str, Any] | None:
        """The cached entry for an unchanged file, else None."""
        entry = self.entries.get(display_path)
        if entry is not None and entry.get("digest") == digest:
            self.reused += 1
            return entry
        self.analyzed += 1
        return None

    def put(self, display_path: str, entry: dict[str, Any]) -> None:
        if self.entries.get(display_path) != entry:
            self.entries[display_path] = entry
            self._dirty = True

    def prune(self, live_paths: set[str]) -> None:
        """Drop entries for files that no longer exist in the walk."""
        stale = [path for path in self.entries if path not in live_paths]
        for path in stale:
            del self.entries[path]
            self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache (best-effort: failures are
        swallowed — a missing cache only costs the next run time)."""
        if not self._dirty:
            return
        payload = {
            "format": _CACHE_FORMAT,
            "signature": self.signature,
            "entries": {path: self.entries[path]
                        for path in sorted(self.entries)},
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_name(_CACHE_FILENAME + ".tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True),
                           encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            return
