"""Vertex sets of the polyhedra the paper works with.

All generators return lists of ``numpy`` 3-vectors centered at the
origin with circumradius ``radius`` (default 1), in the same standard
frame as the catalog groups of :mod:`repro.groups.catalog`:

* tetrahedron vertices on the cube diagonals ``(1,1,1), ...``;
* cube/octahedron aligned with the coordinate axes;
* icosahedron/dodecahedron in golden-ratio coordinates, matching
  :func:`repro.groups.catalog.icosahedral_group`.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import GeometryError
from repro.geometry.polygons import regular_polygon

__all__ = [
    "regular_tetrahedron",
    "cube",
    "regular_octahedron",
    "regular_dodecahedron",
    "regular_icosahedron",
    "cuboctahedron",
    "icosidodecahedron",
    "prism",
    "antiprism",
    "pyramid",
    "regular_polygon_pattern",
]

_PHI = (1.0 + np.sqrt(5.0)) / 2.0


def _scaled(points: list[np.ndarray], radius: float) -> list[np.ndarray]:
    if radius <= 0:
        raise GeometryError("circumradius must be positive")
    norm = float(np.linalg.norm(points[0]))
    return [radius * p / norm for p in points]


def regular_tetrahedron(radius: float = 1.0) -> list[np.ndarray]:
    """Regular tetrahedron (rotation group ``T``, vertices on 3-fold axes)."""
    pts = [np.array(v, dtype=float) for v in
           [(1, 1, 1), (1, -1, -1), (-1, 1, -1), (-1, -1, 1)]]
    return _scaled(pts, radius)


def cube(radius: float = 1.0) -> list[np.ndarray]:
    """Cube (rotation group ``O``; vertices occupy the 3-fold axes)."""
    pts = [np.array(v, dtype=float)
           for v in itertools.product((-1, 1), repeat=3)]
    return _scaled(pts, radius)


def regular_octahedron(radius: float = 1.0) -> list[np.ndarray]:
    """Regular octahedron (``O``; vertices occupy the 4-fold axes)."""
    pts = []
    for axis in range(3):
        for sign in (-1.0, 1.0):
            v = np.zeros(3)
            v[axis] = sign
            pts.append(v)
    return _scaled(pts, radius)


def regular_icosahedron(radius: float = 1.0) -> list[np.ndarray]:
    """Regular icosahedron (``I``; vertices occupy the 5-fold axes)."""
    pts = []
    for a, b in [(1.0, _PHI)]:
        for s1 in (-1, 1):
            for s2 in (-1, 1):
                pts.append(np.array([0.0, s1 * a, s2 * b]))
                pts.append(np.array([s1 * a, s2 * b, 0.0]))
                pts.append(np.array([s2 * b, 0.0, s1 * a]))
    return _scaled(pts, radius)


def regular_dodecahedron(radius: float = 1.0) -> list[np.ndarray]:
    """Regular dodecahedron (``I``; vertices occupy the 3-fold axes)."""
    pts = [np.array(v, dtype=float)
           for v in itertools.product((-1, 1), repeat=3)]
    inv = 1.0 / _PHI
    for s1 in (-1, 1):
        for s2 in (-1, 1):
            pts.append(np.array([0.0, s1 * inv, s2 * _PHI]))
            pts.append(np.array([s1 * inv, s2 * _PHI, 0.0]))
            pts.append(np.array([s2 * _PHI, 0.0, s1 * inv]))
    return _scaled(pts, radius)


def cuboctahedron(radius: float = 1.0) -> list[np.ndarray]:
    """Cuboctahedron (``O``; vertices occupy the 2-fold axes)."""
    pts = []
    for i, j in [(0, 1), (0, 2), (1, 2)]:
        for s1 in (-1, 1):
            for s2 in (-1, 1):
                v = np.zeros(3)
                v[i] = s1
                v[j] = s2
                pts.append(v)
    return _scaled(pts, radius)


def icosidodecahedron(radius: float = 1.0) -> list[np.ndarray]:
    """Icosidodecahedron (``I``; vertices occupy the 2-fold axes)."""
    pts = []
    for s in (-1, 1):
        pts.append(np.array([0.0, 0.0, s * _PHI]))
        pts.append(np.array([0.0, s * _PHI, 0.0]))
        pts.append(np.array([s * _PHI, 0.0, 0.0]))
    half = 0.5
    for s1 in (-1, 1):
        for s2 in (-1, 1):
            for s3 in (-1, 1):
                a, b, c = s1 * half, s2 * _PHI / 2.0, s3 * _PHI ** 2 / 2.0
                pts.append(np.array([a, b, c]))
                pts.append(np.array([b, c, a]))
                pts.append(np.array([c, a, b]))
    return _scaled(pts, radius)


def prism(l: int, radius: float = 1.0,
          height_ratio: float = 0.8) -> list[np.ndarray]:
    """Regular ``l``-gonal prism (rotation group ``D_l``).

    ``height_ratio`` is the half-height divided by the base polygon
    radius; it is kept away from the value that would turn a square
    prism into a cube (which would have group ``O``).
    """
    if l < 3:
        raise GeometryError("prism needs l >= 3")
    half_height = height_ratio
    base_r = 1.0
    pts = []
    for z in (-half_height, half_height):
        pts.extend(regular_polygon(l, radius=base_r, center=(0, 0, z)))
    return _scaled(pts, radius)


def antiprism(l: int, radius: float = 1.0,
              height_ratio: float = 0.8) -> list[np.ndarray]:
    """Regular ``l``-gonal antiprism (rotation group ``D_l``).

    The top base is twisted by ``pi / l`` relative to the bottom.
    """
    if l < 3:
        raise GeometryError("antiprism needs l >= 3")
    half_height = height_ratio
    pts = list(regular_polygon(l, radius=1.0, center=(0, 0, -half_height)))
    pts += regular_polygon(l, radius=1.0, center=(0, 0, half_height),
                           phase=np.pi / l)
    return _scaled(pts, radius)


def pyramid(k: int, radius: float = 1.0,
            apex_height: float = 1.0) -> list[np.ndarray]:
    """Right pyramid over a regular ``k``-gon (rotation group ``C_k``).

    The base polygon and the apex lie on a common sphere centered at
    the smallest-enclosing-ball center, scaled to ``radius``.
    """
    if k < 3:
        raise GeometryError("pyramid needs k >= 3")
    base = regular_polygon(k, radius=1.0, center=(0, 0, 0))
    apex = np.array([0.0, 0.0, apex_height])
    pts = base + [apex]
    arr = np.asarray(pts)
    # Center so the apex is distinguished but the set stays bounded.
    center = arr.mean(axis=0)
    pts = [p - center for p in pts]
    scale = max(float(np.linalg.norm(p)) for p in pts)
    return [radius * p / scale for p in pts]


def regular_polygon_pattern(k: int, radius: float = 1.0) -> list[np.ndarray]:
    """Regular ``k``-gon in the z = 0 plane (rotation group ``D_k``)."""
    if k < 3:
        raise GeometryError("regular polygon pattern needs k >= 3")
    return regular_polygon(k, radius=radius)
