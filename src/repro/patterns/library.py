"""Named patterns and composite configurations.

The library of point sets referenced by the paper's figures and by the
examples/benchmarks: the Figure 1 trio (cube, regular octagon, square
antiprism), the seven go-to-center polyhedra, and helpers to compose
multiple orbit shells at distinct radii (e.g. a cube plus a concentric
regular octahedron, Figure 26).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import GeometryError
from repro.patterns import polyhedra

__all__ = ["named_pattern", "pattern_names", "pattern_summary",
           "pattern_summaries", "compose_shells"]

_GENERATORS: dict[str, Callable[..., list[np.ndarray]]] = {
    "tetrahedron": polyhedra.regular_tetrahedron,
    "cube": polyhedra.cube,
    "octahedron": polyhedra.regular_octahedron,
    "dodecahedron": polyhedra.regular_dodecahedron,
    "icosahedron": polyhedra.regular_icosahedron,
    "cuboctahedron": polyhedra.cuboctahedron,
    "icosidodecahedron": polyhedra.icosidodecahedron,
    "octagon": lambda radius=1.0: polyhedra.regular_polygon_pattern(
        8, radius),
    "square_antiprism": lambda radius=1.0: polyhedra.antiprism(4, radius),
    "square": lambda radius=1.0: polyhedra.regular_polygon_pattern(4, radius),
    "triangle": lambda radius=1.0: polyhedra.regular_polygon_pattern(
        3, radius),
    "pentagonal_prism": lambda radius=1.0: polyhedra.prism(5, radius),
    "hexagonal_antiprism": lambda radius=1.0: polyhedra.antiprism(6, radius),
    "square_pyramid": lambda radius=1.0: polyhedra.pyramid(4, radius),
}


def pattern_names() -> list[str]:
    """Names accepted by :func:`named_pattern`."""
    return sorted(_GENERATORS)


def named_pattern(name: str, radius: float = 1.0) -> list[np.ndarray]:
    """A named point set from the library, scaled to ``radius``."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise GeometryError(
            f"unknown pattern {name!r}; known: {pattern_names()}") from None
    return generator(radius=radius)


def pattern_summary(name: str, radius: float = 1.0) -> dict:
    """Cardinality, ``γ(P)`` spec and congruence signature of a pattern.

    The summary is persisted in the L3 on-disk cache
    (:mod:`repro.perf.disk`, kind ``"pattern"``) keyed by the exact
    generated point bytes, so listing the library (``repro patterns``)
    skips every symmetry detection on a warm cache.
    """
    from repro.core.configuration import Configuration
    from repro.core.signatures import congruence_signature
    from repro.perf import disk as _disk
    from repro.perf.stats import exact_digest

    points = named_pattern(name, radius)
    arr = np.asarray(points, dtype=float)
    key = exact_digest(b"pattern", name, arr)
    cached = _disk.disk_get_object("pattern", key)
    if cached is not None:
        return dict(cached)
    config = Configuration(points)
    report = config.symmetry
    gamma = str(report.spec) if report.kind == "finite" else report.kind
    summary = {
        "name": name,
        "n": int(config.n),
        "gamma": gamma,
        "signature": congruence_signature(
            config.n, np.asarray(report.multiplicities, dtype=np.int64)),
    }
    _disk.disk_put_object("pattern", key, summary)
    return summary


def pattern_summaries(radius: float = 1.0) -> list[dict]:
    """:func:`pattern_summary` for every library pattern, sorted."""
    return [pattern_summary(name, radius) for name in pattern_names()]


def compose_shells(*shells: list[np.ndarray],
                   radii: list[float] | None = None) -> list[np.ndarray]:
    """Union of point sets placed on concentric shells.

    Each shell is rescaled to the corresponding radius (defaults to
    ``1, 1.5, 2, ...``) so shells never collide.  Useful for building
    composite configurations such as a cube plus a regular octahedron
    with a common center (Figure 26 of the paper).
    """
    if radii is None:
        radii = [1.0 + 0.5 * i for i in range(len(shells))]
    if len(radii) != len(shells):
        raise GeometryError("radii must match the number of shells")
    combined: list[np.ndarray] = []
    for shell, radius in zip(shells, radii):
        scale = max(float(np.linalg.norm(p)) for p in shell)
        if scale <= 0:
            raise GeometryError("shells must not contain the center")
        combined.extend(radius * np.asarray(p, dtype=float) / scale
                        for p in shell)
    return combined
