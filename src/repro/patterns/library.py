"""Named patterns and composite configurations.

The library of point sets referenced by the paper's figures and by the
examples/benchmarks: the Figure 1 trio (cube, regular octagon, square
antiprism), the seven go-to-center polyhedra, and helpers to compose
multiple orbit shells at distinct radii (e.g. a cube plus a concentric
regular octahedron, Figure 26).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import GeometryError
from repro.patterns import polyhedra

__all__ = ["named_pattern", "pattern_names", "compose_shells"]

_GENERATORS: dict[str, Callable[..., list[np.ndarray]]] = {
    "tetrahedron": polyhedra.regular_tetrahedron,
    "cube": polyhedra.cube,
    "octahedron": polyhedra.regular_octahedron,
    "dodecahedron": polyhedra.regular_dodecahedron,
    "icosahedron": polyhedra.regular_icosahedron,
    "cuboctahedron": polyhedra.cuboctahedron,
    "icosidodecahedron": polyhedra.icosidodecahedron,
    "octagon": lambda radius=1.0: polyhedra.regular_polygon_pattern(
        8, radius),
    "square_antiprism": lambda radius=1.0: polyhedra.antiprism(4, radius),
    "square": lambda radius=1.0: polyhedra.regular_polygon_pattern(4, radius),
    "triangle": lambda radius=1.0: polyhedra.regular_polygon_pattern(
        3, radius),
    "pentagonal_prism": lambda radius=1.0: polyhedra.prism(5, radius),
    "hexagonal_antiprism": lambda radius=1.0: polyhedra.antiprism(6, radius),
    "square_pyramid": lambda radius=1.0: polyhedra.pyramid(4, radius),
}


def pattern_names() -> list[str]:
    """Names accepted by :func:`named_pattern`."""
    return sorted(_GENERATORS)


def named_pattern(name: str, radius: float = 1.0) -> list[np.ndarray]:
    """A named point set from the library, scaled to ``radius``."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise GeometryError(
            f"unknown pattern {name!r}; known: {pattern_names()}") from None
    return generator(radius=radius)


def compose_shells(*shells: list[np.ndarray],
                   radii: list[float] | None = None) -> list[np.ndarray]:
    """Union of point sets placed on concentric shells.

    Each shell is rescaled to the corresponding radius (defaults to
    ``1, 1.5, 2, ...``) so shells never collide.  Useful for building
    composite configurations such as a cube plus a regular octahedron
    with a common center (Figure 26 of the paper).
    """
    if radii is None:
        radii = [1.0 + 0.5 * i for i in range(len(shells))]
    if len(radii) != len(shells):
        raise GeometryError("radii must match the number of shells")
    combined: list[np.ndarray] = []
    for shell, radius in zip(shells, radii):
        scale = max(float(np.linalg.norm(p)) for p in shell)
        if scale <= 0:
            raise GeometryError("shells must not contain the center")
        combined.extend(radius * np.asarray(p, dtype=float) / scale
                        for p in shell)
    return combined
