"""Transitive point sets ``U_{G,μ}`` (Table 2 of the paper).

``U_{G,μ}`` is the orbit of a seed point whose folding (stabilizer
size) in ``G`` is ``μ``; its cardinality is ``|G| / μ``.  The paper's
Table 2 lists the resulting polyhedra: e.g. ``U_{O,3}`` is a cube,
``U_{I,2}`` an icosidodecahedron.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GroupError
from repro.geometry.vectors import normalize
from repro.groups.group import GroupKind, RotationGroup

__all__ = ["seed_point_for_folding", "transitive_set", "generic_seed"]

# A fixed direction far from every axis of the catalog groups; used as
# the default seed for folding-1 (free) orbits.
_GENERIC_DIRECTION = np.array([0.2986524, 0.5470863, 0.7820215])


def generic_seed(group: RotationGroup, radius: float = 1.0) -> np.ndarray:
    """A point of folding 1 (off every axis of ``group``)."""
    candidate = normalize(_GENERIC_DIRECTION) * radius
    for attempt in range(64):
        if group.stabilizer_size(candidate) == 1:
            return candidate
        # Nudge deterministically until clear of all axes.
        candidate = normalize(candidate + np.array(
            [0.013 * (attempt + 1), 0.007, 0.019])) * radius
    raise GroupError("could not find a folding-1 seed point")


def seed_point_for_folding(group: RotationGroup, mu: int,
                           radius: float = 1.0) -> np.ndarray:
    """A seed point whose folding in ``group`` is exactly ``mu``.

    ``mu = |G|`` gives the center; ``mu = k`` gives a point on a
    ``k``-fold axis; ``mu = 1`` a generic point.  Raises if the group
    has no axis of fold ``mu``.
    """
    if mu == group.order:
        return np.zeros(3)
    if mu == 1:
        return generic_seed(group, radius)
    axes = group.axes_of_fold(mu)
    if not axes:
        raise GroupError(f"{group.spec} has no {mu}-fold axis")
    return normalize(axes[0].direction) * radius


def transitive_set(group: RotationGroup, mu: int | None = None,
                   seed=None, radius: float = 1.0) -> list[np.ndarray]:
    """The orbit ``U_{G,μ}`` of ``seed`` (or a canonical seed for μ).

    Exactly one of ``mu`` / ``seed`` must be provided.  The returned
    set has ``|G| / μ(seed)`` distinct points.
    """
    if (mu is None) == (seed is None):
        raise GroupError("provide exactly one of mu or seed")
    if seed is None:
        seed = seed_point_for_folding(group, mu, radius)
    return group.orbit(np.asarray(seed, dtype=float))
