"""Infinite rotation groups of collinear configurations.

When all points of ``P`` lie on a line through ``b(P)``, the rotation
group of ``P`` is infinite: ``C_∞`` (all rotations about the line) when
``P`` is asymmetric against ``b(P)``, and ``D_∞`` (additionally all
half-turns about perpendicular axes through ``b(P)``) when symmetric.
The paper mentions these cases in Section 3.1; finite-group machinery
does not apply, so the library flags them explicitly.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.geometry.tolerance import (
    AXIS_NORM_FLOOR,
    DEFAULT_TOL,
    Tolerance,
    canonical_round,
)

__all__ = ["InfiniteGroupKind", "detect_collinear_kind"]


class InfiniteGroupKind(enum.Enum):
    """The two infinite-order rotation groups of collinear sets."""

    C_INF = "C_inf"
    D_INF = "D_inf"


def detect_collinear_kind(rel_points, multiplicities,
                          tol: Tolerance = DEFAULT_TOL) -> InfiniteGroupKind:
    """Classify a collinear configuration given center-relative points.

    ``rel_points`` are the distinct points minus ``b(P)``;
    ``multiplicities`` their multiplicities.  The configuration is
    ``D_∞`` iff the multiset is invariant under ``p -> -p``.
    """
    scale = max((float(np.linalg.norm(p)) for p in rel_points), default=1.0)
    decimals = 6
    table: dict[tuple, int] = {}
    for p, m in zip(rel_points, multiplicities):
        key = tuple(canonical_round(np.asarray(p) / max(scale, AXIS_NORM_FLOOR),
                                    decimals).tolist())
        table[key] = table.get(key, 0) + m
    for p, m in zip(rel_points, multiplicities):
        key = tuple(canonical_round(-np.asarray(p) / max(scale, AXIS_NORM_FLOOR),
                                    decimals).tolist())
        if table.get(key, 0) != m:
            return InfiniteGroupKind.C_INF
    return InfiniteGroupKind.D_INF
