"""Detection of the rotation group ``γ(P)`` of a point (multi)set.

Definition 1/3 of the paper: ``γ(P)`` is the rotation group in the
five families that acts on ``P`` (preserving multiplicities) and none
of whose proper supergroups does.  All rotation axes pass through the
center ``b(P)`` of the smallest enclosing ball.

The detector enumerates *all* rotations preserving ``P``:

1. translate so ``b(P)`` is the origin and bucket distinct points into
   shells by (radius, multiplicity);
2. pick the most constrained shell; every symmetry permutes it;
3. a rotation is determined by the images of two independent points,
   so candidate rotations come from mapping a fixed reference pair
   onto compatible pairs; each candidate is verified on the full
   multiset;
4. the verified rotations form the group, which is then classified.

Degenerate inputs (all points coincident, collinear configurations
with their infinite groups) are reported explicitly.

The inner loops are batched: the distinct points live in one ``(m, 3)``
array, all candidate rotations are generated and applied with a single
einsum, and the tolerant nearest-neighbour matching that verifies each
candidate runs through one k-d tree query per batch instead of a
per-point Python scan.  A cheap probe pass over the most constrained
shell rejects most wrong candidates before the full-multiset check.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import DetectionError
from repro.geometry.balls import smallest_enclosing_ball
from repro.geometry.tolerance import AXIS_NORM_FLOOR, DEFAULT_TOL, Tolerance
from repro.groups.axes import RotationAxis
from repro.groups.group import RotationGroup, GroupSpec, GroupKind, element_key
from repro.groups.infinite import InfiniteGroupKind, detect_collinear_kind
from repro.geometry.rotations import rotation_about_axis

__all__ = ["SymmetryReport", "detect_rotation_group", "align_rotation"]

# Cap on the number of (candidate, point) products held in memory at
# once while verifying candidate rotations; batches are chunked to it.
_VERIFY_BLOCK = 2_000_000


@dataclass
class SymmetryReport:
    """Result of symmetry detection on a point multiset.

    Attributes
    ----------
    kind:
        ``"finite"`` for the five families, ``"collinear"`` when all
        points lie on a line through the center (infinite group),
        ``"degenerate"`` when all points coincide.
    group:
        The concrete :class:`RotationGroup` (finite case only), with
        per-axis ``occupied`` flags filled in.
    center:
        ``b(P)``, center of the smallest enclosing ball.
    radius:
        ``rad(B(P))``.
    infinite_kind:
        For collinear configurations, whether the group is ``C_∞`` or
        ``D_∞``.
    line_direction:
        For collinear configurations, a unit vector along the line.
    center_occupied:
        True when a point of ``P`` sits exactly at the center.
    distinct_points / multiplicities:
        The support of the multiset and the multiplicity of each
        support point (parallel lists).
    """

    kind: str
    center: np.ndarray
    radius: float
    group: RotationGroup | None = None
    infinite_kind: InfiniteGroupKind | None = None
    line_direction: np.ndarray | None = None
    center_occupied: bool = False
    distinct_points: list = field(default_factory=list)
    multiplicities: list = field(default_factory=list)

    @property
    def spec(self) -> GroupSpec | None:
        """Group type, or None for non-finite cases."""
        return self.group.spec if self.group is not None else None

    @property
    def has_multiplicity(self) -> bool:
        """True if some point of ``P`` is occupied by several robots."""
        return any(m > 1 for m in self.multiplicities)


def _collapse_multiset(points, slack: float):
    """Distinct points with multiplicities (tolerant clustering).

    Pairs within ``slack`` are found with one k-d tree range query and
    merged by union-find (each cluster keeps its first point as the
    representative, matching the historical sequential clustering for
    the well-separated clusters the model admits).
    """
    pts = np.asarray(points, dtype=float).reshape(-1, 3)
    n = len(pts)
    pairs = cKDTree(pts).query_pairs(slack, output_type="ndarray")
    if pairs.size == 0:
        return pts.copy(), np.ones(n, dtype=np.int64)

    parent = np.arange(n)

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    for i, j in pairs:
        ri, rj = find(int(i)), find(int(j))
        if ri != rj:
            # Union by min index: the representative stays the first
            # point of the cluster in input order.
            if ri < rj:
                parent[rj] = ri
            else:
                parent[ri] = rj
    roots = np.fromiter((find(k) for k in range(n)), dtype=np.int64,
                        count=n)
    reps, counts = np.unique(roots, return_counts=True)
    return pts[reps].copy(), counts.astype(np.int64)


@dataclass
class _Prepared:
    """Shared precomputation for detection and the congruence cache."""

    ball: object
    slack: float
    distinct: np.ndarray
    mults: np.ndarray
    rel: np.ndarray
    radii: np.ndarray


def _prepare_multiset(points, tol: Tolerance, ball=None) -> _Prepared:
    """Enclosing ball, distinct support, and center-relative geometry."""
    pts = np.asarray([np.asarray(p, dtype=float) for p in points],
                     dtype=float)
    if pts.size == 0:
        raise DetectionError("cannot detect symmetry of an empty set")
    if ball is None:
        ball = smallest_enclosing_ball(list(pts), tol)
    slack = tol.geometric_slack(ball.radius)
    distinct, mults = _collapse_multiset(pts, slack)
    rel = distinct - ball.center
    radii = np.linalg.norm(rel, axis=1)
    return _Prepared(ball=ball, slack=slack, distinct=distinct,
                     mults=mults, rel=rel, radii=radii)


def _base_report(pre: _Prepared, tol: Tolerance) -> SymmetryReport:
    """Report with the kind decided; the finite group not yet computed."""
    report = SymmetryReport(
        kind="finite", center=pre.ball.center, radius=pre.ball.radius,
        distinct_points=list(pre.distinct),
        multiplicities=[int(m) for m in pre.mults])
    report.center_occupied = bool((pre.radii <= pre.slack).any())

    if bool((pre.radii <= pre.slack).all()):
        report.kind = "degenerate"
        return report

    line = _common_line(pre.rel, pre.radii, pre.slack)
    if line is not None:
        report.kind = "collinear"
        report.line_direction = line
        report.infinite_kind = detect_collinear_kind(
            list(pre.rel), list(pre.mults), tol)
    return report


def _finish_finite_report(report: SymmetryReport, pre: _Prepared,
                          tol: Tolerance) -> SymmetryReport:
    """Run the full finite-group detection and attach it to ``report``."""
    scale = max(pre.ball.radius, 1.0)
    elements = _symmetry_rotations(pre.rel, pre.mults, pre.radii,
                                   pre.slack, scale)
    group = RotationGroup(elements, tol=tol)
    group.axes = [
        axis.with_occupied(_axis_occupied(axis, pre.rel, pre.radii,
                                          pre.slack,
                                          report.center_occupied))
        for axis in group.axes
    ]
    report.group = group
    return report


def detect_rotation_group(points, tol: Tolerance = DEFAULT_TOL,
                          ball=None) -> SymmetryReport:
    """Compute ``γ(P)`` and related symmetry data for a point multiset.

    See the module docstring for the strategy.  The returned report's
    group has ``occupied`` flags set on every axis (an axis is occupied
    when its line contains a point of ``P``; a point at the center
    occupies every axis).  ``ball`` lets callers that already hold the
    smallest enclosing ball skip recomputing it.
    """
    pre = _prepare_multiset(points, tol, ball)
    report = _base_report(pre, tol)
    if report.kind != "finite":
        return report
    return _finish_finite_report(report, pre, tol)


def _common_line(rel, radii, slack: float) -> np.ndarray | None:
    """Unit direction if all points lie on one line through the origin."""
    off = radii > slack
    if not off.any():
        return None
    first = int(np.argmax(off))
    direction = rel[first] / radii[first]
    perp = np.linalg.norm(np.cross(direction, rel[off]), axis=1)
    if bool((perp > slack * 10).any()):
        return None
    return direction


def _axis_occupied(axis: RotationAxis, rel, radii, slack: float,
                   center_occupied: bool) -> bool:
    """True if the axis line contains a point of the configuration."""
    if center_occupied:
        return True
    perp = np.linalg.norm(np.cross(axis.direction, rel), axis=1)
    return bool(((radii > slack) & (perp <= 10 * slack)).any())


def _shells(radii, mults, slack: float) -> list[np.ndarray]:
    """Indices of distinct points grouped by (radius, multiplicity).

    Off-center points are sorted by (multiplicity, radius) and split
    where the multiplicity changes or the radius gap exceeds the shell
    tolerance — equivalent to the sequential bucketing for the
    well-separated shells the model admits.
    """
    idx = np.nonzero(radii > slack)[0]
    if idx.size == 0:
        return []
    order = np.lexsort((radii[idx], mults[idx]))
    idx = idx[order]
    r_sorted = radii[idx]
    m_sorted = mults[idx]
    breaks = np.nonzero((np.diff(r_sorted) > 10 * slack)
                        | (np.diff(m_sorted) != 0))[0] + 1
    return [np.asarray(g) for g in np.split(idx, breaks)]


class _BatchVerifier:
    """Batched check that candidate rotations preserve the multiset.

    A rotation preserves ``P`` when the image of every distinct point
    lands (within ``check_slack``) on a distinct point of equal
    multiplicity.  Images of a whole batch of candidates are produced
    by one einsum and matched with one k-d tree query; a probe pass
    over the most constrained shell cheaply rejects bad candidates
    before the full check.
    """

    def __init__(self, rel, mults, check_slack: float,
                 probe: np.ndarray | None = None) -> None:
        self.rel = rel
        self.mults = mults
        self.check_slack = check_slack
        self.tree = cKDTree(rel)
        self.probe = probe if probe is not None and len(probe) < len(rel) \
            else None

    def _check(self, rots: np.ndarray, subset) -> np.ndarray:
        points = self.rel if subset is None else self.rel[subset]
        mults = self.mults if subset is None else self.mults[subset]
        count, m = len(rots), len(points)
        ok = np.zeros(count, dtype=bool)
        block = max(1, _VERIFY_BLOCK // max(m, 1))
        for start in range(0, count, block):
            chunk = rots[start:start + block]
            images = np.einsum("cij,mj->cmi", chunk, points)
            dist, idx = self.tree.query(
                images.reshape(-1, 3), k=1,
                distance_upper_bound=self.check_slack
                * (1.0 + DEFAULT_TOL.coincidence_slack(1.0)))
            dist = dist.reshape(len(chunk), m)
            idx = idx.reshape(len(chunk), m)
            good = dist <= self.check_slack
            safe = np.where(good, idx, 0)
            good &= self.mults[safe] == mults[None, :]
            ok[start:start + len(chunk)] = good.all(axis=1)
        return ok

    def __call__(self, rots) -> np.ndarray:
        rots = np.asarray(rots, dtype=float).reshape(-1, 3, 3)
        if len(rots) == 0:
            return np.zeros(0, dtype=bool)
        if self.probe is not None and len(rots) > 1:
            mask = self._check(rots, self.probe)
            result = np.zeros(len(rots), dtype=bool)
            if mask.any():
                result[mask] = self._check(rots[mask], None)
            return result
        return self._check(rots, None)

    def preserves(self, rot) -> bool:
        """Scalar convenience wrapper."""
        return bool(self(np.asarray(rot)[None])[0])


def _symmetry_rotations(rel, mults, radii, slack: float,
                        scale: float) -> list[np.ndarray]:
    """All rotations about the origin preserving the multiset."""
    check_slack = 20 * slack

    shells = _shells(radii, mults, slack)
    if not shells:
        raise DetectionError("no off-center points in finite detection")
    shells.sort(key=len)
    anchor_shell = shells[0]
    verifier = _BatchVerifier(rel, mults, check_slack, probe=anchor_shell)
    p1 = rel[anchor_shell[0]]
    r1 = float(radii[anchor_shell[0]])

    if len(anchor_shell) == 1:
        return _cyclic_about_fixed_point(p1, rel, radii, mults, slack,
                                         verifier)

    # Second reference: not parallel to p1; prefer the anchor shell.
    p2_index = second_shell = None
    for shell in [anchor_shell] + shells[1:]:
        norms = np.linalg.norm(np.cross(p1, rel[shell]), axis=1)
        independent = np.nonzero(norms > check_slack * r1)[0]
        if independent.size:
            p2_index = int(shell[independent[0]])
            second_shell = shell
            break
    if p2_index is None:
        raise DetectionError("configuration unexpectedly collinear")
    p2 = rel[p2_index]
    r2 = float(radii[p2_index])
    dot12 = float(np.dot(p1, p2))
    threshold = check_slack * max(
        1.0, r1 * r2 / max(scale, AXIS_NORM_FLOOR)) * scale

    # Candidate images: anchor-shell × second-shell pairs whose inner
    # product matches the reference pair's (rotations preserve it).
    first_points = rel[anchor_shell]
    second_points = rel[second_shell]
    dots = first_points @ second_points.T
    ii, jj = np.nonzero(np.abs(dots - dot12) <= threshold)
    candidates = _rotations_from_pairs(p1, p2, first_points[ii],
                                       second_points[jj])

    elements: dict[tuple, np.ndarray] = {}
    identity = np.eye(3)
    elements[element_key(identity)] = identity
    if len(candidates):
        # Dedupe candidates on the same rounded key used for group
        # elements, then batch-verify the survivors.
        keys = np.round(candidates.reshape(len(candidates), 9), 5) + 0.0
        _, first_of = np.unique(keys, axis=0, return_index=True)
        unique = candidates[np.sort(first_of)]
        verified = verifier(unique)
        for rot, good in zip(unique, verified):
            if not good:
                continue
            key = element_key(rot)
            if key not in elements:
                elements[key] = rot
    return list(elements.values())


def _cyclic_about_fixed_point(p1, rel, radii, mults, slack, verifier):
    """All symmetries fix ``p1``: the group is cyclic about its axis."""
    axis = p1 / float(np.linalg.norm(p1))
    off = np.linalg.norm(np.cross(axis, rel), axis=1) > 10 * slack
    off_counts = [int(off[shell].sum()) for shell in
                  _shells(radii, mults, slack) if off[shell].any()]
    bound = math.gcd(*off_counts) if off_counts else 1
    elements = [np.eye(3)]
    for k in range(bound, 1, -1):
        if bound % k != 0:
            continue
        rot = rotation_about_axis(axis, 2.0 * np.pi / k)
        if verifier.preserves(rot):
            for i in range(1, k):
                elements.append(rotation_about_axis(
                    axis, 2.0 * np.pi * i / k))
            break
    return elements


def _rotations_from_pairs(p1, p2, q1s, q2s) -> np.ndarray:
    """Rotations with ``R p1 = q1`` and ``R p2 = q2``, batched.

    Degenerate image pairs (parallel within float noise) are dropped;
    the result is a ``(k, 3, 3)`` stack.
    """
    n_p = np.cross(p1, p2)
    ln_p = float(np.linalg.norm(n_p))
    frame_p = _orthoframe(p1, n_p)
    if ln_p < AXIS_NORM_FLOOR or frame_p is None:
        return np.zeros((0, 3, 3))
    q1s = np.asarray(q1s, dtype=float).reshape(-1, 3)
    q2s = np.asarray(q2s, dtype=float).reshape(-1, 3)
    n_q = np.cross(q1s, q2s)
    ln_q = np.linalg.norm(n_q, axis=1)
    l_q1 = np.linalg.norm(q1s, axis=1)
    valid = (ln_q >= AXIS_NORM_FLOOR) & (l_q1 >= AXIS_NORM_FLOOR)
    if not valid.any():
        return np.zeros((0, 3, 3))
    e0 = q1s[valid] / l_q1[valid, None]
    e2 = n_q[valid] / ln_q[valid, None]
    e1 = np.cross(e2, e0)
    frames_q = np.stack([e0, e1, e2], axis=2)
    return frames_q @ frame_p.T


def _orthoframe(x, n) -> np.ndarray | None:
    lx = float(np.linalg.norm(x))
    ln = float(np.linalg.norm(n))
    if lx < AXIS_NORM_FLOOR or ln < AXIS_NORM_FLOOR:
        return None
    e0 = x / lx
    e2 = n / ln
    e1 = np.cross(e2, e0)
    return np.column_stack([e0, e1, e2])


def align_rotation(src_rel, src_mults, src_radii,
                   dst_rel, dst_mults, dst_radii,
                   slack: float, scale: float = 1.0) -> np.ndarray | None:
    """A rotation ``R`` with ``R · src ≈ dst`` as multisets, or None.

    Both point sets are given relative to their centers (distinct
    points with parallel multiplicity arrays).  Candidates come from
    mapping a reference pair of ``src`` onto compatible pairs of
    ``dst`` — same pair-generation and batched verification as
    :func:`detect_rotation_group`, so a returned rotation is certified
    on the whole multiset.  The congruence cache uses this to re-align
    a stored canonical symmetry report onto a congruent query.
    """
    src_rel = np.asarray(src_rel, dtype=float).reshape(-1, 3)
    dst_rel = np.asarray(dst_rel, dtype=float).reshape(-1, 3)
    src_mults = np.asarray(src_mults, dtype=np.int64)
    dst_mults = np.asarray(dst_mults, dtype=np.int64)
    if len(src_rel) != len(dst_rel):
        return None
    check_slack = 20 * slack

    shells = _shells(src_radii, src_mults, slack)
    if not shells:
        return None
    shells.sort(key=len)
    anchor = shells[0]
    p1 = src_rel[anchor[0]]
    r1 = float(src_radii[anchor[0]])
    p2_index = None
    for shell in [anchor] + shells[1:]:
        norms = np.linalg.norm(np.cross(p1, src_rel[shell]), axis=1)
        independent = np.nonzero(norms > check_slack * r1)[0]
        if independent.size:
            p2_index = int(shell[independent[0]])
            break
    if p2_index is None:
        return None  # collinear sources have no finite alignment here
    p2 = src_rel[p2_index]
    r2 = float(src_radii[p2_index])
    dot12 = float(np.dot(p1, p2))
    mult1 = int(src_mults[anchor[0]])
    mult2 = int(src_mults[p2_index])

    q1_mask = (np.abs(dst_radii - r1) <= 20 * slack) & (dst_mults == mult1)
    q2_mask = (np.abs(dst_radii - r2) <= 20 * slack) & (dst_mults == mult2)
    if not q1_mask.any() or not q2_mask.any():
        return None
    q1s = dst_rel[q1_mask]
    q2s = dst_rel[q2_mask]
    dots = q1s @ q2s.T
    threshold = check_slack * max(
        1.0, r1 * r2 / max(scale, AXIS_NORM_FLOOR)) * scale
    ii, jj = np.nonzero(np.abs(dots - dot12) <= threshold)
    if ii.size == 0:
        return None
    candidates = _rotations_from_pairs(p1, p2, q1s[ii], q2s[jj])
    if not len(candidates):
        return None

    tree = cKDTree(dst_rel)
    m = len(src_rel)
    block = max(1, _VERIFY_BLOCK // max(m, 1))
    for start in range(0, len(candidates), block):
        chunk = candidates[start:start + block]
        images = np.einsum("cij,mj->cmi", chunk, src_rel)
        dist, idx = tree.query(
            images.reshape(-1, 3), k=1,
            distance_upper_bound=check_slack
            * (1.0 + DEFAULT_TOL.coincidence_slack(1.0)))
        dist = dist.reshape(len(chunk), m)
        idx = idx.reshape(len(chunk), m)
        good = dist <= check_slack
        safe = np.where(good, idx, 0)
        good &= dst_mults[safe] == src_mults[None, :]
        hits = np.nonzero(good.all(axis=1))[0]
        if hits.size:
            return np.asarray(chunk[int(hits[0])])
    return None
