"""Detection of the rotation group ``γ(P)`` of a point (multi)set.

Definition 1/3 of the paper: ``γ(P)`` is the rotation group in the
five families that acts on ``P`` (preserving multiplicities) and none
of whose proper supergroups does.  All rotation axes pass through the
center ``b(P)`` of the smallest enclosing ball.

The detector enumerates *all* rotations preserving ``P``:

1. translate so ``b(P)`` is the origin and bucket distinct points into
   shells by (radius, multiplicity);
2. pick the most constrained shell; every symmetry permutes it;
3. a rotation is determined by the images of two independent points,
   so candidate rotations come from mapping a fixed reference pair
   onto compatible pairs; each candidate is verified on the full
   multiset;
4. the verified rotations form the group, which is then classified.

Degenerate inputs (all points coincident, collinear configurations
with their infinite groups) are reported explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DetectionError
from repro.geometry.balls import smallest_enclosing_ball
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance
from repro.groups.axes import RotationAxis
from repro.groups.group import RotationGroup, GroupSpec, GroupKind
from repro.groups.infinite import InfiniteGroupKind, detect_collinear_kind
from repro.geometry.rotations import rotation_about_axis

__all__ = ["SymmetryReport", "detect_rotation_group"]


@dataclass
class SymmetryReport:
    """Result of symmetry detection on a point multiset.

    Attributes
    ----------
    kind:
        ``"finite"`` for the five families, ``"collinear"`` when all
        points lie on a line through the center (infinite group),
        ``"degenerate"`` when all points coincide.
    group:
        The concrete :class:`RotationGroup` (finite case only), with
        per-axis ``occupied`` flags filled in.
    center:
        ``b(P)``, center of the smallest enclosing ball.
    radius:
        ``rad(B(P))``.
    infinite_kind:
        For collinear configurations, whether the group is ``C_∞`` or
        ``D_∞``.
    line_direction:
        For collinear configurations, a unit vector along the line.
    center_occupied:
        True when a point of ``P`` sits exactly at the center.
    distinct_points / multiplicities:
        The support of the multiset and the multiplicity of each
        support point (parallel lists).
    """

    kind: str
    center: np.ndarray
    radius: float
    group: RotationGroup | None = None
    infinite_kind: InfiniteGroupKind | None = None
    line_direction: np.ndarray | None = None
    center_occupied: bool = False
    distinct_points: list = field(default_factory=list)
    multiplicities: list = field(default_factory=list)

    @property
    def spec(self) -> GroupSpec | None:
        """Group type, or None for non-finite cases."""
        return self.group.spec if self.group is not None else None

    @property
    def has_multiplicity(self) -> bool:
        """True if some point of ``P`` is occupied by several robots."""
        return any(m > 1 for m in self.multiplicities)


class _PointIndex:
    """Grid hash of a point multiset supporting tolerant lookups."""

    def __init__(self, points, multiplicities, cell: float) -> None:
        self.cell = cell
        self.table: dict[tuple, list[tuple[np.ndarray, int]]] = {}
        for p, m in zip(points, multiplicities):
            key = self._key(p)
            self.table.setdefault(key, []).append((np.asarray(p, float), m))

    def _key(self, p) -> tuple:
        arr = np.asarray(p, dtype=float)
        return tuple(int(math.floor(c / self.cell)) for c in arr)

    def find(self, p, slack: float) -> tuple[np.ndarray, int] | None:
        """Nearest stored point within ``slack`` plus its multiplicity."""
        base = self._key(p)
        best = None
        best_d = None
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    key = (base[0] + dx, base[1] + dy, base[2] + dz)
                    for stored, mult in self.table.get(key, ()):
                        d = float(np.linalg.norm(stored - np.asarray(p)))
                        if d <= slack and (best_d is None or d < best_d):
                            best = (stored, mult)
                            best_d = d
        return best


def _collapse_multiset(points, slack: float):
    """Distinct points with multiplicities (tolerant clustering)."""
    distinct: list[np.ndarray] = []
    multiplicities: list[int] = []
    for p in points:
        arr = np.asarray(p, dtype=float)
        matched = False
        for i, q in enumerate(distinct):
            if float(np.linalg.norm(arr - q)) <= slack:
                multiplicities[i] += 1
                matched = True
                break
        if not matched:
            distinct.append(arr)
            multiplicities.append(1)
    return distinct, multiplicities


def detect_rotation_group(points, tol: Tolerance = DEFAULT_TOL
                          ) -> SymmetryReport:
    """Compute ``γ(P)`` and related symmetry data for a point multiset.

    See the module docstring for the strategy.  The returned report's
    group has ``occupied`` flags set on every axis (an axis is occupied
    when its line contains a point of ``P``; a point at the center
    occupies every axis).
    """
    pts = [np.asarray(p, dtype=float) for p in points]
    if not pts:
        raise DetectionError("cannot detect symmetry of an empty set")
    ball = smallest_enclosing_ball(pts, tol)
    center = ball.center
    scale = max(ball.radius, 1.0)
    slack = 1e-6 * scale
    distinct, mults = _collapse_multiset(pts, slack)
    rel = [p - center for p in distinct]
    radii = [float(np.linalg.norm(r)) for r in rel]

    report = SymmetryReport(
        kind="finite", center=center, radius=ball.radius,
        distinct_points=distinct, multiplicities=mults)
    report.center_occupied = any(r <= slack for r in radii)

    if all(r <= slack for r in radii):
        report.kind = "degenerate"
        return report

    line = _common_line(rel, radii, slack)
    if line is not None:
        report.kind = "collinear"
        report.line_direction = line
        report.infinite_kind = detect_collinear_kind(rel, mults, tol)
        return report

    elements = _symmetry_rotations(rel, mults, radii, slack, scale)
    group = RotationGroup(elements, tol=tol)
    group.axes = [
        axis.with_occupied(_axis_occupied(axis, rel, radii, slack,
                                          report.center_occupied))
        for axis in group.axes
    ]
    report.group = group
    return report


def _common_line(rel, radii, slack: float) -> np.ndarray | None:
    """Unit direction if all points lie on one line through the origin."""
    direction = None
    for r, rad in zip(rel, radii):
        if rad <= slack:
            continue
        if direction is None:
            direction = r / rad
            continue
        if np.linalg.norm(np.cross(direction, r)) > slack * 10:
            return None
    return direction


def _axis_occupied(axis: RotationAxis, rel, radii, slack: float,
                   center_occupied: bool) -> bool:
    """True if the axis line contains a point of the configuration."""
    if center_occupied:
        return True
    for r, rad in zip(rel, radii):
        if rad <= slack:
            continue
        perp = float(np.linalg.norm(np.cross(axis.direction, r)))
        if perp <= 10 * slack:
            return True
    return False


def _shells(rel, radii, mults, slack: float) -> list[list[int]]:
    """Indices of distinct points grouped by (radius, multiplicity)."""
    buckets: list[tuple[float, int, list[int]]] = []
    for i, (rad, m) in enumerate(zip(radii, mults)):
        if rad <= slack:
            continue  # center point constrains nothing
        placed = False
        for brad, bm, idxs in buckets:
            if abs(brad - rad) <= 10 * slack and bm == m:
                idxs.append(i)
                placed = True
                break
        if not placed:
            buckets.append((rad, m, [i]))
    return [idxs for _, _, idxs in buckets]


def _symmetry_rotations(rel, mults, radii, slack: float,
                        scale: float) -> list[np.ndarray]:
    """All rotations about the origin preserving the multiset."""
    index = _PointIndex(rel, mults, cell=max(20 * slack, 1e-9))
    check_slack = 20 * slack

    def preserves(rot: np.ndarray) -> bool:
        for p, m in zip(rel, mults):
            hit = index.find(rot @ p, check_slack)
            if hit is None or hit[1] != m:
                return False
        return True

    shells = _shells(rel, radii, mults, slack)
    if not shells:
        raise DetectionError("no off-center points in finite detection")
    shells.sort(key=len)
    anchor_shell = shells[0]
    p1 = rel[anchor_shell[0]]
    r1 = float(np.linalg.norm(p1))

    if len(anchor_shell) == 1:
        return _cyclic_about_fixed_point(p1, rel, radii, mults, slack,
                                         preserves)

    # Second reference: not parallel to p1; prefer the anchor shell.
    p2 = None
    for shell in [anchor_shell] + shells[1:]:
        for idx in shell:
            cand = rel[idx]
            if np.linalg.norm(np.cross(p1, cand)) > check_slack * r1:
                p2 = cand
                break
        if p2 is not None:
            second_shell = shell
            break
    if p2 is None:
        raise DetectionError("configuration unexpectedly collinear")
    r2 = float(np.linalg.norm(p2))
    dot12 = float(np.dot(p1, p2))

    elements: dict[tuple, np.ndarray] = {}
    from repro.groups.group import element_key

    identity = np.eye(3)
    elements[element_key(identity)] = identity
    for i in anchor_shell:
        q1 = rel[i]
        for j in second_shell:
            q2 = rel[j]
            if abs(float(np.dot(q1, q2)) - dot12) > check_slack * max(
                    1.0, r1 * r2 / max(scale, 1e-12)) * scale:
                continue
            rot = _rotation_from_pairs(p1, p2, q1, q2)
            if rot is None:
                continue
            key = element_key(rot)
            if key in elements:
                continue
            if preserves(rot):
                elements[key] = rot
    return list(elements.values())


def _cyclic_about_fixed_point(p1, rel, radii, mults, slack, preserves):
    """All symmetries fix ``p1``: the group is cyclic about its axis."""
    axis = p1 / float(np.linalg.norm(p1))
    off_counts = []
    shell_map = _shells(rel, radii, mults, slack)
    for shell in shell_map:
        off = 0
        for idx in shell:
            perp = float(np.linalg.norm(np.cross(axis, rel[idx])))
            if perp > 10 * slack:
                off += 1
        if off:
            off_counts.append(off)
    bound = math.gcd(*off_counts) if off_counts else 1
    elements = [np.eye(3)]
    for k in range(bound, 1, -1):
        if bound % k != 0:
            continue
        rot = rotation_about_axis(axis, 2.0 * np.pi / k)
        if preserves(rot):
            for i in range(1, k):
                elements.append(rotation_about_axis(
                    axis, 2.0 * np.pi * i / k))
            break
    return elements


def _rotation_from_pairs(p1, p2, q1, q2) -> np.ndarray | None:
    """Rotation with ``R p1 = q1`` and ``R p2 = q2``, if one exists."""
    n_p = np.cross(p1, p2)
    n_q = np.cross(q1, q2)
    ln_p = float(np.linalg.norm(n_p))
    ln_q = float(np.linalg.norm(n_q))
    if ln_p < 1e-12 or ln_q < 1e-12:
        return None
    frame_p = _orthoframe(p1, n_p)
    frame_q = _orthoframe(q1, n_q)
    if frame_p is None or frame_q is None:
        return None
    return frame_q @ frame_p.T


def _orthoframe(x, n) -> np.ndarray | None:
    lx = float(np.linalg.norm(x))
    ln = float(np.linalg.norm(n))
    if lx < 1e-12 or ln < 1e-12:
        return None
    e0 = x / lx
    e2 = n / ln
    e1 = np.cross(e2, e0)
    return np.column_stack([e0, e1, e2])
