"""Detection of the rotation group ``γ(P)`` of a point (multi)set.

Definition 1/3 of the paper: ``γ(P)`` is the rotation group in the
five families that acts on ``P`` (preserving multiplicities) and none
of whose proper supergroups does.  All rotation axes pass through the
center ``b(P)`` of the smallest enclosing ball.

The detector enumerates *all* rotations preserving ``P``:

1. translate so ``b(P)`` is the origin and bucket distinct points into
   shells by (radius, multiplicity);
2. pick the most constrained shell; every symmetry permutes it;
3. a rotation is determined by the images of two independent points,
   so candidate rotations come from mapping a fixed reference pair
   onto compatible pairs; each candidate is verified on the full
   multiset;
4. the verified rotations form the group, which is then classified.

Degenerate inputs (all points coincident, collinear configurations
with their infinite groups) are reported explicitly.

The inner loops are batched: the distinct points live in one ``(m, 3)``
array, all candidate rotations are generated and applied with a single
einsum, and the tolerant nearest-neighbour matching that verifies each
candidate runs through one k-d tree query per batch instead of a
per-point Python scan.  A cheap probe pass over the most constrained
shell rejects most wrong candidates before the full-multiset check.

Array work routes through the pluggable backend protocol
(:func:`repro.backend.get_backend`): einsum contractions, lexsorts and
nearest-neighbour queries are backend calls, so the detector runs
unchanged on the NumPy reference backend and on the optional
accelerator backends.  Two large-``n`` regimes get dedicated paths
that the small-``n`` (oracle-pinned) workloads never enter: candidate
pair generation switches from the dense ``s1 × s2`` dot matrix to
k-d ball queries around a *nearest* reference pair
(:func:`_pruned_pairs`), and verification of large candidate sets
proceeds by generators plus group closure
(:func:`_verify_by_closure`) instead of checking every candidate
against the full multiset.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field

import numpy as np

from repro.backend import get_backend
from repro.errors import DetectionError
from repro.geometry.balls import smallest_enclosing_ball
from repro.geometry.tolerance import AXIS_NORM_FLOOR, DEFAULT_TOL, Tolerance
from repro.groups.axes import RotationAxis
from repro.groups.group import (
    RotationGroup,
    GroupSpec,
    GroupKind,
    batch_rotation_angles,
    element_key,
)
from repro.groups.infinite import InfiniteGroupKind, detect_collinear_kind
from repro.geometry.rotations import rotation_about_axis

__all__ = ["SymmetryReport", "detect_rotation_group", "align_rotation"]

# Cap on the number of (candidate, point) products held in memory at
# once while verifying candidate rotations; batches are chunked to it.
_VERIFY_BLOCK = 2_000_000

# Above this many anchor-shell × second-shell pairs, candidate
# generation leaves the dense dot-matrix path (which is kept
# bit-identical below the limit — every oracle-pinned workload stays
# dense) for the k-d pruned path.
_DENSE_PAIR_LIMIT = 262_144

# Candidate sets up to this size are batch-verified one by one (the
# historical, bit-stable path); larger sets use generator + closure
# verification.
_SMALL_CANDIDATES = 512

# Budgets of the large-``n`` paths; blowing either falls back to the
# exhaustive (memory-bounded) computation, never to a wrong answer.
_CLOSURE_CHECK_BUDGET = 64
_CLOSURE_PRODUCT_LIMIT = 1_000_000
_CLOSURE_FOLD_CAP = 65_536

# Largest probe subset the batched verifier uses for its cheap
# rejection pass; the probe is a necessary condition only, so the cap
# never changes a verdict.
_PROBE_CAP = 64


@dataclass
class SymmetryReport:
    """Result of symmetry detection on a point multiset.

    Attributes
    ----------
    kind:
        ``"finite"`` for the five families, ``"collinear"`` when all
        points lie on a line through the center (infinite group),
        ``"degenerate"`` when all points coincide.
    group:
        The concrete :class:`RotationGroup` (finite case only), with
        per-axis ``occupied`` flags filled in.
    center:
        ``b(P)``, center of the smallest enclosing ball.
    radius:
        ``rad(B(P))``.
    infinite_kind:
        For collinear configurations, whether the group is ``C_∞`` or
        ``D_∞``.
    line_direction:
        For collinear configurations, a unit vector along the line.
    center_occupied:
        True when a point of ``P`` sits exactly at the center.
    distinct_points / multiplicities:
        The support of the multiset and the multiplicity of each
        support point (parallel lists).
    """

    kind: str
    center: np.ndarray
    radius: float
    group: RotationGroup | None = None
    infinite_kind: InfiniteGroupKind | None = None
    line_direction: np.ndarray | None = None
    center_occupied: bool = False
    distinct_points: list = field(default_factory=list)
    multiplicities: list = field(default_factory=list)

    @property
    def spec(self) -> GroupSpec | None:
        """Group type, or None for non-finite cases."""
        return self.group.spec if self.group is not None else None

    @property
    def has_multiplicity(self) -> bool:
        """True if some point of ``P`` is occupied by several robots."""
        return any(m > 1 for m in self.multiplicities)


def _collapse_multiset(points, slack: float):
    """Distinct points with multiplicities (tolerant clustering).

    Pairs within ``slack`` are found with one k-d tree range query and
    merged by union-find (each cluster keeps its first point as the
    representative, matching the historical sequential clustering for
    the well-separated clusters the model admits).
    """
    pts = np.asarray(points, dtype=float).reshape(-1, 3)
    n = len(pts)
    pairs = get_backend().neighbor_index(pts).query_pairs(slack)
    if pairs.size == 0:
        return pts.copy(), np.ones(n, dtype=np.int64)

    parent = np.arange(n)

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    for i, j in pairs:
        ri, rj = find(int(i)), find(int(j))
        if ri != rj:
            # Union by min index: the representative stays the first
            # point of the cluster in input order.
            if ri < rj:
                parent[rj] = ri
            else:
                parent[ri] = rj
    roots = np.fromiter((find(k) for k in range(n)), dtype=np.int64,
                        count=n)
    reps, counts = np.unique(roots, return_counts=True)
    return pts[reps].copy(), counts.astype(np.int64)


@dataclass
class _Prepared:
    """Shared precomputation for detection and the congruence cache."""

    ball: object
    slack: float
    distinct: np.ndarray
    mults: np.ndarray
    rel: np.ndarray
    radii: np.ndarray


def _prepare_multiset(points, tol: Tolerance, ball=None) -> _Prepared:
    """Enclosing ball, distinct support, and center-relative geometry."""
    pts = np.asarray([np.asarray(p, dtype=float) for p in points],
                     dtype=float)
    if pts.size == 0:
        raise DetectionError("cannot detect symmetry of an empty set")
    if ball is None:
        ball = smallest_enclosing_ball(list(pts), tol)
    slack = tol.geometric_slack(ball.radius)
    distinct, mults = _collapse_multiset(pts, slack)
    rel = distinct - ball.center
    radii = np.linalg.norm(rel, axis=1)
    return _Prepared(ball=ball, slack=slack, distinct=distinct,
                     mults=mults, rel=rel, radii=radii)


def _base_report(pre: _Prepared, tol: Tolerance) -> SymmetryReport:
    """Report with the kind decided; the finite group not yet computed."""
    report = SymmetryReport(
        kind="finite", center=pre.ball.center, radius=pre.ball.radius,
        distinct_points=list(pre.distinct),
        multiplicities=[int(m) for m in pre.mults])
    report.center_occupied = bool((pre.radii <= pre.slack).any())

    if bool((pre.radii <= pre.slack).all()):
        report.kind = "degenerate"
        return report

    line = _common_line(pre.rel, pre.radii, pre.slack)
    if line is not None:
        report.kind = "collinear"
        report.line_direction = line
        report.infinite_kind = detect_collinear_kind(
            list(pre.rel), list(pre.mults), tol)
    return report


def _finish_finite_report(report: SymmetryReport, pre: _Prepared,
                          tol: Tolerance) -> SymmetryReport:
    """Run the full finite-group detection and attach it to ``report``."""
    scale = max(pre.ball.radius, 1.0)
    elements = _symmetry_rotations(pre.rel, pre.mults, pre.radii,
                                   pre.slack, scale)
    group = RotationGroup(elements, tol=tol)
    occupied = _axes_occupied(group.axes, pre.rel, pre.radii, pre.slack,
                              report.center_occupied)
    group.axes = [axis.with_occupied(flag)
                  for axis, flag in zip(group.axes, occupied)]
    report.group = group
    return report


def detect_rotation_group(points, tol: Tolerance = DEFAULT_TOL,
                          ball=None) -> SymmetryReport:
    """Compute ``γ(P)`` and related symmetry data for a point multiset.

    See the module docstring for the strategy.  The returned report's
    group has ``occupied`` flags set on every axis (an axis is occupied
    when its line contains a point of ``P``; a point at the center
    occupies every axis).  ``ball`` lets callers that already hold the
    smallest enclosing ball skip recomputing it.
    """
    pre = _prepare_multiset(points, tol, ball)
    report = _base_report(pre, tol)
    if report.kind != "finite":
        return report
    return _finish_finite_report(report, pre, tol)


def _common_line(rel, radii, slack: float) -> np.ndarray | None:
    """Unit direction if all points lie on one line through the origin."""
    off = radii > slack
    if not off.any():
        return None
    first = int(np.argmax(off))
    direction = rel[first] / radii[first]
    perp = np.linalg.norm(np.cross(direction, rel[off]), axis=1)
    if bool((perp > slack * 10).any()):
        return None
    return direction


def _axis_occupied(axis: RotationAxis, rel, radii, slack: float,
                   center_occupied: bool) -> bool:
    """True if the axis line contains a point of the configuration."""
    if center_occupied:
        return True
    perp = np.linalg.norm(np.cross(axis.direction, rel), axis=1)
    return bool(((radii > slack) & (perp <= 10 * slack)).any())


def _axes_occupied(axes: list[RotationAxis], rel, radii, slack: float,
                   center_occupied: bool) -> list[bool]:
    """Occupied flags for a whole axis list, chunk-batched.

    Elementwise identical to calling :func:`_axis_occupied` per axis
    (same cross products, same comparisons), but the cross products of
    all (axis, point) pairs are taken in memory-bounded blocks — for a
    ``D_n`` group at large ``n`` the per-axis loop is quadratic.
    """
    if center_occupied:
        return [True] * len(axes)
    if not axes:
        return []
    off = radii > slack
    pts = rel[off]
    if len(pts) == 0:
        return [False] * len(axes)
    dirs = np.stack([axis.direction for axis in axes])
    flags = np.zeros(len(axes), dtype=bool)
    block = max(1, _VERIFY_BLOCK // len(pts))
    large = len(dirs) * len(pts) > _DENSE_PAIR_LIMIT
    if large:
        # |u × p|² = |p|² − (u·p)² for unit u: one matmul per block
        # instead of materializing all cross products.  Gated to the
        # large regime so small (oracle-pinned) inputs keep the
        # elementwise path bit-for-bit.
        norms_sq = np.sum(pts * pts, axis=1)
        bound_sq = (10 * slack) ** 2
    for start in range(0, len(dirs), block):
        chunk = dirs[start:start + block]
        if large:
            dots = chunk @ pts.T
            perp_sq = norms_sq[None, :] - dots * dots
            flags[start:start + len(chunk)] = \
                (perp_sq <= bound_sq).any(axis=1)
        else:
            cross = np.cross(chunk[:, None, :], pts[None, :, :])
            perp = np.linalg.norm(cross, axis=2)
            flags[start:start + len(chunk)] = \
                (perp <= 10 * slack).any(axis=1)
    return [bool(flag) for flag in flags]


def _shell_slices(radii, mults, slack: float) -> tuple[np.ndarray,
                                                       np.ndarray]:
    """Off-center points bucketed by (radius, multiplicity), as slices.

    Returns ``(idx_sorted, bounds)``: shell ``k`` is
    ``idx_sorted[bounds[k]:bounds[k + 1]]``.  Points are sorted by
    (multiplicity, radius) and split where the multiplicity changes or
    the radius gap exceeds the shell tolerance — equivalent to the
    sequential bucketing for the well-separated shells the model
    admits, without materializing one array per shell (a generic cloud
    has ~``m`` singleton shells).
    """
    idx = np.nonzero(radii > slack)[0]
    if idx.size == 0:
        return idx, np.zeros(1, dtype=np.int64)
    order = get_backend().lexsort((radii[idx], mults[idx]))
    idx = idx[order]
    r_sorted = radii[idx]
    m_sorted = mults[idx]
    breaks = np.nonzero((np.diff(r_sorted) > 10 * slack)
                        | (np.diff(m_sorted) != 0))[0] + 1
    bounds = np.concatenate((np.zeros(1, dtype=np.int64), breaks,
                             np.asarray([idx.size], dtype=np.int64)))
    return idx, bounds


def _shells(radii, mults, slack: float) -> list[np.ndarray]:
    """Indices of distinct points grouped by (radius, multiplicity)."""
    idx_sorted, bounds = _shell_slices(radii, mults, slack)
    if idx_sorted.size == 0:
        return []
    return [idx_sorted[bounds[k]:bounds[k + 1]]
            for k in range(len(bounds) - 1)]


class _BatchVerifier:
    """Batched check that candidate rotations preserve the multiset.

    A rotation preserves ``P`` when the image of every distinct point
    lands (within ``check_slack``) on a distinct point of equal
    multiplicity.  Images of a whole batch of candidates are produced
    by one einsum and matched with one k-d tree query; a probe pass
    over the most constrained shell cheaply rejects bad candidates
    before the full check.
    """

    def __init__(self, rel, mults, check_slack: float,
                 probe: np.ndarray | None = None) -> None:
        self.rel = rel
        self.mults = mults
        self.check_slack = check_slack
        self.backend = get_backend()
        self.tree = self.backend.neighbor_index(rel)
        # The probe is a necessary-condition prefilter (every probe
        # point must land on an equal-multiplicity point), so any
        # subset yields identical final verdicts; capping its size
        # keeps the cheap pass cheap when the most constrained shell
        # is itself large.
        if probe is not None and len(probe) > _PROBE_CAP:
            probe = probe[:_PROBE_CAP]
        self.probe = probe if probe is not None and len(probe) < len(rel) \
            else None

    def _check(self, rots: np.ndarray, subset) -> np.ndarray:
        points = self.rel if subset is None else self.rel[subset]
        mults = self.mults if subset is None else self.mults[subset]
        count, m = len(rots), len(points)
        ok = np.zeros(count, dtype=bool)
        block = max(1, _VERIFY_BLOCK // max(m, 1))
        for start in range(0, count, block):
            chunk = rots[start:start + block]
            images = self.backend.einsum("cij,mj->cmi", chunk, points)
            dist, idx = self.tree.query(
                images.reshape(-1, 3), k=1,
                distance_upper_bound=self.check_slack
                * (1.0 + DEFAULT_TOL.coincidence_slack(1.0)))
            dist = dist.reshape(len(chunk), m)
            idx = idx.reshape(len(chunk), m)
            good = dist <= self.check_slack
            safe = np.where(good, idx, 0)
            good &= self.mults[safe] == mults[None, :]
            ok[start:start + len(chunk)] = good.all(axis=1)
        return ok

    def __call__(self, rots) -> np.ndarray:
        rots = np.asarray(rots, dtype=float).reshape(-1, 3, 3)
        if len(rots) == 0:
            return np.zeros(0, dtype=bool)
        if self.probe is not None and len(rots) > 1:
            mask = self._check(rots, self.probe)
            result = np.zeros(len(rots), dtype=bool)
            if mask.any():
                result[mask] = self._check(rots[mask], None)
            return result
        return self._check(rots, None)

    def probe_pass(self, rots) -> np.ndarray:
        """The cheap necessary-condition mask (full check still due)."""
        rots = np.asarray(rots, dtype=float).reshape(-1, 3, 3)
        if self.probe is None or len(rots) == 0:
            return np.ones(len(rots), dtype=bool)
        return self._check(rots, self.probe)

    def preserves(self, rot) -> bool:
        """Scalar convenience wrapper."""
        return bool(self(np.asarray(rot)[None])[0])


def _symmetry_rotations(rel, mults, radii, slack: float,
                        scale: float) -> list[np.ndarray]:
    """All rotations about the origin preserving the multiset."""
    check_slack = 20 * slack

    idx_sorted, bounds = _shell_slices(radii, mults, slack)
    if idx_sorted.size == 0:
        raise DetectionError("no off-center points in finite detection")
    sizes = np.diff(bounds)
    # Stable size-ascending shell order; reproduces the historical
    # ``shells.sort(key=len)`` (Python sorts are stable).
    by_size = sorted(range(len(sizes)), key=lambda k: int(sizes[k]))

    def shell(k: int) -> np.ndarray:
        return idx_sorted[bounds[k]:bounds[k + 1]]

    anchor_shell = shell(by_size[0])
    verifier = _BatchVerifier(rel, mults, check_slack, probe=anchor_shell)
    p1 = rel[anchor_shell[0]]
    r1 = float(radii[anchor_shell[0]])

    if len(anchor_shell) == 1:
        return _cyclic_about_fixed_point(p1, rel, radii, mults, slack,
                                         verifier)

    # Second reference: not parallel to p1; prefer the anchor shell.
    p2_index = second_shell = None
    for k in by_size:
        members = shell(k)
        norms = np.linalg.norm(np.cross(p1, rel[members]), axis=1)
        independent = np.nonzero(norms > check_slack * r1)[0]
        if independent.size:
            p2_index = int(members[independent[0]])
            second_shell = members
            break
    if p2_index is None:
        raise DetectionError("configuration unexpectedly collinear")

    dense = len(anchor_shell) * len(second_shell) <= _DENSE_PAIR_LIMIT
    if not dense:
        # Large shells: re-pick p2 as the nearest independent point to
        # p1 — a short reference pair keeps the pruning balls small —
        # and generate candidate pairs through the k-d tree.
        p2_index = _nearest_independent(p1, r1, p2_index, rel,
                                        idx_sorted, check_slack)
        second_shell = shell(_shell_of(p2_index, idx_sorted, bounds))
    p2 = rel[p2_index]
    r2 = float(radii[p2_index])
    dot12 = float(np.dot(p1, p2))
    threshold = check_slack * max(
        1.0, r1 * r2 / max(scale, AXIS_NORM_FLOOR)) * scale

    # Candidate images: anchor-shell × second-shell pairs whose inner
    # product matches the reference pair's (rotations preserve it).
    first_points = rel[anchor_shell]
    second_points = rel[second_shell]
    if dense:
        dots = first_points @ second_points.T
        ii, jj = np.nonzero(np.abs(dots - dot12) <= threshold)
        q1s, q2s = first_points[ii], second_points[jj]
    else:
        q1s, q2s = _pruned_pairs(rel, radii, anchor_shell, second_shell,
                                 dot12, threshold)
    candidates = _rotations_from_pairs(p1, p2, q1s, q2s)

    elements: dict[tuple, np.ndarray] = {}
    identity = np.eye(3)
    elements[element_key(identity)] = identity
    if len(candidates):
        # Dedupe candidates on the same rounded key used for group
        # elements, then verify the survivors.
        keys = np.round(candidates.reshape(len(candidates), 9), 5) + 0.0
        _, first_of = np.unique(keys, axis=0, return_index=True)
        unique = candidates[np.sort(first_of)]
        if len(unique) <= _SMALL_CANDIDATES:
            verified = verifier(unique)
            for rot, good in zip(unique, verified):
                if not good:
                    continue
                key = element_key(rot)
                if key not in elements:
                    elements[key] = rot
        else:
            _verify_by_closure(unique, verifier, elements)
    return list(elements.values())


def _nearest_independent(p1, r1: float, fallback: int, rel, idx_sorted,
                         check_slack: float) -> int:
    """Off-center point nearest to ``p1`` and independent of it.

    Any independent point works as the second reference — every
    symmetry maps its shell onto itself — so the pruned path picks the
    nearest one: a short reference pair means a small separation bound
    and therefore small ball queries in :func:`_pruned_pairs`.
    """
    norms = np.linalg.norm(np.cross(p1, rel[idx_sorted]), axis=1)
    independent = norms > check_slack * r1
    if not independent.any():
        return fallback
    cand = idx_sorted[independent]
    dists = np.linalg.norm(rel[cand] - p1, axis=1)
    return int(cand[int(np.argmin(dists))])


def _shell_of(index: int, idx_sorted, bounds) -> int:
    """Shell number (into ``bounds``) holding a distinct-point index."""
    pos = int(np.nonzero(idx_sorted == index)[0][0])
    return int(np.searchsorted(bounds, pos, side="right") - 1)


def _pruned_pairs(rel, radii, anchor_shell, second_shell, dot12: float,
                  threshold: float):
    """Candidate ``(q1, q2)`` image pairs via ball queries.

    A rotation maps the reference pair onto a pair with the same inner
    product, so ``⟨q1, q2⟩ ≥ dot12 − threshold`` bounds the separation
    ``‖q1 − q2‖²  ≤ r1max² + r2max² − 2(dot12 − threshold)`` — valid
    partners of ``q1`` lie inside that ball.  The exact dense predicate
    is re-applied to the retrieved superset, so the surviving pairs
    coincide with the dense path's.  A retrieval budget guards
    adversarial geometry; blowing it falls back to the blocked dense
    sweep, never to a wrong answer.
    """
    backend = get_backend()
    first_points = rel[anchor_shell]
    second_points = rel[second_shell]
    r1max = float(radii[anchor_shell].max())
    r2max = float(radii[second_shell].max())
    sep_sq = r1max * r1max + r2max * r2max - 2.0 * (dot12 - threshold)
    if sep_sq <= 0.0:
        return _dense_pairs_blocked(first_points, second_points, dot12,
                                    threshold)
    radius = math.sqrt(sep_sq) * (1.0 + AXIS_NORM_FLOOR)
    tree = backend.neighbor_index(second_points)
    hits = tree.query_ball(first_points, radius)
    counts = [len(h) for h in hits]
    total = sum(counts)
    if total > 64 * len(first_points) + 65_536:
        return _dense_pairs_blocked(first_points, second_points, dot12,
                                    threshold)
    if total == 0:
        return np.zeros((0, 3)), np.zeros((0, 3))
    ii = np.repeat(np.arange(len(first_points)), counts)
    jj = np.concatenate([np.asarray(h, dtype=np.int64) for h in hits
                         if len(h)])
    q1s = first_points[ii]
    q2s = second_points[jj]
    dots = backend.einsum("ij,ij->i", q1s, q2s)
    keep = np.abs(dots - dot12) <= threshold
    return q1s[keep], q2s[keep]


def _dense_pairs_blocked(first_points, second_points, dot12: float,
                         threshold: float):
    """The dense pair predicate in memory-bounded blocks."""
    n2 = len(second_points)
    block = max(1, _VERIFY_BLOCK // max(n2, 1))
    parts_i, parts_j = [], []
    for start in range(0, len(first_points), block):
        chunk = first_points[start:start + block]
        dots = chunk @ second_points.T
        ii, jj = np.nonzero(np.abs(dots - dot12) <= threshold)
        parts_i.append(chunk[ii])
        parts_j.append(second_points[jj])
    if not parts_i:
        return np.zeros((0, 3)), np.zeros((0, 3))
    return np.concatenate(parts_i), np.concatenate(parts_j)


def _absorb(elements: dict, rot: np.ndarray) -> None:
    """Close ``elements`` under a newly verified rotation.

    Products of symmetries are symmetries, so everything added here is
    certified without touching the multiset: the powers of ``rot``
    (which absorb its whole cyclic subgroup) and one round of products
    with the already-verified elements.  Both expansions are capped —
    the caps only cost extra individual checks later, never soundness.
    """
    key = element_key(rot)
    if key in elements:
        return
    elements[key] = rot
    # Powers of the new element (they absorb its whole cyclic
    # subgroup).  Built from the axis-angle form, not a multiply
    # chain: repeated multiplication accumulates angle drift that,
    # once a power lands near a half turn, pushes the classifier's
    # axis extraction off the principal line.  Half turns themselves
    # need no expansion (their square is the identity).
    w = np.array([rot[2, 1] - rot[1, 2],
                  rot[0, 2] - rot[2, 0],
                  rot[1, 0] - rot[0, 1]])
    twice_sin = float(np.linalg.norm(w))
    if twice_sin > AXIS_NORM_FLOOR:
        axis = w / twice_sin
        theta = math.atan2(0.5 * twice_sin,
                           0.5 * (float(np.trace(rot)) - 1.0))
        for k in range(2, _CLOSURE_FOLD_CAP + 2):
            power = rotation_about_axis(axis, k * theta)
            pkey = element_key(power)
            if pkey in elements:
                break
            elements[pkey] = power
    existing = list(elements.values())
    if 2 * len(existing) > _CLOSURE_PRODUCT_LIMIT:
        return
    for g in existing:
        for h in (g @ rot, rot @ g):
            hkey = element_key(h)
            if hkey not in elements:
                elements[hkey] = h


def _verify_by_closure(candidates: np.ndarray, verifier: _BatchVerifier,
                       elements: dict) -> None:
    """Verify a large candidate set via generators plus closure.

    Candidates are processed in ascending rotation-angle order: the
    smallest verified angle about the principal axis generates its
    whole cyclic subgroup, so one full-multiset check absorbs most of
    the remaining candidates through :func:`_absorb`.  The cheap
    probe prefilter runs over the whole set first so the budgeted
    full checks are spent on plausible generators, not on spurious
    small-angle candidates.  Whatever survives the budget unabsorbed
    is batch-verified wholesale, so the budget bounds time, not
    correctness.
    """
    angles = batch_rotation_angles(candidates)
    order = get_backend().argsort(angles)
    plausible = verifier.probe_pass(candidates)
    checks = 0
    leftover = []
    for pos in order:
        if not plausible[int(pos)]:
            continue
        rot = candidates[int(pos)]
        if element_key(rot) in elements:
            continue
        if checks >= _CLOSURE_CHECK_BUDGET:
            leftover.append(rot)
            continue
        checks += 1
        if verifier.preserves(rot):
            _absorb(elements, rot)
    remaining = [rot for rot in leftover
                 if element_key(rot) not in elements]
    if remaining:
        stack = np.stack(remaining)
        for rot, good in zip(stack, verifier(stack)):
            if good:
                _absorb(elements, rot)


def _cyclic_about_fixed_point(p1, rel, radii, mults, slack, verifier):
    """All symmetries fix ``p1``: the group is cyclic about its axis."""
    axis = p1 / float(np.linalg.norm(p1))
    off = np.linalg.norm(np.cross(axis, rel), axis=1) > 10 * slack
    idx_sorted, bounds = _shell_slices(radii, mults, slack)
    if idx_sorted.size:
        shell_sums = np.add.reduceat(off[idx_sorted].astype(np.int64),
                                     bounds[:-1])
        off_counts = [int(s) for s in shell_sums if s > 0]
    else:
        off_counts = []
    bound = math.gcd(*off_counts) if off_counts else 1
    elements = [np.eye(3)]
    for k in range(bound, 1, -1):
        if bound % k != 0:
            continue
        rot = rotation_about_axis(axis, 2.0 * np.pi / k)
        if verifier.preserves(rot):
            for i in range(1, k):
                elements.append(rotation_about_axis(
                    axis, 2.0 * np.pi * i / k))
            break
    return elements


def _rotations_from_pairs(p1, p2, q1s, q2s) -> np.ndarray:
    """Rotations with ``R p1 = q1`` and ``R p2 = q2``, batched.

    Degenerate image pairs (parallel within float noise) are dropped;
    the result is a ``(k, 3, 3)`` stack.
    """
    n_p = np.cross(p1, p2)
    ln_p = float(np.linalg.norm(n_p))
    frame_p = _orthoframe(p1, n_p)
    if ln_p < AXIS_NORM_FLOOR or frame_p is None:
        return np.zeros((0, 3, 3))
    q1s = np.asarray(q1s, dtype=float).reshape(-1, 3)
    q2s = np.asarray(q2s, dtype=float).reshape(-1, 3)
    n_q = np.cross(q1s, q2s)
    ln_q = np.linalg.norm(n_q, axis=1)
    l_q1 = np.linalg.norm(q1s, axis=1)
    valid = (ln_q >= AXIS_NORM_FLOOR) & (l_q1 >= AXIS_NORM_FLOOR)
    if not valid.any():
        return np.zeros((0, 3, 3))
    e0 = q1s[valid] / l_q1[valid, None]
    e2 = n_q[valid] / ln_q[valid, None]
    e1 = np.cross(e2, e0)
    frames_q = np.stack([e0, e1, e2], axis=2)
    return frames_q @ frame_p.T


def _orthoframe(x, n) -> np.ndarray | None:
    lx = float(np.linalg.norm(x))
    ln = float(np.linalg.norm(n))
    if lx < AXIS_NORM_FLOOR or ln < AXIS_NORM_FLOOR:
        return None
    e0 = x / lx
    e2 = n / ln
    e1 = np.cross(e2, e0)
    return np.column_stack([e0, e1, e2])


def align_rotation(src_rel, src_mults, src_radii,
                   dst_rel, dst_mults, dst_radii,
                   slack: float, scale: float = 1.0) -> np.ndarray | None:
    """A rotation ``R`` with ``R · src ≈ dst`` as multisets, or None.

    Both point sets are given relative to their centers (distinct
    points with parallel multiplicity arrays).  Candidates come from
    mapping a reference pair of ``src`` onto compatible pairs of
    ``dst`` — same pair-generation and batched verification as
    :func:`detect_rotation_group`, so a returned rotation is certified
    on the whole multiset.  The congruence cache uses this to re-align
    a stored canonical symmetry report onto a congruent query.
    """
    src_rel = np.asarray(src_rel, dtype=float).reshape(-1, 3)
    dst_rel = np.asarray(dst_rel, dtype=float).reshape(-1, 3)
    src_mults = np.asarray(src_mults, dtype=np.int64)
    dst_mults = np.asarray(dst_mults, dtype=np.int64)
    if len(src_rel) != len(dst_rel):
        return None
    check_slack = 20 * slack

    shells = _shells(src_radii, src_mults, slack)
    if not shells:
        return None
    shells.sort(key=len)
    anchor = shells[0]
    p1 = src_rel[anchor[0]]
    r1 = float(src_radii[anchor[0]])
    p2_index = None
    for shell in [anchor] + shells[1:]:
        norms = np.linalg.norm(np.cross(p1, src_rel[shell]), axis=1)
        independent = np.nonzero(norms > check_slack * r1)[0]
        if independent.size:
            p2_index = int(shell[independent[0]])
            break
    if p2_index is None:
        return None  # collinear sources have no finite alignment here
    p2 = src_rel[p2_index]
    r2 = float(src_radii[p2_index])
    dot12 = float(np.dot(p1, p2))
    mult1 = int(src_mults[anchor[0]])
    mult2 = int(src_mults[p2_index])

    q1_mask = (np.abs(dst_radii - r1) <= 20 * slack) & (dst_mults == mult1)
    q2_mask = (np.abs(dst_radii - r2) <= 20 * slack) & (dst_mults == mult2)
    if not q1_mask.any() or not q2_mask.any():
        return None
    q1s = dst_rel[q1_mask]
    q2s = dst_rel[q2_mask]
    threshold = check_slack * max(
        1.0, r1 * r2 / max(scale, AXIS_NORM_FLOOR)) * scale
    if len(q1s) * len(q2s) > _DENSE_PAIR_LIMIT:
        q1c, q2c = _dense_pairs_blocked(q1s, q2s, dot12, threshold)
    else:
        dots = q1s @ q2s.T
        ii, jj = np.nonzero(np.abs(dots - dot12) <= threshold)
        q1c, q2c = q1s[ii], q2s[jj]
    if not len(q1c):
        return None
    candidates = _rotations_from_pairs(p1, p2, q1c, q2c)
    if not len(candidates):
        return None

    backend = get_backend()
    tree = backend.neighbor_index(dst_rel)
    m = len(src_rel)
    block = max(1, _VERIFY_BLOCK // max(m, 1))
    for start in range(0, len(candidates), block):
        chunk = candidates[start:start + block]
        images = backend.einsum("cij,mj->cmi", chunk, src_rel)
        dist, idx = tree.query(
            images.reshape(-1, 3), k=1,
            distance_upper_bound=check_slack
            * (1.0 + DEFAULT_TOL.coincidence_slack(1.0)))
        dist = dist.reshape(len(chunk), m)
        idx = idx.reshape(len(chunk), m)
        good = dist <= check_slack
        safe = np.where(good, idx, 0)
        good &= dst_mults[safe] == src_mults[None, :]
        hits = np.nonzero(good.all(axis=1))[0]
        if hits.size:
            return np.asarray(chunk[int(hits[0])])
    return None
