"""Finite rotation groups in 3-space and symmetry detection.

This package implements Section 3 of the paper: the five kinds of
finite rotation groups (cyclic ``C_k``, dihedral ``D_l``, tetrahedral
``T``, octahedral ``O``, icosahedral ``I``), the subgroup relation
``⪯``, embeddings, and the rotation group ``γ(P)`` of a point
(multi)set.
"""

from repro.groups.axes import RotationAxis, axis_line_key
from repro.groups.group import GroupKind, GroupSpec, RotationGroup
from repro.groups.catalog import (
    cyclic_group,
    dihedral_group,
    tetrahedral_group,
    octahedral_group,
    icosahedral_group,
    group_from_spec,
    identity_group,
)
from repro.groups.subgroups import (
    is_abstract_subgroup,
    proper_abstract_subgroups,
    enumerate_concrete_subgroups,
    classify_elements,
    maximal_elements,
)
from repro.groups.detection import detect_rotation_group, SymmetryReport
from repro.groups.infinite import InfiniteGroupKind, detect_collinear_kind

__all__ = [
    "RotationAxis",
    "axis_line_key",
    "GroupKind",
    "GroupSpec",
    "RotationGroup",
    "cyclic_group",
    "dihedral_group",
    "tetrahedral_group",
    "octahedral_group",
    "icosahedral_group",
    "group_from_spec",
    "identity_group",
    "is_abstract_subgroup",
    "proper_abstract_subgroups",
    "enumerate_concrete_subgroups",
    "classify_elements",
    "maximal_elements",
    "detect_rotation_group",
    "SymmetryReport",
    "InfiniteGroupKind",
    "detect_collinear_kind",
]
