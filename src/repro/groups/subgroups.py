"""Classification, the subgroup relation ``⪯``, and subgroup
enumeration for the five rotation-group families.

The abstract subgroup lattice (Figure 4 of the paper) is::

    C_k ⪯ C_m        iff k | m
    C_k ⪯ D_m        iff k | m or k = 2     (secondary axes)
    D_k ⪯ D_m        iff k | m
    subgroups of T:  C1 C2 C3 D2 T
    subgroups of O:  C1 C2 C3 C4 D2 D3 D4 T O
    subgroups of I:  C1 C2 C3 C5 D2 D3 D5 T I
    T ⪯ O,  T ⪯ I,  O ⋠ I
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import GroupError
from repro.geometry.rotations import (
    rotation_about_axis,
    rotation_angle,
    rotation_axis,
)
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance
from repro.groups.axes import axis_line_key
from repro.groups.group import (
    GroupKind,
    GroupSpec,
    RotationGroup,
    element_key,
)

__all__ = [
    "classify_elements",
    "is_abstract_subgroup",
    "proper_abstract_subgroups",
    "enumerate_concrete_subgroups",
    "maximal_elements",
]

_POLYHEDRAL_SUBGROUPS = {
    GroupKind.TETRAHEDRAL: {"C1", "C2", "C3", "D2", "T"},
    GroupKind.OCTAHEDRAL: {"C1", "C2", "C3", "C4",
                           "D2", "D3", "D4", "T", "O"},
    GroupKind.ICOSAHEDRAL: {"C1", "C2", "C3", "C5",
                            "D2", "D3", "D5", "T", "I"},
}


def classify_elements(elements, tol: Tolerance = DEFAULT_TOL) -> GroupSpec:
    """Classify a finite set of rotation matrices forming a group.

    Returns the :class:`GroupSpec` identifying which of the five
    families the group belongs to.

    Raises
    ------
    GroupError
        If the element set is not one of the five families (which
        means it was not a rotation group to begin with).
    """
    mats = [np.asarray(m, dtype=float) for m in elements]
    order = len(mats)
    if order == 1:
        return GroupSpec(GroupKind.CYCLIC, 1)
    lines: dict[tuple, int] = {}
    for mat in mats:
        angle = rotation_angle(mat, tol)
        if tol.zero(angle):
            continue
        key = axis_line_key(rotation_axis(mat, tol))
        lines[key] = lines.get(key, 0) + 1
    folds = sorted((count + 1 for count in lines.values()), reverse=True)
    if len(lines) == 1:
        if order != folds[0]:
            raise GroupError("inconsistent cyclic group data")
        return GroupSpec(GroupKind.CYCLIC, order)
    fold_histogram: dict[int, int] = {}
    for f in folds:
        fold_histogram[f] = fold_histogram.get(f, 0) + 1
    if fold_histogram == {3: 4, 2: 3} and order == 12:
        return GroupSpec(GroupKind.TETRAHEDRAL)
    if fold_histogram == {4: 3, 3: 4, 2: 6} and order == 24:
        return GroupSpec(GroupKind.OCTAHEDRAL)
    if fold_histogram == {5: 6, 3: 10, 2: 15} and order == 60:
        return GroupSpec(GroupKind.ICOSAHEDRAL)
    # Dihedral: one l-fold principal plus l perpendicular 2-fold axes.
    if fold_histogram == {2: 3} and order == 4:
        return GroupSpec(GroupKind.DIHEDRAL, 2)
    top = folds[0]
    if (order == 2 * top and fold_histogram.get(top) == 1
            and fold_histogram.get(2, 0) >= top):
        return GroupSpec(GroupKind.DIHEDRAL, top)
    raise GroupError(
        f"element set (order {order}, folds {fold_histogram}) is not one "
        "of the five finite rotation-group families")


def is_abstract_subgroup(g: GroupSpec, h: GroupSpec) -> bool:
    """The paper's relation ``g ⪯ h`` on group types."""
    if g == h:
        return True
    if g.is_trivial:
        return True
    if h.kind is GroupKind.CYCLIC:
        return g.kind is GroupKind.CYCLIC and h.param % g.param == 0
    if h.kind is GroupKind.DIHEDRAL:
        if g.kind is GroupKind.CYCLIC:
            return h.param % g.param == 0 or g.param == 2
        if g.kind is GroupKind.DIHEDRAL:
            return h.param % g.param == 0
        return False
    allowed = _POLYHEDRAL_SUBGROUPS[h.kind]
    return str(g) in allowed


def proper_abstract_subgroups(h: GroupSpec) -> list[GroupSpec]:
    """All types ``g`` with ``g ≺ h`` (proper), sorted by order."""
    result: list[GroupSpec] = []
    if h.kind is GroupKind.CYCLIC:
        for d in _divisors(h.param):
            if d != h.param:
                result.append(GroupSpec(GroupKind.CYCLIC, d))
    elif h.kind is GroupKind.DIHEDRAL:
        for d in _divisors(h.param):
            result.append(GroupSpec(GroupKind.CYCLIC, d))
            if d >= 2 and d != h.param:
                result.append(GroupSpec(GroupKind.DIHEDRAL, d))
        two = GroupSpec(GroupKind.CYCLIC, 2)
        if two not in result:
            result.append(two)
    else:
        for name in _POLYHEDRAL_SUBGROUPS[h.kind]:
            spec = GroupSpec.parse(name)
            if spec != h:
                result.append(spec)
    return sorted(set(result))


def _divisors(n: int) -> list[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


def enumerate_concrete_subgroups(group: RotationGroup,
                                 tol: Tolerance = DEFAULT_TOL
                                 ) -> list[RotationGroup]:
    """All concrete subgroups of ``group`` (as element subsets).

    Cyclic and dihedral groups use their known structure (so large
    parameters stay cheap); polyhedral groups use generic closure of
    pairwise joins, which is fast at orders ≤ 60.
    """
    if group.spec.kind is GroupKind.CYCLIC:
        return _cyclic_subgroups(group, tol)
    if group.spec.kind is GroupKind.DIHEDRAL:
        return _dihedral_subgroups(group, tol)
    return _generic_subgroups(group, tol)


def _cyclic_subgroups(group: RotationGroup,
                      tol: Tolerance) -> list[RotationGroup]:
    k = group.spec.param
    if k == 1:
        return [group]
    axis = group.axes[0].direction
    result = []
    for d in _divisors(k):
        elems = [rotation_about_axis(axis, 2.0 * np.pi * i / d)
                 for i in range(d)]
        result.append(RotationGroup(
            elems, spec=GroupSpec(GroupKind.CYCLIC, d), tol=tol))
    return result


def _dihedral_subgroups(group: RotationGroup,
                        tol: Tolerance) -> list[RotationGroup]:
    l = group.spec.param
    secondary_axes = [a.direction for a in group.axes_of_fold(2)]
    if l == 2:
        # All three axes are 2-fold; pick any as principal for the
        # structured construction (all subgroups are covered anyway).
        return _generic_subgroups(group, tol)
    principal = group.principal_axis.direction
    secondary_axes = [a.direction for a in group.axes_of_fold(2)
                      if not _parallel(a.direction, principal)]
    result: list[RotationGroup] = []
    # Cyclic subgroups about the principal axis.
    for d in _divisors(l):
        elems = [rotation_about_axis(principal, 2.0 * np.pi * i / d)
                 for i in range(d)]
        result.append(RotationGroup(
            elems, spec=GroupSpec(GroupKind.CYCLIC, d), tol=tol))
    # C_2 about each secondary axis.
    for s in secondary_axes:
        elems = [np.eye(3), rotation_about_axis(s, np.pi)]
        result.append(RotationGroup(
            elems, spec=GroupSpec(GroupKind.CYCLIC, 2), tol=tol))
    # Dihedral subgroups D_d for d | l, d >= 2 — one copy for each of
    # the l/d rotational offsets of the secondary-axis subset.
    ordered = _order_secondaries(principal, secondary_axes)
    for d in _divisors(l):
        if d < 2:
            continue
        step = l // d
        for offset in range(step):
            elems = [rotation_about_axis(principal, 2.0 * np.pi * i / d)
                     for i in range(d)]
            for j in range(d):
                elems.append(rotation_about_axis(
                    ordered[offset + j * step], np.pi))
            result.append(RotationGroup(
                elems, spec=GroupSpec(GroupKind.DIHEDRAL, d), tol=tol))
    return _dedupe(result)


def _order_secondaries(principal, secondaries) -> list[np.ndarray]:
    """Order secondary axes by angle about the principal axis."""
    from repro.geometry.vectors import orthonormal_basis_for

    u, v, _ = orthonormal_basis_for(principal)
    def angle(s):
        a = float(np.arctan2(np.dot(s, v), np.dot(s, u)))
        return a % np.pi  # axes are lines: angles mod pi
    return sorted(secondaries, key=angle)


def _parallel(a, b) -> bool:
    return bool(np.linalg.norm(np.cross(a, b)) < 1e-8)


def _generic_subgroups(group: RotationGroup,
                       tol: Tolerance) -> list[RotationGroup]:
    """Subgroup enumeration via an integer Cayley table.

    Elements are mapped to indices once; all closures then run on
    integer sets, which keeps the order-60 icosahedral group cheap.
    """
    elements = group.elements
    order = len(elements)
    stack = np.stack(elements)
    index_of = {element_key(m): i for i, m in enumerate(elements)}
    # All pairwise products at once: products[i, j] = E_i @ E_j.
    products = np.einsum("aij,bjk->abik", stack, stack)
    keys = np.round(products.reshape(order * order, 9), 5) + 0.0
    table = np.empty(order * order, dtype=np.int64)
    for flat, row in enumerate(keys):
        key = tuple(row.tolist())
        if key not in index_of:
            raise GroupError("element set is not closed under products")
        table[flat] = index_of[key]
    table = table.reshape(order, order)
    identity = index_of[element_key(np.eye(3))]

    def close(seed: frozenset) -> frozenset:
        current = np.zeros(order, dtype=bool)
        current[list(seed)] = True
        current[identity] = True
        while True:
            idx = np.nonzero(current)[0]
            prods = table[np.ix_(idx, idx)].ravel()
            before = int(current.sum())
            current[prods] = True
            if int(current.sum()) == before:
                return frozenset(np.nonzero(current)[0].tolist())

    subgroups: set[frozenset] = {frozenset([identity])}
    cyclics = [close(frozenset([i])) for i in range(order)]
    subgroups.update(cyclics)
    changed = True
    while changed:
        changed = False
        current = list(subgroups)
        for sub_a, sub_b in itertools.combinations(current, 2):
            if sub_a <= sub_b or sub_b <= sub_a:
                continue
            joined = close(sub_a | sub_b)
            if joined not in subgroups:
                subgroups.add(joined)
                changed = True
    return [RotationGroup([elements[i] for i in sub], tol=tol)
            for sub in subgroups]


def _dedupe(groups: list[RotationGroup]) -> list[RotationGroup]:
    seen: set[frozenset] = set()
    result = []
    for g in groups:
        key = frozenset(element_key(m) for m in g.elements)
        if key not in seen:
            seen.add(key)
            result.append(g)
    return result


def maximal_elements(specs) -> list[GroupSpec]:
    """Maximal elements of a set of group types under ``⪯``."""
    unique = sorted(set(specs))
    result = []
    for g in unique:
        if not any(g != h and is_abstract_subgroup(g, h) for h in unique):
            result.append(g)
    return sorted(result)
