"""Classification, the subgroup relation ``⪯``, and subgroup
enumeration for the five rotation-group families.

The abstract subgroup lattice (Figure 4 of the paper) is::

    C_k ⪯ C_m        iff k | m
    C_k ⪯ D_m        iff k | m or k = 2     (secondary axes)
    D_k ⪯ D_m        iff k | m
    subgroups of T:  C1 C2 C3 D2 T
    subgroups of O:  C1 C2 C3 C4 D2 D3 D4 T O
    subgroups of I:  C1 C2 C3 C5 D2 D3 D5 T I
    T ⪯ O,  T ⪯ I,  O ⋠ I
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import GroupError
from repro.geometry.rotations import rotation_about_axis
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance
from repro.groups.group import (
    GroupKind,
    GroupSpec,
    RotationGroup,
    batch_axis_line_keys,
    batch_rotation_angles,
    element_key,
)

__all__ = [
    "classify_elements",
    "is_abstract_subgroup",
    "proper_abstract_subgroups",
    "enumerate_concrete_subgroups",
    "maximal_elements",
]

_POLYHEDRAL_SUBGROUPS = {
    GroupKind.TETRAHEDRAL: {"C1", "C2", "C3", "D2", "T"},
    GroupKind.OCTAHEDRAL: {"C1", "C2", "C3", "C4",
                           "D2", "D3", "D4", "T", "O"},
    GroupKind.ICOSAHEDRAL: {"C1", "C2", "C3", "C5",
                            "D2", "D3", "D5", "T", "I"},
}


def classify_elements(elements, tol: Tolerance = DEFAULT_TOL) -> GroupSpec:
    """Classify a finite set of rotation matrices forming a group.

    Returns the :class:`GroupSpec` identifying which of the five
    families the group belongs to.

    Raises
    ------
    GroupError
        If the element set is not one of the five families (which
        means it was not a rotation group to begin with).
    """
    stack = np.asarray([np.asarray(m, dtype=float) for m in elements],
                       dtype=float).reshape(-1, 3, 3)
    order = len(stack)
    if order == 1:
        return GroupSpec(GroupKind.CYCLIC, 1)
    angles = batch_rotation_angles(stack)
    _, _, keys = batch_axis_line_keys(stack, angles, tol)
    lines: dict[tuple, int] = {}
    for key in keys:
        lines[key] = lines.get(key, 0) + 1
    folds = sorted((count + 1 for count in lines.values()), reverse=True)
    if len(lines) == 1:
        if order != folds[0]:
            raise GroupError("inconsistent cyclic group data")
        return GroupSpec(GroupKind.CYCLIC, order)
    fold_histogram: dict[int, int] = {}
    for f in folds:
        fold_histogram[f] = fold_histogram.get(f, 0) + 1
    if fold_histogram == {3: 4, 2: 3} and order == 12:
        return GroupSpec(GroupKind.TETRAHEDRAL)
    if fold_histogram == {4: 3, 3: 4, 2: 6} and order == 24:
        return GroupSpec(GroupKind.OCTAHEDRAL)
    if fold_histogram == {5: 6, 3: 10, 2: 15} and order == 60:
        return GroupSpec(GroupKind.ICOSAHEDRAL)
    # Dihedral: one l-fold principal plus l perpendicular 2-fold axes.
    if fold_histogram == {2: 3} and order == 4:
        return GroupSpec(GroupKind.DIHEDRAL, 2)
    top = folds[0]
    if (order == 2 * top and fold_histogram.get(top) == 1
            and fold_histogram.get(2, 0) >= top):
        return GroupSpec(GroupKind.DIHEDRAL, top)
    raise GroupError(
        f"element set (order {order}, folds {fold_histogram}) is not one "
        "of the five finite rotation-group families")


def is_abstract_subgroup(g: GroupSpec, h: GroupSpec) -> bool:
    """The paper's relation ``g ⪯ h`` on group types."""
    if g == h:
        return True
    if g.is_trivial:
        return True
    if h.kind is GroupKind.CYCLIC:
        return g.kind is GroupKind.CYCLIC and h.param % g.param == 0
    if h.kind is GroupKind.DIHEDRAL:
        if g.kind is GroupKind.CYCLIC:
            return h.param % g.param == 0 or g.param == 2
        if g.kind is GroupKind.DIHEDRAL:
            return h.param % g.param == 0
        return False
    allowed = _POLYHEDRAL_SUBGROUPS[h.kind]
    return str(g) in allowed


def proper_abstract_subgroups(h: GroupSpec) -> list[GroupSpec]:
    """All types ``g`` with ``g ≺ h`` (proper), sorted by order."""
    result: list[GroupSpec] = []
    if h.kind is GroupKind.CYCLIC:
        for d in _divisors(h.param):
            if d != h.param:
                result.append(GroupSpec(GroupKind.CYCLIC, d))
    elif h.kind is GroupKind.DIHEDRAL:
        for d in _divisors(h.param):
            result.append(GroupSpec(GroupKind.CYCLIC, d))
            if d >= 2 and d != h.param:
                result.append(GroupSpec(GroupKind.DIHEDRAL, d))
        two = GroupSpec(GroupKind.CYCLIC, 2)
        if two not in result:
            result.append(two)
    else:
        for name in _POLYHEDRAL_SUBGROUPS[h.kind]:
            spec = GroupSpec.parse(name)
            if spec != h:
                result.append(spec)
    return sorted(set(result))


def _divisors(n: int) -> list[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


def enumerate_concrete_subgroups(group: RotationGroup,
                                 tol: Tolerance = DEFAULT_TOL
                                 ) -> list[RotationGroup]:
    """All concrete subgroups of ``group`` (as element subsets).

    Cyclic and dihedral groups use their known structure (so large
    parameters stay cheap); polyhedral groups use generic closure of
    pairwise joins, which is fast at orders ≤ 60.  Results are
    memoized per exact arrangement via :mod:`repro.perf`.
    """
    from repro.perf import cached_subgroups

    return cached_subgroups(group, tol, _enumerate_subgroups)


def _enumerate_subgroups(group: RotationGroup,
                         tol: Tolerance) -> list[RotationGroup]:
    if group.spec.kind is GroupKind.CYCLIC:
        return _cyclic_subgroups(group, tol)
    if group.spec.kind is GroupKind.DIHEDRAL:
        return _dihedral_subgroups(group, tol)
    return _generic_subgroups(group, tol)


def _cyclic_subgroups(group: RotationGroup,
                      tol: Tolerance) -> list[RotationGroup]:
    k = group.spec.param
    if k == 1:
        return [group]
    axis = group.axes[0].direction
    result = []
    for d in _divisors(k):
        elems = [rotation_about_axis(axis, 2.0 * np.pi * i / d)
                 for i in range(d)]
        result.append(RotationGroup(
            elems, spec=GroupSpec(GroupKind.CYCLIC, d), tol=tol))
    return result


def _dihedral_subgroups(group: RotationGroup,
                        tol: Tolerance) -> list[RotationGroup]:
    l = group.spec.param
    secondary_axes = [a.direction for a in group.axes_of_fold(2)]
    if l == 2:
        # All three axes are 2-fold; pick any as principal for the
        # structured construction (all subgroups are covered anyway).
        return _generic_subgroups(group, tol)
    principal = group.principal_axis.direction
    secondary_axes = [a.direction for a in group.axes_of_fold(2)
                      if not _parallel(a.direction, principal)]
    result: list[RotationGroup] = []
    # Cyclic subgroups about the principal axis.
    for d in _divisors(l):
        elems = [rotation_about_axis(principal, 2.0 * np.pi * i / d)
                 for i in range(d)]
        result.append(RotationGroup(
            elems, spec=GroupSpec(GroupKind.CYCLIC, d), tol=tol))
    # C_2 about each secondary axis.
    for s in secondary_axes:
        elems = [np.eye(3), rotation_about_axis(s, np.pi)]
        result.append(RotationGroup(
            elems, spec=GroupSpec(GroupKind.CYCLIC, 2), tol=tol))
    # Dihedral subgroups D_d for d | l, d >= 2 — one copy for each of
    # the l/d rotational offsets of the secondary-axis subset.
    ordered = _order_secondaries(principal, secondary_axes)
    for d in _divisors(l):
        if d < 2:
            continue
        step = l // d
        for offset in range(step):
            elems = [rotation_about_axis(principal, 2.0 * np.pi * i / d)
                     for i in range(d)]
            for j in range(d):
                elems.append(rotation_about_axis(
                    ordered[offset + j * step], np.pi))
            result.append(RotationGroup(
                elems, spec=GroupSpec(GroupKind.DIHEDRAL, d), tol=tol))
    return _dedupe(result)


def _order_secondaries(principal, secondaries) -> list[np.ndarray]:
    """Order secondary axes by angle about the principal axis."""
    from repro.geometry.vectors import orthonormal_basis_for

    u, v, _ = orthonormal_basis_for(principal)
    def angle(s):
        a = float(np.arctan2(np.dot(s, v), np.dot(s, u)))
        return a % np.pi  # axes are lines: angles mod pi
    return sorted(secondaries, key=angle)


def _parallel(a, b) -> bool:
    return bool(np.linalg.norm(np.cross(a, b)) < 0.1 * DEFAULT_TOL.abs_tol)


def _generic_subgroups(group: RotationGroup,
                       tol: Tolerance) -> list[RotationGroup]:
    """Subgroup enumeration via an integer Cayley table.

    Elements are mapped to indices once; all closures then run on
    integer sets, which keeps the order-60 icosahedral group cheap.
    """
    elements = group.elements
    order = len(elements)
    stack = np.stack(elements)
    index_of = {element_key(m): i for i, m in enumerate(elements)}
    # All pairwise products at once: products[i, j] = E_i @ E_j.
    products = np.einsum("aij,bjk->abik", stack, stack)
    keys = np.round(products.reshape(order * order, 9), 5) + 0.0
    table = np.empty(order * order, dtype=np.int64)
    for flat, row in enumerate(keys):
        key = tuple(row.tolist())
        if key not in index_of:
            raise GroupError("element set is not closed under products")
        table[flat] = index_of[key]
    rows = table.reshape(order, order).tolist()
    identity = index_of[element_key(np.eye(3))]
    full = frozenset(range(order))
    divisors = [d for d in range(1, order + 1) if order % d == 0]

    def _forced_full(size: int) -> bool:
        # Lagrange: the closure's order divides ``order`` and is at
        # least ``size``; if the only such divisor is ``order`` itself
        # the closure must be the whole group.
        return next(d for d in divisors if d >= size) == order

    def close(seed) -> frozenset:
        # Plain-set closure: at order <= 60 the sets are tiny, so
        # Python-level products beat array indexing by a wide margin.
        current = set(seed)
        current.add(identity)
        if _forced_full(len(current)):
            return full
        frontier = list(current)
        while frontier:
            fresh = []
            members = list(current)
            for i in frontier:
                row = rows[i]
                for j in members:
                    k = row[j]
                    if k not in current:
                        current.add(k)
                        fresh.append(k)
                    k = rows[j][i]
                    if k not in current:
                        current.add(k)
                        fresh.append(k)
            if fresh and _forced_full(len(current)):
                return full
            frontier = fresh
        return frozenset(current)

    def powers(i: int) -> frozenset:
        # <E_i> directly via the Cayley table.
        current = {identity}
        j = i
        while j not in current:
            current.add(j)
            j = rows[j][i]
        return frozenset(current)

    subgroups: set[frozenset] = {frozenset([identity])}
    subgroups.update(powers(i) for i in range(order))
    join_cache: dict[frozenset, frozenset] = {}
    changed = True
    while changed:
        changed = False
        current = list(subgroups)
        for sub_a, sub_b in itertools.combinations(current, 2):
            if sub_a <= sub_b or sub_b <= sub_a:
                continue
            union = sub_a | sub_b
            joined = join_cache.get(union)
            if joined is None:
                joined = close(union)
                join_cache[union] = joined
            if joined not in subgroups:
                subgroups.add(joined)
                changed = True
    return [RotationGroup([elements[i] for i in sub], tol=tol)
            for sub in subgroups]


def _dedupe(groups: list[RotationGroup]) -> list[RotationGroup]:
    seen: set[frozenset] = set()
    result = []
    for g in groups:
        key = frozenset(element_key(m) for m in g.elements)
        if key not in seen:
            seen.add(key)
            result.append(g)
    return result


def maximal_elements(specs) -> list[GroupSpec]:
    """Maximal elements of a set of group types under ``⪯``."""
    unique = sorted(set(specs))
    result = []
    for g in unique:
        if not any(g != h and is_abstract_subgroup(g, h) for h in unique):
            result.append(g)
    return sorted(result)
