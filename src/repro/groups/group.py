"""Concrete rotation groups: elements, axes, and classification data.

A :class:`RotationGroup` is a finite subgroup of SO(3) given by its
explicit rotation matrices, together with derived axis metadata and an
abstract :class:`GroupSpec` (its type in the paper's family
``{C_k, D_l, T, O, I}``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import total_ordering

import numpy as np

from repro.errors import GroupError
from repro.geometry.rotations import (
    is_rotation_matrix,
    rotation_angle,
    rotation_axis,
)
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance, canonical_round
from repro.groups.axes import RotationAxis, axis_line_key

__all__ = ["GroupKind", "GroupSpec", "RotationGroup", "element_key"]


class GroupKind(enum.Enum):
    """The five families of finite rotation groups in 3-space."""

    CYCLIC = "C"
    DIHEDRAL = "D"
    TETRAHEDRAL = "T"
    OCTAHEDRAL = "O"
    ICOSAHEDRAL = "I"


_POLYHEDRAL_ORDER = {
    GroupKind.TETRAHEDRAL: 12,
    GroupKind.OCTAHEDRAL: 24,
    GroupKind.ICOSAHEDRAL: 60,
}


@total_ordering
@dataclass(frozen=True)
class GroupSpec:
    """Abstract type of a rotation group: a kind plus parameter.

    ``C_k`` has ``param = k >= 1``; ``D_l`` has ``param = l >= 2``;
    the polyhedral groups have ``param = 0``.
    """

    kind: GroupKind
    param: int = 0

    def __post_init__(self) -> None:
        if self.kind is GroupKind.CYCLIC and self.param < 1:
            raise GroupError("C_k requires k >= 1")
        if self.kind is GroupKind.DIHEDRAL and self.param < 2:
            raise GroupError("D_l requires l >= 2")
        if self.kind in _POLYHEDRAL_ORDER and self.param != 0:
            raise GroupError("polyhedral groups take no parameter")

    @property
    def order(self) -> int:
        """Number of elements of the group."""
        if self.kind is GroupKind.CYCLIC:
            return self.param
        if self.kind is GroupKind.DIHEDRAL:
            return 2 * self.param
        return _POLYHEDRAL_ORDER[self.kind]

    @property
    def is_2d(self) -> bool:
        """True for cyclic and dihedral groups (act on a plane)."""
        return self.kind in (GroupKind.CYCLIC, GroupKind.DIHEDRAL)

    @property
    def is_3d(self) -> bool:
        """True for the polyhedral groups ``T``, ``O``, ``I``."""
        return not self.is_2d

    @property
    def is_trivial(self) -> bool:
        """True for ``C_1``."""
        return self.kind is GroupKind.CYCLIC and self.param == 1

    def __str__(self) -> str:
        if self.kind in (GroupKind.CYCLIC, GroupKind.DIHEDRAL):
            return f"{self.kind.value}{self.param}"
        return self.kind.value

    def __lt__(self, other: "GroupSpec") -> bool:
        """Arbitrary but stable total order (for sorting output)."""
        return (self.order, self.kind.value, self.param) < (
            other.order, other.kind.value, other.param)

    @staticmethod
    def parse(text: str) -> "GroupSpec":
        """Parse specs like ``"C4"``, ``"D3"``, ``"T"``, ``"O"``, ``"I"``."""
        text = text.strip()
        if text in ("T", "O", "I"):
            return GroupSpec({"T": GroupKind.TETRAHEDRAL,
                              "O": GroupKind.OCTAHEDRAL,
                              "I": GroupKind.ICOSAHEDRAL}[text])
        if text and text[0] in ("C", "D") and text[1:].isdigit():
            kind = GroupKind.CYCLIC if text[0] == "C" else GroupKind.DIHEDRAL
            return GroupSpec(kind, int(text[1:]))
        raise GroupError(f"cannot parse group spec {text!r}")


def element_key(mat, decimals: int = 5) -> tuple:
    """Hashable key for a rotation matrix (rounded entries)."""
    return tuple(canonical_round(np.asarray(mat, dtype=float).ravel(),
                                 decimals).tolist())


def batch_rotation_angles(stack: np.ndarray) -> np.ndarray:
    """Rotation angles of a ``(k, 3, 3)`` stack of rotation matrices."""
    traces = np.einsum("kii->k", stack)
    return np.arccos(np.clip((traces - 1.0) / 2.0, -1.0, 1.0))


def batch_axis_line_keys(stack: np.ndarray, angles: np.ndarray,
                         tol: Tolerance, decimals: int = 5):
    """Axis line keys for non-identity rotations, computed in batch.

    Returns ``(indices, directions, keys)``: the indices into ``stack``
    of the non-identity elements, their unit axis directions with the
    canonical line sign, and the corresponding hashable line keys.
    Equivalent to ``axis_line_key(rotation_axis(m))`` per element, but
    one vectorized pass for the (common) non-half-turn case.
    """
    nonid = np.nonzero(angles > tol.abs_tol)[0]
    if nonid.size == 0:
        return nonid, np.zeros((0, 3)), []
    sub = stack[nonid]
    # Antisymmetric-part axis for generic angles.
    directions = np.stack([
        sub[:, 2, 1] - sub[:, 1, 2],
        sub[:, 0, 2] - sub[:, 2, 0],
        sub[:, 1, 0] - sub[:, 0, 1],
    ], axis=1)
    half_turn = np.abs(angles[nonid] - np.pi) <= max(
        tol.abs_tol, tol.rel_tol * np.pi)
    if half_turn.any():
        # Half turns have a vanishing antisymmetric part; use the
        # symmetric-part formula ``R = 2 u u^T - I`` with the
        # per-element canonical sign convention of ``rotation_axis``.
        sym = (sub[half_turn] + np.eye(3)) / 2.0
        count = len(sym)
        rows = np.arange(count)
        best_col = np.argmax(sym[:, [0, 1, 2], [0, 1, 2]], axis=1)
        cols = sym[rows, :, best_col]
        cols = cols / np.linalg.norm(cols, axis=1)[:, None]
        significant = np.abs(cols) > tol.abs_tol
        lead = cols[rows, np.argmax(significant, axis=1)]
        cols = np.where((lead < 0.0)[:, None], -cols, cols)
        directions[half_turn] = cols
    norms = np.linalg.norm(directions, axis=1)
    directions = directions / norms[:, None]
    # Keys use the canonical line sign (first coordinate above
    # threshold positive); the returned directions keep the per-element
    # sign convention of ``rotation_axis`` so callers that store them
    # behave as before.
    canonical = directions.copy()
    significant = np.abs(canonical) > 1e3 * tol.abs_tol
    first = np.argmax(significant, axis=1)
    lead = canonical[np.arange(len(canonical)), first]
    canonical = np.where((lead < 0.0)[:, None], -canonical, canonical)
    rounded = np.round(canonical, decimals) + 0.0
    keys = [tuple(row) for row in rounded.tolist()]
    return nonid, directions, keys


class RotationGroup:
    """A finite subgroup of SO(3) fixing the origin.

    Parameters
    ----------
    elements:
        Iterable of 3x3 rotation matrices, including the identity.
        Duplicates (within tolerance) are merged.
    spec:
        Optional pre-computed :class:`GroupSpec`; classified from the
        elements if omitted (see ``repro.groups.subgroups``).
    axes:
        Optional pre-computed axes; derived from elements if omitted.
    """

    def __init__(self, elements, spec: GroupSpec | None = None,
                 axes: list[RotationAxis] | None = None,
                 tol: Tolerance = DEFAULT_TOL,
                 validate: bool = False) -> None:
        self._tol = tol
        stacked = np.asarray([np.asarray(mat, dtype=float)
                              for mat in elements], dtype=float)
        if stacked.size and stacked.shape[1:] != (3, 3):
            raise GroupError("group element is not a rotation matrix")
        mats: list[np.ndarray] = []
        key_index: dict[tuple, int] = {}
        if stacked.size:
            # Validate the whole batch at once: orthogonality and
            # determinant checks are two vectorized passes instead of
            # one np.allclose call per element.
            residual = stacked @ stacked.transpose(0, 2, 1) - np.eye(3)
            ortho = np.abs(residual).max(axis=(1, 2)) <= 10 * tol.abs_tol
            dets = np.linalg.det(stacked)
            proper = np.abs(dets - 1.0) <= np.maximum(
                tol.abs_tol, tol.rel_tol * np.maximum(np.abs(dets), 1.0))
            if not bool((ortho & proper).all()):
                raise GroupError("group element is not a rotation matrix")
            keys = np.round(stacked.reshape(len(stacked), 9), 5) + 0.0
            for row, arr in zip(keys.tolist(), stacked):
                key = tuple(row)
                if key not in key_index:
                    key_index[key] = len(mats)
                    mats.append(arr)
        has_identity = bool(mats) and bool(
            (np.abs(np.asarray(mats) - np.eye(3)).max(axis=(1, 2))
             <= DEFAULT_TOL.geometric_slack(1.0)).any())
        if not has_identity:
            identity = np.eye(3)
            key_index[element_key(identity)] = len(mats)
            mats.append(identity)
        self.elements: list[np.ndarray] = mats
        self._stack = np.asarray(mats, dtype=float).reshape(-1, 3, 3)
        self._element_keys = set(key_index)
        if validate:
            self._check_closure()
        self.axes: list[RotationAxis] = (
            axes if axes is not None else self._derive_axes())
        if spec is None:
            from repro.groups.subgroups import classify_elements

            spec = classify_elements(self.elements, tol)
        self.spec = spec
        if axes is None:
            self._apply_structural_orientation()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of elements."""
        return len(self.elements)

    @property
    def is_trivial(self) -> bool:
        """True for the trivial group ``C_1``."""
        return self.order == 1

    def _check_closure(self) -> None:
        """Raise if the element set is not closed under products."""
        for a in self.elements:
            for b in self.elements:
                if element_key(a @ b) not in self._element_keys:
                    raise GroupError("element set is not closed")

    def _derive_axes(self) -> list[RotationAxis]:
        """Group non-identity elements by axis line; compute folds.

        Orientation flags are structural (Section 3.1) and are filled
        in by :func:`repro.groups.subgroups.annotate_orientations`
        after classification; here they default to False.
        """
        angles = batch_rotation_angles(self._stack)
        _, directions, keys = batch_axis_line_keys(
            self._stack, angles, self._tol)
        lines: dict[tuple, dict] = {}
        for direction, key in zip(directions, keys):
            entry = lines.setdefault(key, {"direction": direction,
                                           "count": 0})
            entry["count"] += 1
        axes = []
        for entry in lines.values():
            axes.append(RotationAxis(direction=entry["direction"],
                                     fold=entry["count"] + 1))
        axes.sort(key=lambda a: (-a.fold, a.line_key()))
        return axes

    def _apply_structural_orientation(self) -> None:
        """Set the ``oriented`` flag on axes per Section 3.1.

        The single axis of ``C_k`` is oriented; the secondary axes of
        ``D_l`` are oriented iff ``l`` is odd; the 3-fold axes of ``T``
        are oriented; all axes of ``O`` and ``I`` (and the principal
        axes of dihedral groups) are not.  Only the *flag* is
        structural — a concrete preferred direction can only come from
        a point set and is computed in :mod:`repro.core`.
        """
        import dataclasses

        spec = self.spec
        new_axes = []
        for axis in self.axes:
            oriented = False
            if spec.kind is GroupKind.CYCLIC and spec.param >= 2:
                oriented = True
            elif (spec.kind is GroupKind.DIHEDRAL and spec.param % 2 == 1
                  and axis.fold == 2):
                oriented = True
            elif spec.kind is GroupKind.TETRAHEDRAL and axis.fold == 3:
                oriented = True
            new_axes.append(dataclasses.replace(axis, oriented=oriented))
        self.axes = new_axes

    @property
    def principal_axis(self) -> RotationAxis | None:
        """Principal axis for cyclic/dihedral groups (``l >= 3``).

        For ``D_2`` the principal axis is not a group-theoretic notion
        (Property 1 of the paper): it can only be recognized from a
        point set, so this property returns None; use
        ``repro.core.decomposition.principal_axis_of_d2``.
        """
        if self.spec.kind is GroupKind.CYCLIC and self.spec.param >= 2:
            return self.axes[0]
        if self.spec.kind is GroupKind.DIHEDRAL and self.spec.param >= 3:
            candidates = self.axes_of_fold(self.spec.param)
            return candidates[0] if candidates else None
        return None

    def contains_element(self, mat) -> bool:
        """True if ``mat`` (a rotation matrix) is an element."""
        return element_key(mat) in self._element_keys

    def is_concrete_subgroup_of(self, other: "RotationGroup") -> bool:
        """True if every element of ``self`` is an element of ``other``."""
        return self._element_keys <= other._element_keys

    def elements_about_axis(self, direction) -> list[np.ndarray]:
        """Non-identity elements whose axis spans ``direction``'s line."""
        target = axis_line_key(direction)
        result = []
        for mat in self.elements:
            angle = rotation_angle(mat, self._tol)
            if self._tol.zero(angle):
                continue
            if axis_line_key(rotation_axis(mat, self._tol)) == target:
                result.append(mat)
        return result

    def axes_of_fold(self, fold: int) -> list[RotationAxis]:
        """All axes with the given fold."""
        return [a for a in self.axes if a.fold == fold]

    def axis_folds(self) -> dict[int, int]:
        """Mapping fold -> number of axes with that fold."""
        counts: dict[int, int] = {}
        for axis in self.axes:
            counts[axis.fold] = counts.get(axis.fold, 0) + 1
        return dict(sorted(counts.items()))

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def orbit(self, point, decimals: int = 6) -> list[np.ndarray]:
        """Orbit of ``point`` under the group (distinct images)."""
        p = np.asarray(point, dtype=float)
        images = self._stack @ p
        keys = np.round(images, decimals) + 0.0
        seen: set[tuple] = set()
        result = []
        for image, key_row in zip(images, keys.tolist()):
            key = tuple(key_row)
            if key not in seen:
                seen.add(key)
                result.append(image)
        return result

    def stabilizer_size(self, point, decimals: int = 6) -> int:
        """Folding ``μ(p)``: number of elements fixing ``point``."""
        p = np.asarray(point, dtype=float)
        key = np.round(p, decimals) + 0.0
        image_keys = np.round(self._stack @ p, decimals) + 0.0
        return int((image_keys == key).all(axis=1).sum())

    def transformed(self, rotation) -> "RotationGroup":
        """Conjugate group ``R G R^T`` (the arrangement rotated by R)."""
        rot = np.asarray(rotation, dtype=float)
        new_elements = [rot @ mat @ rot.T for mat in self.elements]
        new_axes = [
            RotationAxis(direction=rot @ a.direction, fold=a.fold,
                         oriented=a.oriented, occupied=a.occupied)
            for a in self.axes
        ]
        return RotationGroup(new_elements, spec=self.spec, axes=new_axes,
                             tol=self._tol)

    def with_axes(self, axes: list[RotationAxis]) -> "RotationGroup":
        """Copy of this group with replaced axis metadata."""
        return RotationGroup(self.elements, spec=self.spec, axes=axes,
                             tol=self._tol)

    def axis_for_line(self, direction) -> RotationAxis | None:
        """The group's axis spanning the same line as ``direction``."""
        key = axis_line_key(direction)
        for axis in self.axes:
            if axis.line_key() == key:
                return axis
        return None

    def __repr__(self) -> str:
        return f"RotationGroup({self.spec}, order={self.order})"
