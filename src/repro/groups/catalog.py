"""Standard-frame constructors for the five rotation-group families.

Each constructor returns a :class:`~repro.groups.group.RotationGroup`
whose arrangement sits in a canonical coordinate frame:

* ``C_k`` — single ``k``-fold axis along +z.
* ``D_l`` — principal ``l``-fold axis along +z, one secondary 2-fold
  axis along +x.
* ``T`` — 3-fold axes along the diagonals of the cube ``[-1, 1]^3``
  (tetrahedron vertices ``(1,1,1), (1,-1,-1), (-1,1,-1), (-1,-1,1)``),
  2-fold axes along the coordinate axes.
* ``O`` — 4-fold axes along the coordinate axes.
* ``I`` — generated from a 5-fold axis through the icosahedron vertex
  ``(0, 1, φ)`` and the 2-fold z-axis, closed under products.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import GroupError
from repro.geometry.rotations import rotation_about_axis
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance
from repro.groups.group import GroupKind, GroupSpec, RotationGroup, element_key

__all__ = [
    "cyclic_group",
    "dihedral_group",
    "tetrahedral_group",
    "octahedral_group",
    "icosahedral_group",
    "group_from_spec",
    "identity_group",
]

GOLDEN_RATIO = (1.0 + np.sqrt(5.0)) / 2.0


def _mark(group: RotationGroup, catalog_key: str) -> RotationGroup:
    """Tag a standard-frame group as catalog-built.

    The marker opts the group's subgroup lattice into the L3 on-disk
    cache (:mod:`repro.perf.disk`): catalog element stacks are
    bit-stable across runs, unlike detected arrangements.
    """
    group._catalog_key = catalog_key
    return group


def _cached_elements(name: str, build) -> list[np.ndarray]:
    """Serve a polyhedral element stack from the L3 store.

    The closure/enumeration that builds the stack is a pure function
    of the catalog name (the constructors take no geometric inputs),
    so one ``(kind="catalog", name)`` entry per polyhedral family
    removes the cold-start rebuild from every CLI/benchmark run.
    """
    from repro.perf import disk as _disk
    from repro.perf.stats import exact_digest

    key = exact_digest(b"catalog", name)
    found = _disk.disk_get("catalog", key)
    if found is not None:
        _, arrays = found
        stack = arrays.get("elements")
        if stack is not None and stack.ndim == 3:
            return [np.array(mat) for mat in stack]
    elements = build()
    _disk.disk_put("catalog", key,
                   arrays={"elements": np.asarray(elements, dtype=float)})
    return elements


def identity_group(tol: Tolerance = DEFAULT_TOL) -> RotationGroup:
    """The trivial group ``C_1``."""
    return cyclic_group(1, tol=tol)


def cyclic_group(k: int, axis=(0.0, 0.0, 1.0),
                 tol: Tolerance = DEFAULT_TOL) -> RotationGroup:
    """The cyclic group ``C_k`` about ``axis``."""
    if k < 1:
        raise GroupError("cyclic group needs k >= 1")
    elements = [rotation_about_axis(axis, 2.0 * np.pi * i / k)
                for i in range(k)]
    return _mark(RotationGroup(elements, spec=GroupSpec(GroupKind.CYCLIC, k),
                               tol=tol), f"C{k}")


def dihedral_group(l: int, principal=(0.0, 0.0, 1.0),
                   secondary=(1.0, 0.0, 0.0),
                   tol: Tolerance = DEFAULT_TOL) -> RotationGroup:
    """The dihedral group ``D_l``: ``C_l`` about ``principal`` plus
    ``l`` half-turns about secondary axes in the perpendicular plane.

    ``secondary`` fixes the direction of one secondary axis; it must
    be perpendicular to ``principal``.
    """
    if l < 2:
        raise GroupError("dihedral group needs l >= 2")
    p = np.asarray(principal, dtype=float)
    s = np.asarray(secondary, dtype=float)
    if (abs(float(np.dot(p, s))) > DEFAULT_TOL.coincidence_slack(1.0)
            * np.linalg.norm(p) * np.linalg.norm(s)):
        raise GroupError("secondary axis must be perpendicular to principal")
    elements = [rotation_about_axis(p, 2.0 * np.pi * i / l) for i in range(l)]
    for i in range(l):
        spin = rotation_about_axis(p, np.pi * i / l)
        elements.append(rotation_about_axis(spin @ s, np.pi))
    return _mark(RotationGroup(elements,
                               spec=GroupSpec(GroupKind.DIHEDRAL, l),
                               tol=tol), f"D{l}")


def tetrahedral_group(tol: Tolerance = DEFAULT_TOL) -> RotationGroup:
    """The tetrahedral group ``T`` (order 12) in the standard frame."""
    def build() -> list[np.ndarray]:
        diagonals = [(1, 1, 1), (1, -1, -1), (-1, 1, -1), (-1, -1, 1)]
        elements = [np.eye(3)]
        for d in diagonals:
            for sign in (1, -1):
                elements.append(
                    rotation_about_axis(d, sign * 2.0 * np.pi / 3.0))
        for axis in [(1, 0, 0), (0, 1, 0), (0, 0, 1)]:
            elements.append(rotation_about_axis(axis, np.pi))
        return elements

    return _mark(RotationGroup(_cached_elements("T", build),
                               spec=GroupSpec(GroupKind.TETRAHEDRAL),
                               tol=tol), "T")


def octahedral_group(tol: Tolerance = DEFAULT_TOL) -> RotationGroup:
    """The octahedral group ``O`` (order 24) in the standard frame."""
    def build() -> list[np.ndarray]:
        elements = [np.eye(3)]
        for axis in [(1, 0, 0), (0, 1, 0), (0, 0, 1)]:
            for quarter in (1, 2, 3):
                elements.append(
                    rotation_about_axis(axis, quarter * np.pi / 2.0))
        for d in [(1, 1, 1), (1, -1, -1), (-1, 1, -1), (-1, -1, 1)]:
            for sign in (1, -1):
                elements.append(
                    rotation_about_axis(d, sign * 2.0 * np.pi / 3.0))
        for d in [(1, 1, 0), (1, -1, 0), (1, 0, 1), (1, 0, -1),
                  (0, 1, 1), (0, 1, -1)]:
            elements.append(rotation_about_axis(d, np.pi))
        return elements

    return _mark(RotationGroup(_cached_elements("O", build),
                               spec=GroupSpec(GroupKind.OCTAHEDRAL),
                               tol=tol), "O")


def icosahedral_group(tol: Tolerance = DEFAULT_TOL) -> RotationGroup:
    """The icosahedral group ``I`` (order 60) in the standard frame.

    Generated by closing a 5-fold rotation about the icosahedron
    vertex ``(0, 1, φ)`` and the 2-fold rotation about +z under
    products.
    """
    def build() -> list[np.ndarray]:
        gen_a = rotation_about_axis((0.0, 1.0, GOLDEN_RATIO),
                                    2.0 * np.pi / 5.0)
        gen_b = rotation_about_axis((0.0, 0.0, 1.0), np.pi)
        elements = _close_under_products([np.eye(3), gen_a, gen_b])
        if len(elements) != 60:
            raise GroupError(
                f"icosahedral closure produced {len(elements)} elements")
        return elements

    return _mark(RotationGroup(_cached_elements("I", build),
                               spec=GroupSpec(GroupKind.ICOSAHEDRAL),
                               tol=tol), "I")


def _close_under_products(generators: list[np.ndarray],
                          max_order: int = 200) -> list[np.ndarray]:
    """Close a set of rotations under matrix products."""
    elements: dict[tuple, np.ndarray] = {element_key(m): m for m in generators}
    frontier = list(elements.values())
    while frontier:
        new_frontier = []
        for a in frontier:
            for b in list(elements.values()):
                for prod in (a @ b, b @ a):
                    key = element_key(prod)
                    if key not in elements:
                        elements[key] = prod
                        new_frontier.append(prod)
        frontier = new_frontier
        if len(elements) > max_order:
            raise GroupError("group closure exceeded maximum order")
    return list(elements.values())


def group_from_spec(spec: GroupSpec,
                    tol: Tolerance = DEFAULT_TOL) -> RotationGroup:
    """Standard-frame instance of the group described by ``spec``."""
    if spec.kind is GroupKind.CYCLIC:
        return cyclic_group(spec.param, tol=tol)
    if spec.kind is GroupKind.DIHEDRAL:
        return dihedral_group(spec.param, tol=tol)
    if spec.kind is GroupKind.TETRAHEDRAL:
        return tetrahedral_group(tol=tol)
    if spec.kind is GroupKind.OCTAHEDRAL:
        return octahedral_group(tol=tol)
    return icosahedral_group(tol=tol)
