"""Rotation axes of finite rotation groups.

An axis is a line through the group's fixed point (always the origin
in this package).  Its *fold* ``k`` is the order of the cyclic subgroup
of rotations about it.  An axis may carry an *orientation*: a preferred
direction along the line, used when embedding one group into another
(Section 3.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.geometry.tolerance import DEFAULT_TOL, Tolerance, canonical_round
from repro.geometry.vectors import normalize

__all__ = ["RotationAxis", "axis_line_key", "canonical_direction"]


def canonical_direction(direction, tol: Tolerance = DEFAULT_TOL) -> np.ndarray:
    """Normalize a direction and fix its sign canonically.

    The sign convention makes the first coordinate whose magnitude
    exceeds tolerance positive, so the two unit vectors spanning the
    same line map to one representative.
    """
    u = normalize(direction, tol)
    for coord in u:
        if abs(float(coord)) > 1e3 * tol.abs_tol:
            if coord < 0:
                u = -u
            break
    return u


def axis_line_key(direction, decimals: int = 5) -> tuple[float, float, float]:
    """A hashable key identifying the *line* spanned by ``direction``."""
    u = canonical_direction(direction)
    rounded = canonical_round(u, decimals)
    return (float(rounded[0]), float(rounded[1]), float(rounded[2]))


@dataclass(frozen=True)
class RotationAxis:
    """A rotation axis of a concrete group arrangement.

    Attributes
    ----------
    direction:
        Unit vector along the axis.  For unoriented axes the sign is
        canonical; for oriented axes it points in the preferred
        direction.
    fold:
        Order ``k`` of the cyclic subgroup of rotations about the axis.
    oriented:
        True when the two directions of the axis are distinguishable
        in the group arrangement (see Section 3.1: e.g. the single
        axis of ``C_k``, secondary axes of ``D_l`` for odd ``l``, and
        3-fold axes of ``T``).
    occupied:
        True when the axis line contains a point of the configuration
        the group was detected from (meaningless for catalog groups,
        where it defaults to False).
    """

    direction: np.ndarray
    fold: int
    oriented: bool = False
    occupied: bool = False

    def line_key(self) -> tuple[float, float, float]:
        """Hashable key for the line this axis spans."""
        return axis_line_key(self.direction)

    def with_occupied(self, occupied: bool) -> "RotationAxis":
        """Copy of this axis with the ``occupied`` flag replaced."""
        return replace(self, occupied=occupied)

    def with_direction(self, direction) -> "RotationAxis":
        """Copy of this axis pointing along ``direction``."""
        return replace(self, direction=normalize(direction))

    def same_line(self, other_direction, tol: Tolerance = DEFAULT_TOL) -> bool:
        """True if ``other_direction`` spans the same line."""
        u = normalize(other_direction, tol)
        cross = np.cross(self.direction, u)
        return bool(np.linalg.norm(cross) <= 1e3 * tol.abs_tol)
