"""repro — pattern formation for synchronous mobile robots in 3D.

A full reproduction of *"Pattern Formation Problem for Synchronous
Mobile Robots in the Three Dimensional Euclidean Space"* (Yamauchi,
Uehara, Yamashita; PODC 2016 brief announcement / full version):

* rotation groups ``C_k, D_l, T, O, I`` and symmetry detection
  (``γ(P)``) — :mod:`repro.groups`;
* symmetricity ``ϱ(P)`` and the formability characterization
  ``ϱ(P) ⊆ ϱ(F)`` (Theorem 1.1) — :mod:`repro.core`;
* the oblivious FSYNC algorithms ``go-to-center``, ``ψ_SYM`` and
  ``ψ_PF`` with a full Look–Compute–Move simulator and worst-case
  adversary — :mod:`repro.robots`;
* pattern generators, the 2D Suzuki–Yamashita baseline, plane
  formation (DISC 2015), and the experiment harness —
  :mod:`repro.patterns`, :mod:`repro.twod`,
  :mod:`repro.planeformation`, :mod:`repro.analysis`.

Quickstart::

    import numpy as np
    from repro import form_pattern, is_formable, Configuration
    from repro.patterns import named_pattern

    cube = named_pattern("cube")
    octagon = named_pattern("octagon")
    assert is_formable(Configuration(cube), Configuration(octagon))
    result = form_pattern(cube, octagon, seed=1)
    assert result.reached
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    Configuration,
    formability_report,
    is_formable,
    symmetricity,
    symmetricity_of_multiset,
)
from repro.errors import ReproError, UnsolvableError
from repro.groups import GroupSpec, detect_rotation_group
from repro.robots import (
    ExecutionResult,
    FsyncScheduler,
    LocalFrame,
    random_frames,
    symmetric_frames,
)
from repro.robots.algorithms import (
    make_pattern_formation_algorithm,
    psi_sym,
)

__version__ = "1.0.0"

__all__ = [
    "Configuration",
    "GroupSpec",
    "ExecutionResult",
    "FsyncScheduler",
    "LocalFrame",
    "ReproError",
    "UnsolvableError",
    "detect_rotation_group",
    "formability_report",
    "form_pattern",
    "is_formable",
    "make_pattern_formation_algorithm",
    "psi_sym",
    "random_frames",
    "symmetric_frames",
    "symmetricity",
    "symmetricity_of_multiset",
    "__version__",
]


def form_pattern(initial_points, target_points, seed: int = 0,
                 frames: list[LocalFrame] | None = None,
                 max_rounds: int = 30,
                 check: bool = True) -> ExecutionResult:
    """Run the full ``ψ_PF`` pipeline from ``P`` to ``F``.

    Convenience wrapper: validates solvability (Theorem 1.1), draws
    random local coordinate systems (or uses ``frames``), runs the
    FSYNC simulation until the configuration is similar to ``F``.

    Raises
    ------
    UnsolvableError
        If ``check`` is on and ``ϱ(P) ⊄ ϱ(F)``.
    """
    initial = Configuration(initial_points)
    target = Configuration(target_points)
    if check:
        report = formability_report(initial, target)
        if not report.formable:
            raise UnsolvableError(report.explain())
    if frames is None:
        frames = random_frames(initial.n, np.random.default_rng(seed))
    algorithm = make_pattern_formation_algorithm(target.points)
    scheduler = FsyncScheduler(algorithm, frames, target=target.points)
    return scheduler.run(
        initial.points,
        stop_condition=lambda c: c.is_similar_to(target),
        max_rounds=max_rounds)
