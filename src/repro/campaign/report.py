"""Regenerate the paper's tables from the campaign results store.

Each experiment's rows *are* one of the paper's exhibits (Lemma 7's
γ(P′) distributions, Theorem 4.1's step bounds, Theorem 1.1's
characterization sweep, Figure 1's formation runs, plus the
plane-formation and 2D sanity anchors), so the report is one section
per experiment present in the store: the cells that produced it and
the union of their rows as a table.

On the DuckDB backend every section is fetched by the SQL printed
with it (the ``rows`` table flattens one JSON row per record); the
JSONL fallback computes the identical section from the store API and
prints the SQL it *would* run, so a report is reproducible by hand on
either backend.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path

from repro.campaign.store import ResultsStore

__all__ = ["generate_report", "section_sql", "write_report"]


def section_sql(experiment: str) -> str:
    """The SQL regenerating one experiment's rows on DuckDB."""
    return ("SELECT digest, row_index, row FROM rows\n"
            f"WHERE experiment = '{experiment}'\n"
            "ORDER BY digest, row_index")


def _rows_for(store: ResultsStore, experiment: str) -> list[dict]:
    """``(cell digest, row)`` pairs, via SQL when the backend has it."""
    if store.kind == "duckdb":
        _columns, records = store.query(section_sql(experiment))
        return [{"digest": digest, **json.loads(row)}
                for digest, _row_index, row in records]
    rows = []
    for record in store.cells(experiment):
        for row in record.get("rows", []):
            rows.append({"digest": record["digest"], **row})
    return rows


def _render_value(value) -> str:
    if isinstance(value, str):
        return value
    return json.dumps(value, sort_keys=True, default=str)


def _markdown_table(rows: list[dict]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    lines = ["| " + " | ".join(columns) + " |",
             "| " + " | ".join("---" for _ in columns) + " |"]
    for row in rows:
        cells = [_render_value(row.get(column, "")) for column in columns]
        lines.append("| " + " | ".join(cells) + " |")
    return lines


def generate_report(store: ResultsStore, fmt: str = "markdown") -> str:
    """The campaign report as ``markdown`` or ``html`` text."""
    cells = store.cells()
    experiments = sorted({record["experiment"] for record in cells})
    lines = ["# Campaign report", ""]
    lines.append(f"Store: `{store.path}` ({store.kind}), "
                 f"{len(cells)} completed cells, "
                 f"{len(experiments)} experiments.")
    lines.append("")
    for experiment in experiments:
        count = sum(1 for record in cells
                    if record["experiment"] == experiment)
        lines.append(f"## {experiment}")
        lines.append("")
        lines.append(f"{count} cell{'s' if count != 1 else ''}; rows "
                     f"keyed by cell digest (first column).")
        lines.append("")
        lines.append("```sql")
        lines.append(section_sql(experiment))
        lines.append("```")
        lines.append("")
        rows = _rows_for(store, experiment)
        rows = [{**row, "digest": row["digest"][:12]} for row in rows]
        lines.extend(_markdown_table(rows))
        lines.append("")
    markdown = "\n".join(lines).rstrip() + "\n"
    if fmt == "markdown":
        return markdown
    if fmt == "html":
        return _to_html(markdown)
    from repro.errors import ReproError

    raise ReproError(f"unknown report format {fmt!r} "
                     f"(markdown or html)")


def _to_html(markdown: str) -> str:
    """A minimal, dependency-free HTML rendering of the report.

    Headings, fenced code blocks and tables only — exactly what
    :func:`generate_report` emits.
    """
    out = ["<!DOCTYPE html>", "<html><head><meta charset='utf-8'>",
           "<title>Campaign report</title>",
           "<style>table{border-collapse:collapse}"
           "td,th{border:1px solid #999;padding:2px 6px;"
           "font-family:monospace;font-size:12px}</style>",
           "</head><body>"]
    in_code = False
    in_table = False
    for line in markdown.splitlines():
        if line.startswith("```"):
            out.append("</pre>" if in_code else "<pre>")
            in_code = not in_code
            continue
        if in_code:
            out.append(_html.escape(line))
            continue
        is_table = line.startswith("|")
        if is_table and not in_table:
            out.append("<table>")
            in_table = True
        elif in_table and not is_table:
            out.append("</table>")
            in_table = False
        if is_table:
            cells = [cell.strip() for cell in line.strip("|").split("|")]
            if all(set(cell) <= {"-"} for cell in cells):
                continue  # the markdown separator row
            out.append("<tr>" + "".join(
                f"<td>{_html.escape(cell)}</td>" for cell in cells)
                + "</tr>")
        elif line.startswith("## "):
            out.append(f"<h2>{_html.escape(line[3:])}</h2>")
        elif line.startswith("# "):
            out.append(f"<h1>{_html.escape(line[2:])}</h1>")
        elif line:
            out.append(f"<p>{_html.escape(line)}</p>")
    if in_table:
        out.append("</table>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def write_report(store: ResultsStore, path: str | Path,
                 fmt: str | None = None) -> str:
    """Write the report to ``path``; the format follows the suffix
    (``.html`` → HTML, anything else markdown) unless forced."""
    path = Path(path)
    if fmt is None:
        fmt = "html" if path.suffix.lower() in (".html", ".htm") \
            else "markdown"
    text = generate_report(store, fmt)
    path.write_text(text, encoding="utf-8")
    return text
