"""The campaign's persistent warm worker pool.

:mod:`repro.perf.parallel` builds a fresh ``ProcessPoolExecutor`` —
and a fresh L2 shared store — inside *every* driver call, because a
single experiment is its unit of work.  A campaign runs hundreds of
cells, so here the lifetimes invert: one pool of long-lived worker
processes spans the whole campaign, workers pull cells from a shared
queue (the runner enqueues largest-cost cells first so the tail stays
short), and one L2 :class:`repro.perf.shared.SharedStore` plus the L3
disk cache stay attached — and warm — across cells.

Determinism is inherited, not re-argued:

* every cell executes ``run_experiment(name, spec)`` with ``jobs=1``
  — the byte-exact inline reference path — after clearing the L1
  congruence caches, so a cell's float noise cannot depend on which
  cells shared its worker (the same rule ``parallel_map`` applies per
  trial);
* the warm L2 store is keyed by exact input bytes and stores pure
  functions of those bytes (:mod:`repro.perf.shared`), so cross-cell
  reuse is unobservable in rows;
* each completed cell ships its *logical* metric delta back and the
  runner merges it (commutative addition), so campaign counters are
  identical for any pool width.

Worker failures surface as :class:`repro.errors.SimulationError` with
the worker traceback; a hard worker death (the process vanishes) is
detected by liveness polling, never a hang.  Completed cells are
already persisted by then, so a resumed campaign loses at most the
in-flight cells.
"""

from __future__ import annotations

import multiprocessing
import queue
import traceback
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from repro.api import ExperimentSpec

from repro.errors import SimulationError

__all__ = ["CellOutcome", "WarmPool", "run_cell_task"]

_POLL_SECONDS = 0.25


class CellOutcome:
    """What one executed cell sends back to the runner."""

    __slots__ = ("task_id", "record", "journal", "metrics_delta")

    def __init__(self, task_id: str, record: dict, journal: dict,
                 metrics_delta: dict) -> None:
        self.task_id = task_id
        self.record = record
        self.journal = journal
        self.metrics_delta = metrics_delta


def run_cell_task(task: "tuple[str, str, ExperimentSpec]",
                  ) -> tuple[dict, dict, dict]:
    """Execute one campaign cell in the current process.

    ``task`` is ``(digest, experiment, spec)``.  Returns the
    deterministic store record, the journal payload (phase rollups and
    performance counters — wall-clock lives only here), and the cell's
    logical metric delta.  Shared by the pool workers and the inline
    ``jobs=1`` path, which is therefore the byte-exact reference.
    """
    from repro import perf
    from repro.api import run_experiment
    from repro.campaign.store import build_cell_record

    digest, experiment, spec = task
    # Fresh L1 per cell: first-observer conjugation noise must not
    # depend on cell co-residency (same argument as the per-trial
    # reset in repro.perf.parallel).  L2/L3 stay warm — exact-byte
    # keys make them unobservable in rows.
    perf.clear_caches()
    result = run_experiment(experiment, spec)
    record = build_cell_record(digest, experiment, result)
    journal = {
        "kind": "cell-journal",
        "digest": digest,
        "experiment": experiment,
        "phase_totals": result.manifest["timing"]["phases"],
        "backend": dict(result.metrics.get("backend", {})),
    }
    delta = {"counters": dict(result.metrics.get("counters", {})),
             "histograms": dict(result.metrics.get("histograms", {}))}
    return record, journal, delta


def _worker_main(tasks, results, store_name, store_lock,
                 runner=run_cell_task) -> None:
    """Long-lived worker loop: attach the L2 store once, then serve
    tasks through ``runner`` until the ``None`` sentinel arrives."""
    from repro.perf import shared

    if store_name is not None:
        try:
            shared.activate(shared.SharedStore.attach(store_name,
                                                      store_lock))
        except (OSError, ValueError):
            pass  # the store is an accelerator; never fail the worker
    while True:
        task = tasks.get()
        if task is None:
            break
        task_id = task[0]
        try:
            payload = runner(task)
            outcome = ("ok", task_id, payload)
        except Exception as exc:  # noqa: BLE001 — reported to the runner
            outcome = ("err", task_id,
                       f"{type(exc).__name__}: {exc}\n"
                       f"{traceback.format_exc()}")
        store = shared.active_store()
        if store is not None:
            store.flush_stats()
        results.put(outcome)


class WarmPool:
    """``jobs`` persistent workers sharing one task queue and one L2
    store for the lifetime of a campaign (or a query server).

    ``runner`` is the task function every worker executes — a
    module-level callable (it crosses the process boundary by
    pickling) taking one ``(task_id, ...)`` tuple.  The campaign uses
    the default :func:`run_cell_task`; :mod:`repro.serve.dispatch`
    reuses the same pool machinery with its query runner.  The
    streaming :meth:`submit`/:meth:`poll` pair is the primitive
    surface; :meth:`run` is the batch convenience the campaign runner
    calls.
    """

    def __init__(self, jobs: int, runner=run_cell_task) -> None:
        from repro.perf import shared

        self.jobs = max(1, int(jobs))
        self._context = multiprocessing.get_context()
        self._store_lock = self._context.Lock()
        self._store = shared.SharedStore.create(self._store_lock)
        # The segment exists from here on: anything that raises before
        # the workers own a reference would leak it in /dev/shm, so
        # the rest of construction runs under a release-on-failure
        # guard (REP010).
        try:
            self._tasks = self._context.Queue()
            self._results = self._context.Queue()
            self._workers = [
                self._context.Process(
                    target=_worker_main,
                    args=(self._tasks, self._results, self._store.name,
                          self._store_lock, runner),
                    daemon=True)
                for _ in range(self.jobs)]
            for worker in self._workers:
                worker.start()
        except BaseException:
            self._store.close()
            self._store.unlink()
            raise
        self._closed = False

    def run(self, tasks: "Iterable[tuple[str, str, ExperimentSpec]]",
            ) -> Iterator[CellOutcome]:
        """Dispatch ``tasks`` and yield outcomes as cells complete.

        Completion order is scheduling-dependent; callers must key
        everything on the task id (the cell digest), never on arrival
        order.  Raises :class:`SimulationError` on a cell exception or
        a vanished worker.
        """
        tasks = list(tasks)
        for task in tasks:
            self.submit(task)
        pending = len(tasks)
        while pending:
            outcome = self.poll()
            if outcome is None:
                continue
            status, task_id, payload = outcome
            if status == "err":
                raise SimulationError(
                    f"campaign cell {task_id} failed in worker:\n"
                    f"{payload}")
            record, journal, delta = payload
            pending -= 1
            yield CellOutcome(task_id, record, journal, delta)

    def submit(self, task: tuple) -> None:
        """Enqueue one ``(task_id, ...)`` tuple for the workers."""
        self._tasks.put(task)

    def poll(self, timeout: float = _POLL_SECONDS,
             ) -> tuple | None:
        """One raw ``(status, task_id, payload)`` outcome, or ``None``
        if nothing completed within ``timeout``.

        ``status`` is ``"ok"`` or ``"err"`` (payload then carries the
        worker traceback text).  Checks worker liveness on every empty
        poll, so a hard worker death raises :class:`SimulationError`
        within one poll interval instead of hanging.
        """
        try:
            return self._results.get(timeout=timeout)
        except queue.Empty:
            self._check_workers()
            return None

    def _check_workers(self) -> None:
        dead = [worker for worker in self._workers
                if not worker.is_alive()]
        if dead:
            codes = ", ".join(str(worker.exitcode) for worker in dead)
            raise SimulationError(
                f"campaign worker process died unexpectedly "
                f"(exit codes: {codes}; crash or out-of-memory kill)")

    def close(self) -> None:
        """Stop the workers and fold the L2 store's stats into the
        process counters.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        from repro.perf import shared

        for _ in self._workers:
            try:
                self._tasks.put_nowait(None)
            except (OSError, ValueError):
                break
        for worker in self._workers:
            worker.join(timeout=5.0)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
        self._tasks.close()
        self._results.close()
        shared.accumulate_run(self._store.aggregated_stats())
        self._store.close()
        self._store.unlink()

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
