"""Declarative experiment campaigns over the :mod:`repro.api` façade.

The paper's results are a *grid* of runs — (pattern, n, model, seed,
backend) — and this package runs that grid as one unit of work:

* :mod:`repro.campaign.spec` compiles TOML/JSON campaign files into
  ``ExperimentSpec`` grids and keys every cell by a digest of its
  pre-run deterministic spec record;
* :mod:`repro.campaign.runner` executes the grid — resumable
  (completed digests are skipped), coalescing (equal digests run
  once), largest-cell-first;
* :mod:`repro.campaign.pool` is the persistent warm worker pool that
  keeps the L2/L3 caches attached across cells;
* :mod:`repro.campaign.store` persists results (DuckDB with the
  ``campaign`` extra, canonical JSONL otherwise);
* :mod:`repro.campaign.report` regenerates the paper tables from the
  store as SQL.

CLI: ``repro campaign run examples/paper.toml --jobs 4`` then
``repro campaign report``.  See docs/PERFORMANCE.md ("Campaign
throughput") for the design and determinism argument.
"""

from repro.campaign.report import generate_report, write_report
from repro.campaign.runner import CampaignResult, run_campaign
from repro.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    cell_digest,
    load_campaign,
)
from repro.campaign.store import (
    default_store_path,
    duckdb_available,
    open_store,
)

__all__ = [
    "CampaignCell",
    "CampaignResult",
    "CampaignSpec",
    "cell_digest",
    "default_store_path",
    "duckdb_available",
    "generate_report",
    "load_campaign",
    "open_store",
    "run_campaign",
    "write_report",
]
