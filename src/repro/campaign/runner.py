"""The campaign runner: grid in, warm pool through, store out.

:func:`run_campaign` is the one entrypoint behind ``repro campaign
run``.  Pipeline:

1. **Compile** — load the TOML/JSON spec and expand it into
   :class:`repro.campaign.spec.CampaignCell` grid points.
2. **Coalesce** — cells with equal digests collapse onto one
   execution (``campaign.cells.coalesced``): the digest is the
   congruence key for work, exactly as the L1 cache's signature is
   for symmetry detection.
3. **Resume** — digests already present in the results store are
   skipped (``campaign.cells.skipped``); nothing is recomputed.
4. **Order** — pending cells sort largest-estimated-cost first
   (ties broken by digest) so the pool's tail stays short.
5. **Execute** — inline for ``jobs=1`` (the byte-exact reference) or
   on a :class:`repro.campaign.pool.WarmPool`; each completed cell is
   persisted *immediately*, so an interrupted campaign resumes from
   the last completed cell.

The store's canonical export is byte-identical across ``jobs``
values and across interrupted-then-resumed vs. uninterrupted runs —
``tests/campaign`` pins both.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.campaign.spec import (
    CampaignSpec,
    cell_cost,
    cell_digest,
    load_campaign,
)
from repro.campaign.store import ResultsStore, open_store
from repro.errors import ReproError

__all__ = ["CampaignResult", "run_campaign"]


@dataclass(frozen=True)
class CampaignResult:
    """Summary of one ``run_campaign`` invocation."""

    name: str
    store_path: str
    store_kind: str
    jobs: int
    cells_total: int
    cells_coalesced: int
    cells_skipped: int
    cells_executed: int
    cells_pending: int
    elapsed_ms: float

    def render(self) -> str:
        lines = [
            f"campaign {self.name}: {self.cells_total} cells "
            f"({self.jobs} worker{'s' if self.jobs != 1 else ''})",
            f"  executed:  {self.cells_executed}",
            f"  skipped:   {self.cells_skipped} (already in store)",
            f"  coalesced: {self.cells_coalesced} (duplicate digests)",
        ]
        if self.cells_pending:
            lines.append(f"  pending:   {self.cells_pending} "
                         f"(cell budget hit; re-run to resume)")
        lines.append(f"  store:     {self.store_path} "
                     f"({self.store_kind})")
        lines.append(f"  elapsed:   {self.elapsed_ms:.1f} ms")
        return "\n".join(lines)


def _unique_tasks(spec: CampaignSpec) -> tuple[list[tuple], int]:
    """``(digest, experiment, spec)`` per unique digest, in
    declaration order, plus the count of coalesced duplicates."""
    tasks: list[tuple] = []
    seen: set[str] = set()
    coalesced = 0
    for cell in spec.cells:
        digest = cell_digest(cell)
        if digest in seen:
            coalesced += 1
            continue
        seen.add(digest)
        tasks.append((digest, cell.experiment, cell.spec, cell_cost(cell)))
    return tasks, coalesced


def run_campaign(spec: CampaignSpec | str | Path, *, jobs: int = 1,
                 store_path: str | Path | None = None,
                 max_cells: int | None = None,
                 fresh: bool = False,
                 store: ResultsStore | None = None) -> CampaignResult:
    """Run (or resume) a campaign; returns the run summary.

    ``jobs=1`` executes cells inline; ``jobs>=2`` on a persistent
    :class:`WarmPool`.  ``max_cells`` bounds how many cells this
    invocation executes (the resume tests use it to simulate an
    interrupted campaign).  ``fresh`` clears the store first.  An
    explicit ``store`` overrides ``store_path`` (the caller keeps
    ownership and must close it).
    """
    from repro.obs import clock
    from repro.obs import metrics as _metrics

    if not isinstance(spec, CampaignSpec):
        spec = load_campaign(spec)
    if max_cells is not None and max_cells < 0:
        raise ReproError("max_cells must be non-negative")
    jobs = max(1, int(jobs))
    started = clock.monotonic()

    owns_store = store is None
    if store is None:
        store = open_store(store_path)
    try:
        if fresh:
            store.clear()
        tasks, coalesced = _unique_tasks(spec)
        completed = store.completed_digests()
        skipped = [task for task in tasks if task[0] in completed]
        pending = [task for task in tasks if task[0] not in completed]
        # Largest first: the most expensive cell starts immediately,
        # so no worker idles behind one late giant.  Digest tie-break
        # keeps the order a pure function of the spec.
        pending.sort(key=lambda task: (-task[3], task[0]))
        budget_left = 0
        if max_cells is not None and len(pending) > max_cells:
            budget_left = len(pending) - max_cells
            pending = pending[:max_cells]

        reg = _metrics.registry()
        reg.inc("campaign.runs")
        reg.inc("campaign.cells.total", len(spec.cells))
        reg.inc("campaign.cells.coalesced", coalesced)
        reg.inc("campaign.cells.skipped", len(skipped))

        executed = _execute(pending, jobs, store, reg)

        elapsed_ms = (clock.monotonic() - started) * 1000.0
        store.journal_event({
            "kind": "campaign-run",
            "name": spec.name,
            "jobs": jobs,
            "cells_total": len(spec.cells),
            "cells_coalesced": coalesced,
            "cells_skipped": len(skipped),
            "cells_executed": executed,
            "elapsed_ms": round(elapsed_ms, 3),
        })
        return CampaignResult(
            name=spec.name,
            store_path=str(store.path),
            store_kind=store.kind,
            jobs=jobs,
            cells_total=len(spec.cells),
            cells_coalesced=coalesced,
            cells_skipped=len(skipped),
            cells_executed=executed,
            cells_pending=budget_left,
            elapsed_ms=elapsed_ms)
    finally:
        if owns_store:
            store.close()


def _execute(pending: list[tuple], jobs: int, store: ResultsStore,
             reg) -> int:
    """Run the pending cells, persisting each as it completes."""
    from repro.campaign.pool import WarmPool, run_cell_task

    executed = 0
    if not pending:
        return executed
    tasks = [(digest, experiment, spec)
             for digest, experiment, spec, _cost in pending]
    if jobs == 1:
        # Inline: run_experiment's counters land on this registry
        # directly — the returned delta must not be merged again
        # (same rule as parallel_map's inline path).
        for task in tasks:
            record, journal, _delta = run_cell_task(task)
            store.record_cell(record)
            store.journal_event(journal)
            reg.inc("campaign.cells.executed")
            executed += 1
        return executed
    with WarmPool(jobs) as pool:
        for outcome in pool.run(tasks):
            store.record_cell(outcome.record)
            store.journal_event(outcome.journal)
            reg.merge(outcome.metrics_delta)
            reg.inc("campaign.cells.executed")
            executed += 1
    return executed
