"""Declarative campaign specs: TOML/JSON grids over ``repro.api``.

A campaign file names a list of experiments and, per experiment, the
axes to sweep (``seed``, ``trials``, ``backend``, ``cache``).  Any
axis may be a scalar or a list; lists expand to their cartesian
product, so::

    [[experiment]]
    name = "lemma7"
    trials = 10
    seed = [0, 1, 2]

compiles to three :class:`CampaignCell` entries — one
:class:`repro.api.ExperimentSpec` per ``(trials, seed)`` combination.
Expansion order is deterministic: experiments in declaration order,
axes in :data:`GRID_AXES` order, values in listed order.

Each cell is keyed by :func:`cell_digest`, a SHA-256 over the fields
of the cell's *pre-run* manifest spec record
(:func:`repro.api.resolved_spec_record` — the same record the run
manifest's ``deterministic_view`` will carry).  The digest is the
unit of resume (completed digests are skipped on re-run) and of
coalescing (cells with equal digests run once).  REP007 polices this
module: nothing host-, process- or clock-dependent may enter the
preimage, and ``jobs`` is deliberately excluded — pool width is an
execution detail that must not fragment the results store.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.api import ExperimentSpec, experiment_names, resolved_spec_record
from repro.errors import ReproError

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "GRID_AXES",
    "CampaignCell",
    "CampaignSpec",
    "campaign_from_mapping",
    "cell_cost",
    "cell_digest",
    "load_campaign",
]

CAMPAIGN_SCHEMA_VERSION = 1

#: Spec keys that expand into grid axes, in expansion order.
GRID_AXES = ("trials", "seed", "backend", "cache")

_ENTRY_KEYS = frozenset(("name",) + GRID_AXES)
_DEFAULT_KEYS = frozenset(GRID_AXES)

#: Relative cost units per experiment cell at trials=1 — number of
#: sweep cases times a rough per-trial round count.  Only the ordering
#: matters: the runner dispatches largest cells first so the pool's
#: tail is short, and ties break on the digest (deterministic).
_COST_WEIGHTS = {
    "lemma7": 7,
    "theorem41": 65,
    "theorem11": 360,
    "figure1": 30,
    "plane_formation": 70,
    "baseline_2d": 40,
}


@dataclass(frozen=True)
class CampaignCell:
    """One grid point: an experiment name plus its resolved spec.

    ``index`` is the cell's position in deterministic expansion order
    (the tie-break for everything that needs declaration order).
    """

    experiment: str
    spec: ExperimentSpec
    index: int


@dataclass(frozen=True)
class CampaignSpec:
    """A parsed campaign: named, with its expanded cell grid."""

    name: str
    cells: tuple[CampaignCell, ...]
    source: str | None = None


def load_campaign(path: str | Path) -> CampaignSpec:
    """Parse a ``.toml`` or ``.json`` campaign file.

    TOML needs ``tomllib`` (Python 3.11+) or the ``tomli`` backport;
    without either, a clear :class:`ReproError` suggests the JSON
    form, which is always supported.
    """
    path = Path(path)
    if not path.exists():
        raise ReproError(f"campaign spec {path} does not exist")
    text = path.read_text(encoding="utf-8")
    suffix = path.suffix.lower()
    if suffix == ".json":
        data = json.loads(text)
    elif suffix == ".toml":
        data = _parse_toml(text, path)
    else:
        raise ReproError(
            f"campaign spec {path} must be .toml or .json")
    if not isinstance(data, dict):
        raise ReproError(f"campaign spec {path} must be a table/object")
    return campaign_from_mapping(data, source=str(path))


def _parse_toml(text: str, path: Path) -> dict:
    try:
        import tomllib
    except ImportError:
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            raise ReproError(
                f"parsing {path} needs tomllib (Python 3.11+) or the "
                f"tomli package; use the equivalent .json spec on "
                f"older interpreters") from None
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ReproError(f"campaign spec {path} is not valid TOML: "
                         f"{exc}") from exc


def campaign_from_mapping(data: dict,
                          source: str | None = None) -> CampaignSpec:
    """Compile a parsed campaign mapping into its expanded cell grid."""
    name = data.get("name", "campaign")
    if not isinstance(name, str):
        raise ReproError("campaign 'name' must be a string")
    defaults = data.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ReproError("campaign 'defaults' must be a table")
    _reject_unknown_keys("defaults", defaults, _DEFAULT_KEYS)
    entries = data.get("experiment", data.get("experiments"))
    if not isinstance(entries, list) or not entries:
        raise ReproError(
            "campaign spec needs a non-empty [[experiment]] list")
    known = set(data) - {"name", "defaults", "experiment", "experiments",
                         "schema"}
    if known:
        raise ReproError(
            f"unknown campaign keys: {', '.join(sorted(known))}")
    cells: list[CampaignCell] = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise ReproError("each [[experiment]] entry must be a table")
        cells.extend(_expand_entry(entry, defaults, start=len(cells)))
    return CampaignSpec(name=name, cells=tuple(cells), source=source)


def _reject_unknown_keys(where: str, mapping: dict,
                         allowed: frozenset) -> None:
    unknown = set(mapping) - allowed
    if unknown:
        if "jobs" in unknown:
            raise ReproError(
                f"{where}: 'jobs' is not a campaign axis — cells always "
                f"run single-process inside a worker; campaign "
                f"parallelism is the pool width (--jobs / jobs=)")
        raise ReproError(
            f"{where}: unknown keys: {', '.join(sorted(unknown))} "
            f"(allowed: {', '.join(sorted(allowed))})")


def _axis_values(entry: dict, defaults: dict, axis: str) -> list:
    value = entry.get(axis, defaults.get(axis))
    if isinstance(value, list):
        if not value:
            raise ReproError(f"axis {axis!r} must not be an empty list")
        return value
    return [value]


def _expand_entry(entry: dict, defaults: dict,
                  start: int) -> list[CampaignCell]:
    _reject_unknown_keys("experiment entry", entry, _ENTRY_KEYS)
    experiment = entry.get("name")
    if experiment not in experiment_names():
        known = ", ".join(experiment_names())
        raise ReproError(
            f"unknown experiment {experiment!r} in campaign "
            f"(known: {known})")
    combos: list[dict] = [{}]
    for axis in GRID_AXES:
        values = _axis_values(entry, defaults, axis)
        combos = [{**combo, axis: value}
                  for combo in combos for value in values]
    cells = []
    for offset, combo in enumerate(combos):
        seed = combo.get("seed")
        spec = ExperimentSpec(
            trials=combo.get("trials"),
            seed=0 if seed is None else int(seed),
            jobs=1,
            cache=combo.get("cache"),
            backend=combo.get("backend"))
        cells.append(CampaignCell(experiment=experiment, spec=spec,
                                  index=start + offset))
    return cells


def digest_preimage(cell: CampaignCell) -> dict:
    """The exact mapping hashed by :func:`cell_digest`.

    Mirrors the run manifest's ``deterministic_view``: the resolved
    spec record (trials defaults filled in), the experiment name, the
    package identity and the campaign schema version — and nothing
    else.  ``jobs`` is stripped: worker count may not change results
    (the byte-identity contract), so it may not change the key either.
    """
    from repro.obs.manifest import package_info

    record = dict(resolved_spec_record(cell.experiment, cell.spec))
    record.pop("jobs", None)
    return {
        "kind": "campaign-cell",
        "schema": CAMPAIGN_SCHEMA_VERSION,
        "package": package_info(),
        "experiment": cell.experiment,
        "spec": record,
    }


def cell_digest(cell: CampaignCell) -> str:
    """SHA-256 key of one cell's :func:`digest_preimage` (canonical
    JSON — sorted keys, compact separators)."""
    canonical = json.dumps(digest_preimage(cell), sort_keys=True,
                           separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def cell_cost(cell: CampaignCell) -> int:
    """Deterministic relative cost estimate for pool ordering."""
    record = resolved_spec_record(cell.experiment, cell.spec)
    trials = record.get("trials") or 1
    return _COST_WEIGHTS.get(cell.experiment, 50) * max(int(trials), 1)
