"""Campaign results stores: DuckDB when available, JSONL otherwise.

One store holds everything a campaign produced, split into two
sections with different determinism contracts:

* **cells** — one record per completed cell, keyed by the cell digest
  (:func:`repro.campaign.spec.cell_digest`).  A cell record is a pure
  function of ``(experiment, spec)``: the rows, their SHA-256, the
  logical metric counters and the manifest's ``deterministic_view``.
  The canonical export (:meth:`ResultsStore.export_canonical`) is the
  cells sorted by digest as JSON lines, so two campaigns over the same
  spec produce *byte-identical* exports at any worker count and across
  interrupted-then-resumed vs. uninterrupted runs.
* **journal** — append-only events carrying everything that is *not*
  deterministic: per-phase wall-time rollups, cache/backend
  performance counters, run summaries.  Journals never participate in
  the canonical export or in resume decisions.

The DuckDB backend (``.duckdb`` path, ``pip install repro[campaign]``)
additionally flattens rows into a ``rows`` table so paper tables
regenerate as plain SQL; without DuckDB the JSONL backend
(``.jsonl``) serves the same store API minus :meth:`ResultsStore.query`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from repro.api import RunResult

__all__ = [
    "STORE_SCHEMA_VERSION",
    "DuckDBStore",
    "JsonlStore",
    "ResultsStore",
    "build_cell_record",
    "default_store_path",
    "duckdb_available",
    "open_store",
]

STORE_SCHEMA_VERSION = 1

_ENV_DIR = "REPRO_CAMPAIGN_DIR"
_DEFAULT_DIR = ".repro-campaign"


def duckdb_available() -> bool:
    """Whether the optional ``duckdb`` dependency is importable."""
    try:
        import duckdb  # noqa: F401
    except ImportError:
        return False
    return True


def default_store_path(root: str | Path | None = None) -> Path:
    """``.repro-campaign/results.duckdb`` — or ``.jsonl`` without the
    ``campaign`` extra (``REPRO_CAMPAIGN_DIR`` overrides the directory)."""
    base = Path(os.environ.get(_ENV_DIR, _DEFAULT_DIR)) \
        if root is None else Path(root)
    suffix = "duckdb" if duckdb_available() else "jsonl"
    return base / f"results.{suffix}"


def open_store(path: str | Path | None = None) -> "ResultsStore":
    """Open (creating if needed) the results store at ``path``.

    ``.duckdb`` paths require the ``campaign`` extra; when it is
    absent the same path with a ``.jsonl`` suffix is opened instead —
    graceful degrade, reported on the store's ``kind``/``path``.
    """
    path = default_store_path() if path is None else Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".duckdb":
        if duckdb_available():
            return DuckDBStore(path)
        return JsonlStore(path.with_suffix(".jsonl"))
    return JsonlStore(path)


def build_cell_record(digest: str, experiment: str,
                      result: "RunResult") -> dict:
    """The deterministic store record for one completed cell.

    Everything here
    is jobs-invariant by the façade's contracts: rows and their
    digest, the logical counter delta, and the manifest's
    ``deterministic_view``.  Wall-clock phase rollups and cache-luck
    counters belong in the journal, never in this record.
    """
    from repro.obs.manifest import deterministic_view, jsonable_rows

    return {
        "digest": digest,
        "experiment": experiment,
        "spec": dict(result.manifest["spec"]),
        "rows": jsonable_rows(result.rows),
        "rows_sha256": result.manifest["rows"]["sha256"],
        "metrics": dict(result.metrics.get("counters", {})),
        "manifest": deterministic_view(result.manifest),
    }


def _canonical_line(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"),
                      default=str)


def _header_line() -> str:
    return _canonical_line({"kind": "campaign-store",
                            "schema": STORE_SCHEMA_VERSION})


class ResultsStore:
    """Common API of both store backends."""

    kind = "abstract"

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    # -- writes --------------------------------------------------------
    def record_cell(self, record: dict) -> None:
        raise NotImplementedError

    def journal_event(self, event: dict) -> None:
        raise NotImplementedError

    # -- reads ---------------------------------------------------------
    def completed_digests(self) -> set[str]:
        raise NotImplementedError

    def cells(self, experiment: str | None = None) -> list[dict]:
        """Cell records (optionally one experiment), sorted by digest."""
        raise NotImplementedError

    def journal(self) -> list[dict]:
        raise NotImplementedError

    def query(self, sql: str) -> tuple[list[str], list[tuple]]:
        """Run SQL against the store (DuckDB backend only)."""
        raise ReproError(
            "SQL queries need the DuckDB results store (pip install "
            "repro[campaign]); the JSONL fallback supports "
            "export/report/status only")

    # -- shared --------------------------------------------------------
    def export_canonical(self) -> str:
        """Header plus cell records sorted by digest, as JSON lines.

        Byte-identical for byte-identical campaign results, whatever
        backend, worker count, or completion order produced them.
        """
        lines = [_header_line()]
        lines.extend(_canonical_line(record) for record in self.cells())
        return "\n".join(lines) + "\n"

    def clear(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class JsonlStore(ResultsStore):
    """The always-available fallback: canonical JSONL on disk.

    The cells file *is* the canonical export (header line, then cell
    records sorted by digest) and is rewritten atomically on every
    completed cell — crash-interrupted campaigns resume from the last
    fully recorded cell.  The journal is a sibling append-only file.
    """

    kind = "jsonl"

    def __init__(self, path: Path) -> None:
        super().__init__(path)
        self._cells: dict[str, dict] = {}
        self._journal_path = self.path.with_suffix(".journal.jsonl")
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            if record.get("kind") == "campaign-store":
                if record.get("schema") != STORE_SCHEMA_VERSION:
                    raise ReproError(
                        f"campaign store {self.path} has schema "
                        f"{record.get('schema')}; this build reads "
                        f"schema {STORE_SCHEMA_VERSION}")
                continue
            self._cells[record["digest"]] = record

    def _flush(self) -> None:
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(self.export_canonical(), encoding="utf-8")
        os.replace(tmp, self.path)

    def record_cell(self, record: dict) -> None:
        self._cells[record["digest"]] = json.loads(
            _canonical_line(record))
        self._flush()

    def journal_event(self, event: dict) -> None:
        with self._journal_path.open("a", encoding="utf-8") as handle:
            handle.write(_canonical_line(event) + "\n")

    def completed_digests(self) -> set[str]:
        return set(self._cells)

    def cells(self, experiment: str | None = None) -> list[dict]:
        records = [self._cells[digest] for digest in sorted(self._cells)]
        if experiment is not None:
            records = [r for r in records
                       if r.get("experiment") == experiment]
        return records

    def journal(self) -> list[dict]:
        if not self._journal_path.exists():
            return []
        return [json.loads(line) for line in
                self._journal_path.read_text(encoding="utf-8").splitlines()
                if line.strip()]

    def clear(self) -> None:
        self._cells.clear()
        self.path.unlink(missing_ok=True)
        self._journal_path.unlink(missing_ok=True)


class DuckDBStore(ResultsStore):
    """The queryable backend: cells, flattened rows, and the journal
    as DuckDB tables, so ``repro campaign report`` regenerates the
    paper tables with plain SQL."""

    kind = "duckdb"

    def __init__(self, path: Path) -> None:
        super().__init__(path)
        import duckdb

        self._conn = duckdb.connect(str(path))
        self._conn.execute("""
            CREATE TABLE IF NOT EXISTS cells (
                digest VARCHAR PRIMARY KEY,
                experiment VARCHAR NOT NULL,
                rows_sha256 VARCHAR NOT NULL,
                record JSON NOT NULL)""")
        self._conn.execute("""
            CREATE TABLE IF NOT EXISTS rows (
                digest VARCHAR NOT NULL,
                experiment VARCHAR NOT NULL,
                row_index INTEGER NOT NULL,
                row JSON NOT NULL)""")
        self._conn.execute("""
            CREATE TABLE IF NOT EXISTS journal (
                event JSON NOT NULL)""")

    def record_cell(self, record: dict) -> None:
        canonical = _canonical_line(record)
        digest = record["digest"]
        self._conn.execute("BEGIN")
        try:
            self._conn.execute("DELETE FROM rows WHERE digest = ?",
                               [digest])
            self._conn.execute("DELETE FROM cells WHERE digest = ?",
                               [digest])
            self._conn.execute(
                "INSERT INTO cells VALUES (?, ?, ?, ?)",
                [digest, record["experiment"], record["rows_sha256"],
                 canonical])
            for row_index, row in enumerate(record.get("rows", [])):
                self._conn.execute(
                    "INSERT INTO rows VALUES (?, ?, ?, ?)",
                    [digest, record["experiment"], row_index,
                     _canonical_line(row)])
            self._conn.execute("COMMIT")
        except Exception:
            self._conn.execute("ROLLBACK")
            raise

    def journal_event(self, event: dict) -> None:
        self._conn.execute("INSERT INTO journal VALUES (?)",
                           [_canonical_line(event)])

    def completed_digests(self) -> set[str]:
        rows = self._conn.execute("SELECT digest FROM cells").fetchall()
        return {digest for (digest,) in rows}

    def cells(self, experiment: str | None = None) -> list[dict]:
        if experiment is None:
            cursor = self._conn.execute(
                "SELECT record FROM cells ORDER BY digest")
        else:
            cursor = self._conn.execute(
                "SELECT record FROM cells WHERE experiment = ? "
                "ORDER BY digest", [experiment])
        return [json.loads(record) for (record,) in cursor.fetchall()]

    def journal(self) -> list[dict]:
        cursor = self._conn.execute("SELECT event FROM journal")
        return [json.loads(event) for (event,) in cursor.fetchall()]

    def query(self, sql: str) -> tuple[list[str], list[tuple]]:
        cursor = self._conn.execute(sql)
        columns = [desc[0] for desc in cursor.description]
        return columns, cursor.fetchall()

    def clear(self) -> None:
        for table in ("rows", "cells", "journal"):
            self._conn.execute(f"DELETE FROM {table}")

    def close(self) -> None:
        self._conn.close()
