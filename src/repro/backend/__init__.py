"""Pluggable array backends for the swarm-scale kernels.

Selection, in priority order:

1. :func:`set_backend` — explicit, e.g. from
   :class:`repro.api.ExperimentSpec.backend` or the CLI's
   ``--backend`` flag;
2. the ``REPRO_BACKEND`` environment variable;
3. the NumPy reference backend.

A requested backend that fails its capability probe (missing optional
dependency, no device) falls back to NumPy with a warning and a
``backend.fallbacks`` metric increment — runs degrade gracefully, they
never crash on a missing accelerator.

Switching backends clears the L1 congruence caches: cached payloads
(detected groups, alignments) may carry backend-specific floating
noise, and the cache-key purity rule (REP003) forbids smuggling the
backend name into keys whose payloads would then be compared across
backends.  The cross-process L2 keys that *are* backend-dependent get
the backend name appended where they are built (``repro/perf/``).
"""

from __future__ import annotations

import os
import warnings

from repro.backend.base import ArrayBackend, NeighborIndex
from repro.backend.cupy_backend import CupyBackend
from repro.backend.numba_backend import NumbaBackend
from repro.backend.numpy_backend import NumpyBackend

__all__ = [
    "ArrayBackend",
    "NeighborIndex",
    "available_backends",
    "backend_name",
    "get_backend",
    "set_backend",
]

#: Registry of known backends, probe-ordered: the reference
#: implementation first, accelerators after.
_BACKEND_CLASSES: dict[str, type[ArrayBackend]] = {
    "numpy": NumpyBackend,
    "numba": NumbaBackend,
    "cupy": CupyBackend,
}

_ENV_VAR = "REPRO_BACKEND"

_active: ArrayBackend | None = None


def available_backends() -> dict[str, bool]:
    """Probe result for every registered backend name."""
    return {name: cls.is_available()
            for name, cls in _BACKEND_CLASSES.items()}


def _resolve(name: str) -> ArrayBackend:
    """Instantiate ``name``, falling back to NumPy when unavailable."""
    from repro.obs import metrics as _metrics

    cls = _BACKEND_CLASSES.get(name)
    if cls is None:
        known = ", ".join(sorted(_BACKEND_CLASSES))
        _metrics.inc("backend.fallbacks")
        warnings.warn(
            f"unknown backend {name!r} (known: {known}); "
            f"falling back to numpy", RuntimeWarning, stacklevel=3)
        return NumpyBackend()
    if not cls.is_available():
        _metrics.inc("backend.fallbacks")
        warnings.warn(
            f"backend {name!r} is not available in this environment; "
            f"falling back to numpy", RuntimeWarning, stacklevel=3)
        return NumpyBackend()
    return cls()


def get_backend() -> ArrayBackend:
    """The active backend (resolving ``REPRO_BACKEND`` on first use)."""
    global _active  # noqa: PLW0603 -- lifecycle singleton, set here and in set_backend
    if _active is None:
        _active = _resolve(os.environ.get(_ENV_VAR, "numpy"))
    return _active


def backend_name() -> str:
    """Name of the active backend (resolves lazily like get_backend)."""
    return get_backend().name


def set_backend(name: str | None) -> ArrayBackend:
    """Select a backend by name; ``None`` re-reads the environment.

    Returns the backend actually activated (NumPy when the request
    fell back).  Switching away from the current backend clears the
    congruence caches — cached payloads may carry backend-specific
    float noise and must not be served across a switch.
    """
    global _active  # noqa: PLW0603 -- lifecycle singleton, set here and in get_backend
    previous = _active.name if _active is not None else None
    resolved = _resolve(name if name is not None
                        else os.environ.get(_ENV_VAR, "numpy"))
    _active = resolved
    if previous is not None and previous != resolved.name:
        from repro import perf as _perf

        _perf.clear_caches()
    return resolved
