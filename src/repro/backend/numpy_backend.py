"""The always-available NumPy/SciPy reference backend.

Every operation delegates to the exact NumPy/SciPy expression the
kernels used before the backend port, so selecting ``numpy`` (the
default) reproduces the pre-port pipeline bit-for-bit — this is the
implementation the frozen-oracle equivalence suites pin, and the one
accelerator backends are validated against.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.backend.base import ArrayBackend, NeighborIndex

__all__ = ["NumpyBackend", "KDTreeIndex"]


class KDTreeIndex(NeighborIndex):
    """``scipy.spatial.cKDTree`` behind the protocol's query surface."""

    def __init__(self, points) -> None:
        self._tree = cKDTree(np.asarray(points, dtype=float))

    def query(self, points, k: int = 1,
              distance_upper_bound: float = np.inf):
        return self._tree.query(points, k=k,
                                distance_upper_bound=distance_upper_bound)

    def query_ball(self, points, radius: float) -> list:
        return self._tree.query_ball_point(
            np.asarray(points, dtype=float), radius)

    def query_pairs(self, radius: float) -> np.ndarray:
        return self._tree.query_pairs(radius, output_type="ndarray")


class NumpyBackend(ArrayBackend):
    """Reference implementation; always available."""

    name = "numpy"

    @classmethod
    def is_available(cls) -> bool:
        return True

    def capabilities(self) -> dict:
        return {"name": self.name, "device": "cpu", "jit": False}

    def _asarray(self, data, dtype):
        return np.asarray(data, dtype=dtype)

    def _zeros(self, shape, dtype):
        return np.zeros(shape, dtype=dtype)

    def _to_numpy(self, array):
        return np.asarray(array)

    def _einsum(self, spec, *operands):
        return np.einsum(spec, *operands)

    def _matmul(self, a, b):
        return np.matmul(a, b)

    def _pairwise_distances(self, a, b):
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        # The exact expression the matching kernel used pre-port;
        # keeping it verbatim keeps the rows byte-identical.
        return np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2)

    def _argsort(self, values):
        return np.argsort(values)

    def _lexsort(self, keys):
        return np.lexsort(keys)

    def _kabsch(self, src, dst):
        h = np.asarray(src, dtype=float).T @ np.asarray(dst, dtype=float)
        u, _, vt = np.linalg.svd(h)
        rotation = vt.T @ u.T
        if np.linalg.det(rotation) < 0.0:
            correction = np.diag([1.0, 1.0, -1.0])
            rotation = vt.T @ correction @ u.T
        return rotation

    def _neighbor_index(self, points):
        return KDTreeIndex(points)
