"""Optional CuPy backend: GPU einsum/distance/solve kernels.

CuPy is an optional dependency and needs a visible CUDA device — the
probe checks both; when either is missing the selection layer falls
back to NumPy.  The protocol boundary is host-resident NumPy arrays,
so every accelerated op pays explicit host→device→host transfers
(counted on the ``backend.transfers`` metric).  That is the honest
thin-protocol trade-off: per-op transfers only win for the large-``n``
regimes the swarm-scale kernels target, which is exactly where this
backend is meant to be selected.

Nearest-neighbour queries have no CuPy-native index here and fall
back to the host k-d tree (counted as per-op fallbacks).
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.backend.numpy_backend import NumpyBackend

__all__ = ["CupyBackend"]


def _probe() -> bool:
    try:
        if importlib.util.find_spec("cupy") is None:
            return False
        import cupy  # noqa: F401 -- optional dep, spec checked above

        return int(cupy.cuda.runtime.getDeviceCount()) > 0
    except Exception:
        return False


class CupyBackend(NumpyBackend):
    """GPU backend (requires ``cupy`` and a CUDA device)."""

    name = "cupy"

    @classmethod
    def is_available(cls) -> bool:
        return _probe()

    def capabilities(self) -> dict:
        return {"name": self.name, "device": "cuda", "jit": False}

    def _cupy(self):
        import cupy

        return cupy

    def _einsum(self, spec, *operands):
        cp = self._cupy()
        device_ops = [cp.asarray(op) for op in operands]
        self._record_transfer(len(device_ops))
        result = cp.einsum(spec, *device_ops)
        self._record_transfer()
        return cp.asnumpy(result)

    def _pairwise_distances(self, a, b):
        cp = self._cupy()
        da = cp.asarray(np.asarray(a, dtype=float))
        db = cp.asarray(np.asarray(b, dtype=float))
        self._record_transfer(2)
        diff = da[:, None, :] - db[None, :, :]
        dists = cp.sqrt(cp.einsum("ijk,ijk->ij", diff, diff))
        self._record_transfer()
        return cp.asnumpy(dists)

    def _kabsch(self, src, dst):
        cp = self._cupy()
        ds = cp.asarray(np.asarray(src, dtype=float))
        dd = cp.asarray(np.asarray(dst, dtype=float))
        self._record_transfer(2)
        h = ds.T @ dd
        u, _, vt = cp.linalg.svd(h)
        rotation = vt.T @ u.T
        if float(cp.linalg.det(rotation)) < 0.0:
            correction = cp.asarray(np.diag([1.0, 1.0, -1.0]))
            rotation = vt.T @ correction @ u.T
        self._record_transfer()
        return cp.asnumpy(rotation)

    def _neighbor_index(self, points):
        self._record_fallback("neighbor_index")
        return super()._neighbor_index(points)
