"""The array-backend protocol behind the swarm-scale kernels.

An :class:`ArrayBackend` bundles the handful of operations the hot
kernels (symmetry detection, orbit decomposition, the batched Look
phase, ψ_PF matching) spend their time in: allocation, ``einsum``,
pairwise distances, ``argsort``/``lexsort``, the Kabsch solve, and
nearest-neighbour queries.  Kernels call these through
:func:`repro.backend.get_backend` instead of touching ``numpy``/
``scipy``/``numba``/``cupy`` directly (enforced by reprolint REP006),
so a single runtime switch retargets every kernel at once.

Implementations subclass :class:`ArrayBackend` and override the
underscore hooks (``_einsum``, ``_kabsch``, ...).  The public methods
are thin counting wrappers: every call increments a
``backend.calls.<op>`` counter on the process metrics registry, and
implementations report device transfers / per-op fallbacks through
:meth:`ArrayBackend._record_transfer` /
:meth:`ArrayBackend._record_fallback` so ``--cache-stats`` can show
where the work actually ran.

The contract is *value* compatibility with the NumPy reference
implementation: same shapes, same dtypes, and — for the reference
backend itself — bit-identical results (it delegates to the exact
NumPy expressions the kernels used before the port, which is what
keeps the frozen-oracle equivalence suites byte-stable).
"""

from __future__ import annotations

import os

import numpy as np

from repro.obs import metrics as _metrics

__all__ = ["ArrayBackend", "DenseNeighborIndex", "NeighborIndex",
           "DENSE_INDEX_CUTOVER"]

#: Stored-point count at or below which :meth:`ArrayBackend.
#: neighbor_index` serves queries from the brute-force
#: :class:`DenseNeighborIndex` instead of the backend's spatial index.
#: Building a k-d tree costs more than the whole O(m²) dense sweep for
#: small supports, and the small-``n`` detection/matching workloads
#: build a fresh index per verifier — the crossover sits near a few
#: hundred points (measured on ``test_detection_scaling``).  Override
#: with ``REPRO_DENSE_INDEX_CUTOVER`` (0 disables the dense path).
DENSE_INDEX_CUTOVER = int(os.environ.get("REPRO_DENSE_INDEX_CUTOVER", "256"))


class NeighborIndex:
    """Nearest-neighbour index over a fixed ``(m, 3)`` point set.

    The reference implementation wraps ``scipy.spatial.cKDTree``;
    accelerator backends may substitute their own spatial index as
    long as query semantics match (closed balls, Euclidean metric,
    ``k=1`` ties resolved to the lowest index).
    """

    def query(self, points, k: int = 1,
              distance_upper_bound: float = np.inf):
        """Distances and indices of the ``k`` nearest stored points.

        Matches ``cKDTree.query``: misses (beyond the bound) report
        ``inf`` distance and an index equal to the stored point count.
        """
        raise NotImplementedError

    def query_ball(self, points, radius: float) -> list:
        """Indices of stored points within ``radius`` of each query."""
        raise NotImplementedError

    def query_pairs(self, radius: float) -> np.ndarray:
        """``(k, 2)`` array of stored-point pairs within ``radius``."""
        raise NotImplementedError


#: Distance-matrix entries (queries × stored points) a single dense
#: query may compute before the :class:`DenseNeighborIndex` promotes
#: itself to the backend's spatial index.  Brute force wins only while
#: the whole workload is smaller than a tree *build*; past this much
#: work per call the tree's pruned traversal wins by widening margins
#: (measured: a 256-point regular polygon's verifier queries run 20×
#: faster on the k-d tree).
_DENSE_QUERY_WORK = 4_096


class DenseNeighborIndex(NeighborIndex):
    """Brute-force NumPy index with lazy spatial-index promotion.

    Semantics mirror the k-d reference exactly: squared-distance
    comparisons (as ``cKDTree`` performs internally), closed balls,
    misses as ``inf``/``m``, ``k=1`` ties to the lowest stored index.
    Construction is free (the points are stored as-is), which is the
    whole point — the small-``n`` detection and matching paths build a
    fresh index per call, where the tree build dominates the handful
    of tiny queries that follow.  The first query whose dense cost
    exceeds :data:`_DENSE_QUERY_WORK` builds the backend's real
    spatial index once and delegates everything after, so a dense
    index can never lose more than one bounded brute-force pass.
    """

    def __init__(self, points, spatial_factory=None) -> None:
        self._points = np.asarray(points, dtype=float).reshape(-1, 3)
        self._spatial_factory = spatial_factory
        self._spatial = None

    def _promote(self) -> NeighborIndex | None:
        if self._spatial is None and self._spatial_factory is not None:
            self._spatial = self._spatial_factory(self._points)
            _metrics.inc("backend.neighbor_index.dense_promotions")
        return self._spatial

    def _sq_distances(self, queries: np.ndarray) -> np.ndarray:
        diff = queries[:, None, :] - self._points[None, :, :]
        return np.einsum("qmi,qmi->qm", diff, diff)

    def query(self, points, k: int = 1,
              distance_upper_bound: float = np.inf):
        queries = np.asarray(points, dtype=float)
        single = queries.ndim == 1
        queries = queries.reshape(-1, 3)
        m = len(self._points)
        if k != 1 or len(queries) * m > _DENSE_QUERY_WORK:
            spatial = self._promote()
            if spatial is not None:
                return spatial.query(points, k=k,
                                     distance_upper_bound=distance_upper_bound)
            if k != 1:
                raise NotImplementedError(
                    "DenseNeighborIndex serves k=1 queries only")
        d2 = self._sq_distances(queries)
        idx = np.argmin(d2, axis=1)
        dist = np.sqrt(d2[np.arange(len(idx)), idx])
        miss = ~(dist <= distance_upper_bound)
        dist[miss] = np.inf
        idx = np.where(miss, m, idx).astype(np.intp)
        if single:
            return float(dist[0]), int(idx[0])
        return dist, idx

    def query_ball(self, points, radius: float) -> list:
        queries = np.asarray(points, dtype=float)
        single = queries.ndim == 1
        queries = queries.reshape(-1, 3)
        if len(queries) * len(self._points) > _DENSE_QUERY_WORK:
            spatial = self._promote()
            if spatial is not None:
                return spatial.query_ball(points, radius)
        within = self._sq_distances(queries) <= radius * radius
        hits = [np.nonzero(row)[0].tolist() for row in within]
        return hits[0] if single else hits

    def query_pairs(self, radius: float) -> np.ndarray:
        m = len(self._points)
        if m * m > _DENSE_QUERY_WORK:
            spatial = self._promote()
            if spatial is not None:
                return spatial.query_pairs(radius)
        d2 = self._sq_distances(self._points)
        close = np.triu(d2 <= radius * radius, 1)
        ii, jj = np.nonzero(close)
        return np.column_stack([ii, jj]).astype(np.intp)


class ArrayBackend:
    """Protocol of array operations the swarm-scale kernels consume."""

    #: Registry name; also what ``REPRO_BACKEND`` selects.
    name = "abstract"

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    @classmethod
    def is_available(cls) -> bool:
        """True when this backend can run in the current process."""
        return False

    def capabilities(self) -> dict:
        """What this backend accelerates (informational, stable keys)."""
        return {"name": self.name, "device": "cpu", "jit": False}

    # ------------------------------------------------------------------
    # Instrumentation plumbing
    # ------------------------------------------------------------------
    def _record(self, op: str) -> None:
        _metrics.inc(f"backend.calls.{op}")

    def _record_fallback(self, op: str) -> None:
        """An op this backend could not accelerate ran on NumPy."""
        _metrics.inc("backend.fallbacks")

    def _record_transfer(self, count: int = 1) -> None:
        """Host<->device copies performed by the last operation."""
        _metrics.inc("backend.transfers", count)

    # ------------------------------------------------------------------
    # Allocation / movement
    # ------------------------------------------------------------------
    def asarray(self, data, dtype=float) -> np.ndarray:
        self._record("asarray")
        return self._asarray(data, dtype)

    def zeros(self, shape, dtype=float) -> np.ndarray:
        self._record("zeros")
        return self._zeros(shape, dtype)

    def to_numpy(self, array) -> np.ndarray:
        """A host-side ``numpy.ndarray`` view/copy of ``array``."""
        self._record("to_numpy")
        return self._to_numpy(array)

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def einsum(self, spec: str, *operands) -> np.ndarray:
        self._record("einsum")
        return self._einsum(spec, *operands)

    def matmul(self, a, b) -> np.ndarray:
        """Batched matrix product with ``numpy.matmul`` broadcasting.

        The Look phase's ``(n, n, 3) @ (n, 3, 3)`` stacked-frame
        transform goes through here: unlike ``einsum`` (which NumPy
        lowers to an elementwise ``c_einsum`` loop for this spec),
        ``matmul`` dispatches to BLAS and is what keeps one whole-swarm
        round sub-second at ``n = 4096``.
        """
        self._record("matmul")
        return self._matmul(a, b)

    def pairwise_distances(self, a, b) -> np.ndarray:
        """Euclidean distance matrix ``(len(a), len(b))``."""
        self._record("pairwise_distances")
        return self._pairwise_distances(a, b)

    def argsort(self, values) -> np.ndarray:
        self._record("argsort")
        return self._argsort(values)

    def lexsort(self, keys) -> np.ndarray:
        """Indices sorting by the *last* key first (NumPy semantics)."""
        self._record("lexsort")
        return self._lexsort(keys)

    def kabsch(self, src, dst) -> np.ndarray:
        """The rotation minimizing ``Σ |R src_i - dst_i|²`` (det +1)."""
        self._record("kabsch")
        return self._kabsch(src, dst)

    def neighbor_index(self, points) -> NeighborIndex:
        """A :class:`NeighborIndex` over ``points``, sized to fit.

        At or below :data:`DENSE_INDEX_CUTOVER` stored points the
        brute-force :class:`DenseNeighborIndex` answers every query
        faster than a spatial index can be *built* (the small-``n``
        detection and matching paths construct a fresh index per
        round, so build cost dominates); above it the backend's own
        spatial index takes over.  The split is reported on the
        ``backend.neighbor_index.dense`` / ``.kd`` counters and the
        active cutover shows up in ``--cache-stats``.
        """
        self._record("neighbor_index")
        pts = np.asarray(points, dtype=float)
        if len(pts) <= DENSE_INDEX_CUTOVER:
            _metrics.inc("backend.neighbor_index.dense")
            return DenseNeighborIndex(pts,
                                      spatial_factory=self._neighbor_index)
        _metrics.inc("backend.neighbor_index.kd")
        return self._neighbor_index(pts)

    # ------------------------------------------------------------------
    # Implementation hooks
    # ------------------------------------------------------------------
    def _asarray(self, data, dtype):
        raise NotImplementedError

    def _zeros(self, shape, dtype):
        raise NotImplementedError

    def _to_numpy(self, array):
        raise NotImplementedError

    def _einsum(self, spec, *operands):
        raise NotImplementedError

    def _matmul(self, a, b):
        raise NotImplementedError

    def _pairwise_distances(self, a, b):
        raise NotImplementedError

    def _argsort(self, values):
        raise NotImplementedError

    def _lexsort(self, keys):
        raise NotImplementedError

    def _kabsch(self, src, dst):
        raise NotImplementedError

    def _neighbor_index(self, points):
        raise NotImplementedError
