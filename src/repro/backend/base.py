"""The array-backend protocol behind the swarm-scale kernels.

An :class:`ArrayBackend` bundles the handful of operations the hot
kernels (symmetry detection, orbit decomposition, the batched Look
phase, ψ_PF matching) spend their time in: allocation, ``einsum``,
pairwise distances, ``argsort``/``lexsort``, the Kabsch solve, and
nearest-neighbour queries.  Kernels call these through
:func:`repro.backend.get_backend` instead of touching ``numpy``/
``scipy``/``numba``/``cupy`` directly (enforced by reprolint REP006),
so a single runtime switch retargets every kernel at once.

Implementations subclass :class:`ArrayBackend` and override the
underscore hooks (``_einsum``, ``_kabsch``, ...).  The public methods
are thin counting wrappers: every call increments a
``backend.calls.<op>`` counter on the process metrics registry, and
implementations report device transfers / per-op fallbacks through
:meth:`ArrayBackend._record_transfer` /
:meth:`ArrayBackend._record_fallback` so ``--cache-stats`` can show
where the work actually ran.

The contract is *value* compatibility with the NumPy reference
implementation: same shapes, same dtypes, and — for the reference
backend itself — bit-identical results (it delegates to the exact
NumPy expressions the kernels used before the port, which is what
keeps the frozen-oracle equivalence suites byte-stable).
"""

from __future__ import annotations

import numpy as np

from repro.obs import metrics as _metrics

__all__ = ["ArrayBackend", "NeighborIndex"]


class NeighborIndex:
    """Nearest-neighbour index over a fixed ``(m, 3)`` point set.

    The reference implementation wraps ``scipy.spatial.cKDTree``;
    accelerator backends may substitute their own spatial index as
    long as query semantics match (closed balls, Euclidean metric,
    ``k=1`` ties resolved to the lowest index).
    """

    def query(self, points, k: int = 1,
              distance_upper_bound: float = np.inf):
        """Distances and indices of the ``k`` nearest stored points.

        Matches ``cKDTree.query``: misses (beyond the bound) report
        ``inf`` distance and an index equal to the stored point count.
        """
        raise NotImplementedError

    def query_ball(self, points, radius: float) -> list:
        """Indices of stored points within ``radius`` of each query."""
        raise NotImplementedError

    def query_pairs(self, radius: float) -> np.ndarray:
        """``(k, 2)`` array of stored-point pairs within ``radius``."""
        raise NotImplementedError


class ArrayBackend:
    """Protocol of array operations the swarm-scale kernels consume."""

    #: Registry name; also what ``REPRO_BACKEND`` selects.
    name = "abstract"

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    @classmethod
    def is_available(cls) -> bool:
        """True when this backend can run in the current process."""
        return False

    def capabilities(self) -> dict:
        """What this backend accelerates (informational, stable keys)."""
        return {"name": self.name, "device": "cpu", "jit": False}

    # ------------------------------------------------------------------
    # Instrumentation plumbing
    # ------------------------------------------------------------------
    def _record(self, op: str) -> None:
        _metrics.inc(f"backend.calls.{op}")

    def _record_fallback(self, op: str) -> None:
        """An op this backend could not accelerate ran on NumPy."""
        _metrics.inc("backend.fallbacks")

    def _record_transfer(self, count: int = 1) -> None:
        """Host<->device copies performed by the last operation."""
        _metrics.inc("backend.transfers", count)

    # ------------------------------------------------------------------
    # Allocation / movement
    # ------------------------------------------------------------------
    def asarray(self, data, dtype=float) -> np.ndarray:
        self._record("asarray")
        return self._asarray(data, dtype)

    def zeros(self, shape, dtype=float) -> np.ndarray:
        self._record("zeros")
        return self._zeros(shape, dtype)

    def to_numpy(self, array) -> np.ndarray:
        """A host-side ``numpy.ndarray`` view/copy of ``array``."""
        self._record("to_numpy")
        return self._to_numpy(array)

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def einsum(self, spec: str, *operands) -> np.ndarray:
        self._record("einsum")
        return self._einsum(spec, *operands)

    def pairwise_distances(self, a, b) -> np.ndarray:
        """Euclidean distance matrix ``(len(a), len(b))``."""
        self._record("pairwise_distances")
        return self._pairwise_distances(a, b)

    def argsort(self, values) -> np.ndarray:
        self._record("argsort")
        return self._argsort(values)

    def lexsort(self, keys) -> np.ndarray:
        """Indices sorting by the *last* key first (NumPy semantics)."""
        self._record("lexsort")
        return self._lexsort(keys)

    def kabsch(self, src, dst) -> np.ndarray:
        """The rotation minimizing ``Σ |R src_i - dst_i|²`` (det +1)."""
        self._record("kabsch")
        return self._kabsch(src, dst)

    def neighbor_index(self, points) -> NeighborIndex:
        self._record("neighbor_index")
        return self._neighbor_index(points)

    # ------------------------------------------------------------------
    # Implementation hooks
    # ------------------------------------------------------------------
    def _asarray(self, data, dtype):
        raise NotImplementedError

    def _zeros(self, shape, dtype):
        raise NotImplementedError

    def _to_numpy(self, array):
        raise NotImplementedError

    def _einsum(self, spec, *operands):
        raise NotImplementedError

    def _pairwise_distances(self, a, b):
        raise NotImplementedError

    def _argsort(self, values):
        raise NotImplementedError

    def _lexsort(self, keys):
        raise NotImplementedError

    def _kabsch(self, src, dst):
        raise NotImplementedError

    def _neighbor_index(self, points):
        raise NotImplementedError
