"""Optional Numba backend: JIT-compiled CPU kernels.

Numba is an optional dependency — this module must import cleanly
without it (:meth:`NumbaBackend.is_available` probes for it; the
selection layer falls back to NumPy when the probe fails).  The
``numba`` import itself therefore only happens inside the lazily
compiled kernel factory.

Only the einsum contractions the hot kernels actually issue are
compiled (``cij,mj->cmi`` for candidate verification, ``nji,nkj->nki``
for the Look phase, ``gij,j->gi`` for orbit images); every other spec
falls back to ``np.einsum`` and is counted as a per-op fallback so the
``backend.fallbacks`` metric shows exactly how much of a run left the
JIT path.  The compiled loops use the same fixed-length inner products
NumPy uses for 3-vectors, so results agree with the reference backend.

Nearest-neighbour queries stay on ``cKDTree`` (a JIT'd linear scan
loses to the tree for the shell sizes the detector produces).
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.backend.numpy_backend import NumpyBackend

__all__ = ["NumbaBackend"]


def _probe() -> bool:
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):
        return False


class NumbaBackend(NumpyBackend):
    """JIT-compiled CPU backend (requires ``numba``)."""

    name = "numba"

    def __init__(self) -> None:
        self._kernels: dict | None = None

    @classmethod
    def is_available(cls) -> bool:
        return _probe()

    def capabilities(self) -> dict:
        return {"name": self.name, "device": "cpu", "jit": True}

    def _compiled(self) -> dict:
        """Compile the kernel set on first use (import cost is lazy)."""
        if self._kernels is None:
            import numba  # noqa: F401 -- optional dep, probed above

            @numba.njit(cache=True, fastmath=False)
            def rotate_batch(rots, points):
                # einsum("cij,mj->cmi"): image of every point under
                # every candidate rotation.
                c = rots.shape[0]
                m = points.shape[0]
                out = np.empty((c, m, 3))
                for a in range(c):
                    for b in range(m):
                        for i in range(3):
                            out[a, b, i] = (
                                rots[a, i, 0] * points[b, 0]
                                + rots[a, i, 1] * points[b, 1]
                                + rots[a, i, 2] * points[b, 2])
                return out

            @numba.njit(cache=True, fastmath=False)
            def look_batch(rots, rel):
                # einsum("nji,nkj->nki"): every robot's local view of
                # every position (note the transposed rotation).
                n = rots.shape[0]
                k = rel.shape[1]
                out = np.empty((n, k, 3))
                for a in range(n):
                    for b in range(k):
                        for i in range(3):
                            out[a, b, i] = (
                                rots[a, 0, i] * rel[a, b, 0]
                                + rots[a, 1, i] * rel[a, b, 1]
                                + rots[a, 2, i] * rel[a, b, 2])
                return out

            @numba.njit(cache=True, fastmath=False)
            def orbit_images(rots, point):
                # einsum("gij,j->gi"): one seed point under the whole
                # group stack.
                g = rots.shape[0]
                out = np.empty((g, 3))
                for a in range(g):
                    for i in range(3):
                        out[a, i] = (rots[a, i, 0] * point[0]
                                     + rots[a, i, 1] * point[1]
                                     + rots[a, i, 2] * point[2])
                return out

            @numba.njit(cache=True, fastmath=False)
            def pairwise(a, b):
                na = a.shape[0]
                nb = b.shape[0]
                out = np.empty((na, nb))
                for i in range(na):
                    for j in range(nb):
                        dx = a[i, 0] - b[j, 0]
                        dy = a[i, 1] - b[j, 1]
                        dz = a[i, 2] - b[j, 2]
                        out[i, j] = np.sqrt(dx * dx + dy * dy + dz * dz)
                return out

            self._kernels = {
                "cij,mj->cmi": rotate_batch,
                "nji,nkj->nki": look_batch,
                "gij,j->gi": orbit_images,
                "pairwise": pairwise,
            }
        return self._kernels

    def _einsum(self, spec, *operands):
        kernel = self._compiled().get(spec)
        if kernel is None or len(operands) != 2:
            self._record_fallback("einsum")
            return np.einsum(spec, *operands)
        a = np.ascontiguousarray(operands[0], dtype=float)
        b = np.ascontiguousarray(operands[1], dtype=float)
        return kernel(a, b)

    def _pairwise_distances(self, a, b):
        kernel = self._compiled()["pairwise"]
        return kernel(np.ascontiguousarray(a, dtype=float),
                      np.ascontiguousarray(b, dtype=float))
