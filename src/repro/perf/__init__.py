"""Congruence-keyed memoization and the three-level cache hierarchy.

Every robot in the FSYNC model observes the *same* configuration up to
a similarity transform (its local frame rotates and scales the global
one), so within one Look–Compute–Move round the scheduler triggers
``n + 1`` symmetry detections of mutually congruent point sets.  The
caches in this package key results by a similarity-invariant signature
(:func:`repro.core.signatures.congruence_signature`), re-align the
stored canonical result onto the query with one certified rotation,
and therefore pay the full ``γ(P)`` / ``ϱ(P)`` cost only once per
congruence class per round.

The package is organized as a cache hierarchy:

* **L1** (:mod:`repro.perf.cache`, :mod:`repro.perf.round`) — the
  in-process congruence and indexed-round caches;
* **L2** (:mod:`repro.perf.shared`) — a cross-process read-mostly
  shared-memory store keyed by digests of exact input bytes, shared by
  the workers of a parallel experiment run;
* **L3** (:mod:`repro.perf.disk`) — an on-disk persistent store under
  ``.repro-cache/`` for cold-start artifacts (group catalog, subgroup
  lattices, pattern signatures), keyed by package version.

:mod:`repro.perf.parallel` runs experiment trials over a process pool
with zero-copy shared-memory inputs (:mod:`repro.perf.blocks`), and
:func:`hierarchy_stats` snapshots uniform hit/miss/eviction/bytes
counters across all three levels.

See ``docs/PERFORMANCE.md`` for the design and the argument for why
congruence-invariant keys — and exact-byte keys across processes —
are safe.
"""

from repro.perf.cache import (
    cache_bytes,
    cache_stats,
    cached_subgroups,
    cached_symmetricity,
    cached_symmetry,
    clear_caches,
    is_enabled,
    probe_symmetry,
    set_enabled,
)
from repro.perf.parallel import parallel_map, seeded_trials, spawn_seeds
from repro.perf.round import (
    cached_equivariant_points,
    cached_invariant,
    incremental_enabled,
    prime_symmetry,
    round_view,
    set_incremental,
)
from repro.perf.stats import format_hierarchy, hierarchy_stats

__all__ = [
    "cache_bytes",
    "cache_stats",
    "cached_equivariant_points",
    "cached_invariant",
    "cached_subgroups",
    "cached_symmetricity",
    "cached_symmetry",
    "clear_caches",
    "format_hierarchy",
    "hierarchy_stats",
    "incremental_enabled",
    "is_enabled",
    "parallel_map",
    "prime_symmetry",
    "probe_symmetry",
    "round_view",
    "seeded_trials",
    "set_enabled",
    "set_incremental",
    "spawn_seeds",
]
