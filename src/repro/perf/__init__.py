"""Congruence-keyed memoization of the expensive symmetry pipeline.

Every robot in the FSYNC model observes the *same* configuration up to
a similarity transform (its local frame rotates and scales the global
one), so within one Look–Compute–Move round the scheduler triggers
``n + 1`` symmetry detections of mutually congruent point sets.  The
caches in this package key results by a similarity-invariant signature
(:func:`repro.core.signatures.congruence_signature`), re-align the
stored canonical result onto the query with one certified rotation,
and therefore pay the full ``γ(P)`` / ``ϱ(P)`` cost only once per
congruence class per round.

See ``docs/PERFORMANCE.md`` for the design and the argument for why
congruence-invariant keys are safe.
"""

from repro.perf.cache import (
    cache_stats,
    cached_subgroups,
    cached_symmetricity,
    cached_symmetry,
    clear_caches,
    is_enabled,
    set_enabled,
)
from repro.perf.parallel import parallel_map, seeded_trials
from repro.perf.round import (
    cached_equivariant_points,
    cached_invariant,
    round_view,
)

__all__ = [
    "cache_stats",
    "cached_equivariant_points",
    "cached_invariant",
    "cached_subgroups",
    "cached_symmetricity",
    "cached_symmetry",
    "clear_caches",
    "is_enabled",
    "parallel_map",
    "round_view",
    "seeded_trials",
    "set_enabled",
]
