"""Deterministic parallel fan-out for randomized experiment trials.

The experiment drivers validate the paper's claims by randomized
adversary sweeps: many independent trials, each seeded as
``default_rng(seed + t)``.  Trials share no state, so they map onto a
process pool — *provided* the fan-out cannot change the answer.  Two
rules make results bit-identical for any worker count:

* **per-trial seeding** — the trial index alone determines the RNG
  stream; nothing is drawn from a shared generator whose consumption
  order would depend on scheduling;
* **per-trial cache reset** — each trial starts from empty congruence
  caches, so a trial's float noise (conjugated cache hits vs direct
  computation) does not depend on which trials happened to run in the
  same worker before it.

Workers that raise surface as a clean :class:`SimulationError` in the
parent (with the worker traceback in the message) instead of a hung or
poisoned pool; a hard worker death (``BrokenProcessPool``) is mapped
to the same error type.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.errors import SimulationError

__all__ = ["parallel_map", "seeded_trials"]


def _guarded_call(payload):
    """Top-level (picklable) wrapper catching worker exceptions."""
    fn, item, fresh_caches = payload
    try:
        if fresh_caches:
            from repro.perf import clear_caches

            clear_caches()
        return ("ok", fn(item))
    except Exception as exc:  # noqa: BLE001 — reported to the parent
        return ("err", f"{type(exc).__name__}: {exc}\n"
                       f"{traceback.format_exc()}")


def _unwrap(outcome):
    status, value = outcome
    if status == "err":
        raise SimulationError(f"experiment trial failed in worker:\n{value}")
    return value


def parallel_map(fn, items, jobs: int = 1, *,
                 fresh_caches: bool = True) -> list:
    """``[fn(x) for x in items]`` over a process pool, order preserved.

    ``fn`` must be picklable (a module-level function).  ``jobs <= 1``
    runs inline — same code path, no pool — so a sequential run is the
    exact reference for any parallel one.  ``fresh_caches`` clears the
    congruence caches before every item (see the module docstring; pass
    False only for workloads that are cache-state independent).
    """
    items = list(items)
    jobs = max(1, int(jobs))
    payloads = [(fn, item, fresh_caches) for item in items]
    if jobs == 1 or len(items) <= 1:
        return [_unwrap(_guarded_call(p)) for p in payloads]
    chunksize = max(1, len(items) // (4 * jobs))
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(pool.map(_guarded_call, payloads,
                                     chunksize=chunksize))
    except BrokenProcessPool as exc:
        raise SimulationError(
            "experiment worker process died unexpectedly "
            "(crash or out-of-memory kill)") from exc
    return [_unwrap(outcome) for outcome in outcomes]


def seeded_trials(fn, trials: int, *, seed: int = 0,
                  jobs: int = 1) -> list:
    """Run ``fn(seed + t)`` for ``t in range(trials)``, fanned out.

    The per-trial derived seed is the paper-sweep convention used by
    every experiment driver; results come back ordered by ``t`` and
    are bit-identical for any ``jobs`` value.
    """
    return parallel_map(fn, [int(seed) + t for t in range(int(trials))],
                        jobs=jobs)
