"""Deterministic zero-copy parallel fan-out for experiment trials.

The experiment drivers validate the paper's claims by randomized
adversary sweeps: many independent trials, each seeded from its own
``SeedSequence`` child stream.  Trials share no mutable state, so they
map onto a process pool — *provided* the fan-out cannot change the
answer.  Three rules make results bit-identical for any worker count:

* **per-trial seeding** — ``SeedSequence(seed).spawn(n)`` gives every
  trial a statistically independent stream determined by ``(seed,
  trial index)`` alone; nothing is drawn from a shared generator whose
  consumption order would depend on scheduling.  (The earlier
  ``default_rng(seed + t)`` convention collided across adjacent
  experiment seeds — ``seed=1, t=2`` and ``seed=2, t=1`` shared a
  stream.)
* **per-trial L1 reset** — each trial starts from empty congruence
  caches, so a trial's float noise (conjugated cache hits vs direct
  computation) does not depend on which trials happened to run in the
  same worker before it.
* **exact-key L2 sharing** — the cross-process store
  (:mod:`repro.perf.shared`) is keyed by digests of exact input bytes
  and stores only pure functions of those bytes, so *which* worker
  published a value is unobservable in the results.

Dispatch is chunked (one pickled task per chunk of trials, not per
trial) and trial inputs travel as :class:`repro.perf.blocks.ArrayRef`
shared-memory descriptors, so per-task IPC is a few hundred bytes.
Each chunk also ships back its logical-metric delta
(:mod:`repro.obs.metrics`); the parent merges the deltas, so the
``--jobs 1`` and ``--jobs N`` registries report identical counters.

Workers that raise surface as a clean :class:`SimulationError` in the
parent (with the worker traceback in the message) instead of a hung or
poisoned pool; a hard worker death (``BrokenProcessPool``) is mapped
to the same error type.
"""

from __future__ import annotations

import math
import multiprocessing
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.errors import SimulationError

__all__ = ["parallel_map", "seeded_trials", "spawn_seeds"]


def spawn_seeds(seed: int, count: int) -> list[np.random.SeedSequence]:
    """One independent ``SeedSequence`` child per trial.

    The exact contract (pinned by a regression test): child ``t`` is
    ``SeedSequence(seed).spawn(count)[t]``, i.e. it carries
    ``entropy == seed`` and ``spawn_key == (t,)``.  Children of
    *adjacent* parent seeds therefore never collide — unlike the
    naive ``default_rng(seed + t)``, where trial ``t`` of seed ``s``
    is trial ``t-1`` of seed ``s+1``.
    """
    from repro.obs import metrics as _metrics

    _metrics.inc("seeds.spawned", int(count))
    return list(np.random.SeedSequence(int(seed)).spawn(int(count)))


def _run_one(fn, item, fresh_caches: bool):
    if fresh_caches:
        from repro.perf import clear_caches

        clear_caches()
    return fn(item)


def _guarded_chunk(payload):
    """Top-level (picklable) wrapper running one chunk of items.

    Returns ``(outcomes, metrics_delta)``: the per-item results plus
    the chunk's logical-metric activity (the difference of registry
    snapshots taken around the chunk).  The parent merges the deltas
    of a pooled run into its own registry; merge is commutative
    addition (min-of-mins/max-of-maxes for histograms), so the merged
    totals equal the inline totals for any chunking.
    """
    fn, chunk, fresh_caches = payload
    from repro.obs import metrics as _metrics

    metrics_before = _metrics.registry().snapshot()
    outcomes = []
    for item in chunk:
        try:
            outcomes.append(("ok", _run_one(fn, item, fresh_caches)))
        except Exception as exc:  # noqa: BLE001 — reported to the parent
            outcomes.append(("err", f"{type(exc).__name__}: {exc}\n"
                                    f"{traceback.format_exc()}"))
    from repro.perf import shared

    store = shared.active_store()
    if store is not None:
        store.flush_stats()
    delta = _metrics.snapshot_delta(metrics_before,
                                    _metrics.registry().snapshot())
    return outcomes, delta


def _worker_init(store_name, store_lock) -> None:
    """Pool initializer: attach this worker to the run's L2 store."""
    if store_name is None:
        return
    from repro.perf import shared

    try:
        shared.activate(shared.SharedStore.attach(store_name, store_lock))
    except (OSError, ValueError):
        pass  # the store is an accelerator; never fail the worker


def _unwrap(outcome):
    status, value = outcome
    if status == "err":
        raise SimulationError(f"experiment trial failed in worker:\n{value}")
    return value


def parallel_map(fn, items, jobs: int = 1, *, fresh_caches: bool = True,
                 chunk_size: int | None = None) -> list:
    """``[fn(x) for x in items]`` over a process pool, order preserved.

    ``fn`` must be picklable (a module-level function).  ``jobs <= 1``
    runs inline — same guarded code path, no pool, no L2 store — so a
    sequential run is the byte-exact reference for any parallel one.
    ``fresh_caches`` clears the L1 congruence caches before every item
    (see the module docstring; pass False only for workloads that are
    cache-state independent).  ``chunk_size`` bounds per-task pickling
    overhead; the default aims at four chunks per worker.
    """
    from repro.perf import shared

    items = list(items)
    jobs = max(1, int(jobs))
    if jobs == 1 or len(items) <= 1:
        # Inline: increments land on this process's registry directly;
        # the returned delta is what a worker would have shipped back
        # and must not be merged a second time.
        outcomes, _ = _guarded_chunk((fn, items, fresh_caches))
        return [_unwrap(outcome) for outcome in outcomes]

    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(items) / (4 * jobs)))
    chunks = [items[i:i + chunk_size]
              for i in range(0, len(items), chunk_size)]
    payloads = [(fn, chunk, fresh_caches) for chunk in chunks]

    context = multiprocessing.get_context()
    lock = context.Lock()
    store = shared.SharedStore.create(lock)
    try:
        with ProcessPoolExecutor(
                max_workers=jobs, mp_context=context,
                initializer=_worker_init,
                initargs=(store.name, lock)) as pool:
            chunk_results = list(pool.map(_guarded_chunk, payloads))
    except BrokenProcessPool as exc:
        raise SimulationError(
            "experiment worker process died unexpectedly "
            "(crash or out-of-memory kill)") from exc
    finally:
        shared.accumulate_run(store.aggregated_stats())
        store.close()
        store.unlink()
    from repro.obs import metrics as _metrics

    for _, delta in chunk_results:
        _metrics.registry().merge(delta)
    return [_unwrap(outcome)
            for outcomes, _ in chunk_results for outcome in outcomes]


def seeded_trials(fn, trials: int, *, seed: int = 0,
                  jobs: int = 1) -> list:
    """Run ``fn(stream_t)`` for ``t in range(trials)``, fanned out.

    ``stream_t`` is the ``t``-th ``SeedSequence`` child of ``seed``
    (``entropy == seed``, ``spawn_key == (t,)``, see
    :func:`spawn_seeds`) — pass it to ``np.random.default_rng``.
    Results come back ordered by ``t`` and are bit-identical for any
    ``jobs`` value.
    """
    return parallel_map(fn, spawn_seeds(seed, trials), jobs=jobs)
