"""L2 — the cross-process read-mostly shared-memory store.

One ``multiprocessing.shared_memory`` segment shared by every worker
of a parallel experiment run.  The segment is an append-only log with
a fixed header::

    [magic u64][capacity u64][entry_count u64][data_end u64]
    [aggregated stats: 7 x u64]
    ... 4096-byte header boundary ...
    [key_len u64][payload_len u64][writer_pid u64][key][payload] ...

* **Copy-on-miss, single-writer publication.**  A worker that misses
  computes the value itself, then appends it under the store lock —
  checking first whether a sibling already published the key, so each
  key is written at most once.  Published records are immutable, which
  is why readers can scan the log outside the lock.
* **Determinism.**  Keys are digests of *exact input bytes*
  (:func:`repro.perf.stats.exact_digest`) and every stored value is a
  pure deterministic function of the key's preimage.  The key → value
  map is therefore independent of worker count and publication order:
  a race can only duplicate work, never change a value, so experiment
  rows stay bit-identical for any ``--jobs``.
* **Read-mostly by construction.**  Each process keeps a local index
  (key → offset) and a scan cursor; lookups after the first scan touch
  no locks at all.

Capacity defaults to 32 MiB (``REPRO_L2_BYTES`` overrides).  A full
segment rejects further publications (counted) — computation always
proceeds locally.
"""

from __future__ import annotations

import os
import pickle
import struct
from multiprocessing import shared_memory

__all__ = [
    "SharedStore",
    "activate",
    "active_store",
    "deactivate",
    "l2_stats",
    "shared_get_or_compute",
]

_MAGIC = 0x5250_524F_4C32_0001  # "RPRO L2", versioned
_HEADER_BYTES = 4096
_U64 = struct.Struct("<Q")
_RECORD_HEAD = struct.Struct("<QQQ")

_OFF_MAGIC = 0
_OFF_CAPACITY = 8
_OFF_COUNT = 16
_OFF_DATA_END = 24
_OFF_STATS = 32

_STAT_FIELDS = ("hits", "remote_hits", "misses", "publishes",
                "rejected", "bytes_served", "bytes_stored")

_DEFAULT_CAPACITY = 32 * 1024 * 1024
_ENV_CAPACITY = "REPRO_L2_BYTES"

_MISS = object()


def _zero_stats() -> dict:
    return {field: 0 for field in _STAT_FIELDS}


class SharedStore:
    """One shared segment plus this process's view of it."""

    def __init__(self, shm: shared_memory.SharedMemory, lock,
                 owner: bool) -> None:
        self._shm = shm
        self._lock = lock
        self._owner = owner
        self._buf = shm.buf
        self._index: dict[bytes, tuple[int, int, int]] = {}
        self._cursor = _HEADER_BYTES
        self.local = _zero_stats()

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def create(cls, lock, capacity: int | None = None) -> "SharedStore":
        if capacity is None:
            capacity = int(os.environ.get(_ENV_CAPACITY, _DEFAULT_CAPACITY))
        capacity = max(capacity, 2 * _HEADER_BYTES)
        shm = shared_memory.SharedMemory(create=True, size=capacity)
        # From this line the segment exists in /dev/shm; a failure
        # before the caller owns the store would leak it, so header
        # initialization runs under a release-on-failure guard
        # (REP010).
        try:
            store = cls(shm, lock, owner=True)
            _U64.pack_into(shm.buf, _OFF_MAGIC, _MAGIC)
            _U64.pack_into(shm.buf, _OFF_CAPACITY, shm.size)
            _U64.pack_into(shm.buf, _OFF_COUNT, 0)
            _U64.pack_into(shm.buf, _OFF_DATA_END, _HEADER_BYTES)
            for i in range(len(_STAT_FIELDS)):
                _U64.pack_into(shm.buf, _OFF_STATS + 8 * i, 0)
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return store

    @classmethod
    def attach(cls, name: str, lock) -> "SharedStore":
        # Note on lifetime: the resource tracker's registration cache
        # is shared with forked pool workers (they inherit the tracker
        # socket), so an attaching worker must NOT unregister the name
        # — the owner's ``unlink`` performs the single unregistration.
        shm = shared_memory.SharedMemory(name=name)
        store = cls(shm, lock, owner=False)
        (magic,) = _U64.unpack_from(shm.buf, _OFF_MAGIC)
        if magic != _MAGIC:
            raise ValueError("shared store segment has wrong magic")
        return store

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        self._index.clear()
        self._buf = None
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        if self._owner:
            try:
                self._shm.unlink()
            except OSError:
                pass

    # -- log scanning --------------------------------------------------
    def _scan_to(self, end: int) -> None:
        buf = self._buf
        offset = self._cursor
        while offset + _RECORD_HEAD.size <= end:
            key_len, payload_len, pid = _RECORD_HEAD.unpack_from(buf, offset)
            key_start = offset + _RECORD_HEAD.size
            payload_start = key_start + key_len
            record_end = payload_start + payload_len
            if record_end > end:
                break  # partially published — next refresh picks it up
            key = bytes(buf[key_start:payload_start])
            self._index[key] = (payload_start, payload_len, pid)
            offset = record_end + (-record_end) % 8
        self._cursor = offset

    def _acquire(self, timeout: float = 5.0) -> bool:
        # Timeout-guarded: a worker killed mid-critical-section must
        # degrade the store to local computation, never deadlock the
        # run.  (Stats reads fall back to racy u64 reads, which is
        # harmless; publications are simply skipped.)
        return self._lock.acquire(timeout=timeout)

    def _refresh(self) -> None:
        if self._acquire(timeout=1.0):
            try:
                (end,) = _U64.unpack_from(self._buf, _OFF_DATA_END)
            finally:
                self._lock.release()
        else:
            (end,) = _U64.unpack_from(self._buf, _OFF_DATA_END)
        if end > self._cursor:
            self._scan_to(end)

    # -- the store API -------------------------------------------------
    def lookup(self, full_key: bytes):
        """The stored value, or the module-private miss sentinel."""
        entry = self._index.get(full_key)
        if entry is None:
            self._refresh()
            entry = self._index.get(full_key)
        if entry is None:
            return _MISS
        offset, length, pid = entry
        payload = bytes(self._buf[offset:offset + length])
        self.local["hits"] += 1
        if pid != os.getpid():
            self.local["remote_hits"] += 1
        self.local["bytes_served"] += length
        return pickle.loads(payload)

    def publish(self, full_key: bytes, payload: bytes) -> bool:
        """Append one record; False if raced away or out of space."""
        record_len = _RECORD_HEAD.size + len(full_key) + len(payload)
        if not self._acquire():
            self.local["rejected"] += 1
            return False
        try:
            (end,) = _U64.unpack_from(self._buf, _OFF_DATA_END)
            if end > self._cursor:
                self._scan_to(end)
            if full_key in self._index:
                return False  # a sibling won the race — identical value
            (capacity,) = _U64.unpack_from(self._buf, _OFF_CAPACITY)
            if end + record_len > capacity:
                self.local["rejected"] += 1
                return False
            _RECORD_HEAD.pack_into(self._buf, end,
                                   len(full_key), len(payload), os.getpid())
            key_start = end + _RECORD_HEAD.size
            payload_start = key_start + len(full_key)
            self._buf[key_start:payload_start] = full_key
            self._buf[payload_start:payload_start + len(payload)] = payload
            new_end = payload_start + len(payload)
            new_end += (-new_end) % 8
            (count,) = _U64.unpack_from(self._buf, _OFF_COUNT)
            _U64.pack_into(self._buf, _OFF_DATA_END, new_end)
            _U64.pack_into(self._buf, _OFF_COUNT, count + 1)
        finally:
            self._lock.release()
        self._index[full_key] = (payload_start, len(payload), os.getpid())
        self._cursor = max(self._cursor, new_end)
        self.local["publishes"] += 1
        self.local["bytes_stored"] += len(payload)
        return True

    def get_or_compute(self, kind: str, key: bytes, compute):
        full_key = kind.encode() + b":" + key
        value = self.lookup(full_key)
        if value is not _MISS:
            return value
        value = compute()
        self.local["misses"] += 1
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 — unpicklable values stay local
            return value
        self.publish(full_key, payload)
        return value

    # -- statistics ----------------------------------------------------
    def flush_stats(self) -> None:
        """Fold this process's counters into the segment header."""
        if all(v == 0 for v in self.local.values()):
            return
        if not self._acquire(timeout=1.0):
            return  # keep local counters; try again at the next flush
        try:
            for i, field in enumerate(_STAT_FIELDS):
                offset = _OFF_STATS + 8 * i
                (current,) = _U64.unpack_from(self._buf, offset)
                _U64.pack_into(self._buf, offset,
                               current + self.local[field])
        finally:
            self._lock.release()
        self.local = _zero_stats()

    def aggregated_stats(self) -> dict:
        """Header counters plus this process's unflushed ones."""
        snapshot = {}
        locked = self._acquire(timeout=1.0)
        try:
            for i, field in enumerate(_STAT_FIELDS):
                (value,) = _U64.unpack_from(self._buf, _OFF_STATS + 8 * i)
                snapshot[field] = value + self.local[field]
            (snapshot["entries"],) = _U64.unpack_from(self._buf, _OFF_COUNT)
        finally:
            if locked:
                self._lock.release()
        return snapshot


# -- module-level plumbing ---------------------------------------------

_active: SharedStore | None = None

_cumulative = _zero_stats()
_cumulative["entries"] = 0
_cumulative["runs"] = 0


def activate(store: SharedStore) -> None:
    """Route :func:`shared_get_or_compute` through ``store``."""
    global _active  # reprolint: disable=REP003 -- audited lifecycle singleton: L2 store activation for the worker process
    _active = store


def deactivate() -> None:
    global _active  # reprolint: disable=REP003 -- audited lifecycle singleton: L2 store deactivation on pool teardown
    _active = None


def active_store() -> SharedStore | None:
    return _active


def shared_get_or_compute(kind: str, key_parts: tuple, compute):
    """L2-or-local: compute through the active store when present.

    ``key_parts`` are digested with :func:`repro.perf.stats.exact_digest`;
    with no active store this is exactly ``compute()``.
    """
    store = _active
    if store is None:
        return compute()
    from repro.perf.stats import exact_digest

    return store.get_or_compute(kind, exact_digest(*key_parts), compute)


def accumulate_run(stats: dict) -> None:
    """Fold one finished run's aggregated counters into the totals."""
    for field in _STAT_FIELDS:
        _cumulative[field] += stats.get(field, 0)
    _cumulative["entries"] = stats.get("entries", 0)
    _cumulative["runs"] += 1


def l2_stats() -> dict:
    """Uniform counters for the hierarchy snapshot (cumulative)."""
    snapshot = dict(_cumulative)
    store = _active
    if store is not None:
        live = store.aggregated_stats()
        for field in _STAT_FIELDS:
            snapshot[field] += live[field]
        snapshot["entries"] = live["entries"]
    snapshot["bytes"] = (snapshot.pop("bytes_served")
                         + snapshot.pop("bytes_stored"))
    return snapshot
