"""Indexed congruence cache for once-per-round Compute hoisting.

Within one FSYNC Look–Compute–Move cycle every robot observes the
*same* world configuration through its own similarity transform (its
local frame), and — crucially — with the *same robot indexing*: entry
``j`` of every observation is robot ``j``.  The symmetry cache of
:mod:`repro.perf.cache` keys by congruence of point *multisets* and
therefore cannot answer index-sensitive questions (which robot goes
where); this module adds an **indexed** cache:

* an entry stores the first-seen configuration of a class in canonical
  form (center-relative, unit scale, **index order preserved**);
* a query is matched by solving the orthogonal Procrustes (Kabsch)
  problem on the indexed correspondence and *verifying* the resulting
  rotation point-by-point — a hit is certified, never heuristic, and
  because verification is per-index the alignment can never confuse a
  symmetric configuration's robots with their orbit siblings (the
  coset ambiguity that makes the multiset cache unusable here);
* payloads attached to an entry are either **invariant** (comparable
  tuples, orbit index lists, booleans — returned verbatim) or
  **equivariant point sets** (destination arrays — stored in the
  canonical frame and conjugated into the query's frame by the
  certified similarity).

The per-robot Compute of ``ψ_PF``'s embedding/matching phase and the
agreed orbit ordering are served through this cache, so their full
cost is paid once per congruence class per round while every robot
still decides from its own local observation (see
``docs/PERFORMANCE.md`` for the safety argument).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "RoundView",
    "cached_equivariant_points",
    "cached_invariant",
    "clear_round_cache",
    "round_cache_bytes",
    "round_stats",
    "round_view",
]

# Same retention bound as the congruence caches: a formation run
# touches a handful of classes per round; the bound only matters for
# long-lived processes sweeping many patterns.
_MAX_ENTRIES = 256


@dataclass
class _RoundEntry:
    """Canonical indexed data for one congruence class."""

    rel_unit: np.ndarray        # (n, 3), center-relative, unit scale
    radii_sorted: np.ndarray    # sorted point radii (prefilter)
    payloads: dict = field(default_factory=dict)


@dataclass(frozen=True)
class RoundView:
    """A certified alignment of a configuration onto a cache entry.

    ``rotation`` maps the entry's canonical points onto the query's
    unit-scaled relative points index-by-index; ``center``/``scale``
    complete the similarity into the query's raw coordinates.
    """

    entry: _RoundEntry
    rotation: np.ndarray
    center: np.ndarray
    scale: float

    def to_query(self, canonical: np.ndarray) -> np.ndarray:
        """Map canonical-frame points into the query's coordinates."""
        return self.center + self.scale * (canonical @ self.rotation.T)

    def to_canonical(self, points: np.ndarray) -> np.ndarray:
        """Map query-coordinate points into the canonical frame."""
        return ((np.asarray(points, dtype=float) - self.center)
                / self.scale) @ self.rotation


_round_cache: OrderedDict[tuple, list[_RoundEntry]] = OrderedDict()

_stats = {"hits": 0, "misses": 0, "bypass": 0, "evictions": 0}


def clear_round_cache() -> None:
    """Drop every indexed entry and reset the counters."""
    _round_cache.clear()
    for name in _stats:
        _stats[name] = 0


def round_stats() -> dict:
    """Hit/miss counters plus the number of retained entries."""
    snapshot = dict(_stats)
    snapshot["entries"] = sum(len(b) for b in _round_cache.values())
    return snapshot


def round_cache_bytes() -> int:
    """Approximate retained bytes across the indexed entries."""
    total = 0
    for bucket in _round_cache.values():
        for entry in bucket:
            total += entry.rel_unit.nbytes + entry.radii_sorted.nbytes
            for payload in entry.payloads.values():
                if isinstance(payload, np.ndarray):
                    total += payload.nbytes
    return total


def _kabsch(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """The rotation minimizing ``Σ |R src_i - dst_i|²`` (det +1)."""
    h = src.T @ dst
    u, _, vt = np.linalg.svd(h)
    rotation = vt.T @ u.T
    if np.linalg.det(rotation) < 0.0:
        correction = np.diag([1.0, 1.0, -1.0])
        rotation = vt.T @ correction @ u.T
    return rotation


def round_view(config) -> RoundView | None:
    """Find-or-create the indexed entry for ``config`` (certified).

    Returns None (bypass) when caching is disabled or the
    configuration is degenerate (zero radius: no frame to align).
    The view is memoized on the configuration object — every robot's
    Observation builds a fresh ``Configuration``, but one robot's
    Compute phase may consult several payloads of the same view.
    """
    from repro.perf import cache as _cache

    if not _cache.is_enabled():
        return None
    cached = getattr(config, "_round_view", None)
    if cached is not None:
        return cached if isinstance(cached, RoundView) else None

    center = config.center
    scale = float(config.radius)
    tol = config.tol
    if scale <= tol.abs_tol:
        _stats["bypass"] += 1
        config._round_view = False
        return None

    points = config.as_array()
    rel_unit = (points - center) / scale
    radii = np.linalg.norm(rel_unit, axis=1)
    radii_sorted = np.sort(radii)
    slack = 10.0 * tol.geometric_slack(1.0)

    key = (points.shape[0],
           (float(tol.abs_tol), float(tol.rel_tol)))
    bucket = _round_cache.get(key)
    if bucket is not None:
        for entry in bucket:
            if np.abs(entry.radii_sorted - radii_sorted).max() > slack:
                continue
            rotation = _kabsch(entry.rel_unit, rel_unit)
            deviation = np.linalg.norm(
                entry.rel_unit @ rotation.T - rel_unit, axis=1)
            if deviation.max() > slack:
                continue
            _stats["hits"] += 1
            _round_cache.move_to_end(key)
            view = RoundView(entry=entry, rotation=rotation,
                             center=center, scale=scale)
            config._round_view = view
            return view

    _stats["misses"] += 1
    entry = _RoundEntry(rel_unit=rel_unit, radii_sorted=radii_sorted)
    if bucket is None:
        _round_cache[key] = [entry]
    else:
        bucket.append(entry)
    _round_cache.move_to_end(key)
    while len(_round_cache) > _MAX_ENTRIES:
        _, dropped = _round_cache.popitem(last=False)
        _stats["evictions"] += len(dropped)
    view = RoundView(entry=entry, rotation=np.eye(3),
                     center=center, scale=scale)
    config._round_view = view
    return view


def cached_invariant(view: RoundView | None, key: tuple, compute):
    """Serve a similarity-invariant payload (tuples / index lists).

    ``compute`` runs at most once per congruence class; its result must
    be immutable (or treated as such by every caller).
    """
    if view is None:
        return compute()
    if key in view.entry.payloads:
        return view.entry.payloads[key]
    payload = compute()
    view.entry.payloads[key] = payload
    return payload


def cached_equivariant_points(view: RoundView | None, key: tuple, compute):
    """Serve an equivariant ``(m, 3)`` point payload.

    ``compute`` returns points in the query's coordinates; they are
    stored in the canonical frame and conjugated back into any later
    query's frame by that query's certified similarity.
    """
    if view is None:
        return np.asarray(compute(), dtype=float)
    canonical = view.entry.payloads.get(key)
    if canonical is None:
        result = np.asarray(compute(), dtype=float)
        view.entry.payloads[key] = view.to_canonical(result)
        return result
    return view.to_query(canonical)
