"""Indexed congruence cache for once-per-round Compute hoisting.

Within one FSYNC Look–Compute–Move cycle every robot observes the
*same* world configuration through its own similarity transform (its
local frame), and — crucially — with the *same robot indexing*: entry
``j`` of every observation is robot ``j``.  The symmetry cache of
:mod:`repro.perf.cache` keys by congruence of point *multisets* and
therefore cannot answer index-sensitive questions (which robot goes
where); this module adds an **indexed** cache:

* an entry stores the first-seen configuration of a class in canonical
  form (center-relative, unit scale, **index order preserved**);
* a query is matched by solving the orthogonal Procrustes (Kabsch)
  problem on the indexed correspondence and *verifying* the resulting
  rotation point-by-point — a hit is certified, never heuristic, and
  because verification is per-index the alignment can never confuse a
  symmetric configuration's robots with their orbit siblings (the
  coset ambiguity that makes the multiset cache unusable here);
* payloads attached to an entry are either **invariant** (comparable
  tuples, orbit index lists, booleans — returned verbatim) or
  **equivariant point sets** (destination arrays — stored in the
  canonical frame and conjugated into the query's frame by the
  certified similarity).

The per-robot Compute of ``ψ_PF``'s embedding/matching phase and the
agreed orbit ordering are served through this cache, so their full
cost is paid once per congruence class per round while every robot
still decides from its own local observation (see
``docs/PERFORMANCE.md`` for the safety argument).

This module also hosts the **incremental γ(P)** path
(:func:`prime_symmetry`): between two FSYNC rounds the scheduler holds
the same robots in the same index order, so when the round's
displacement is *coherent* — every radius shell scaled uniformly about
the center plus one common rotation, certified by a Kabsch solve whose
residual stays under the motion slack — the new configuration's group
is exactly the previous round's certified group conjugated by that
rotation.  The conjugate is batch-verified element-by-element and
seeded into the L1 congruence cache, replacing the full re-detection
the next round's ``n`` observations would otherwise trigger.  Toggle
with ``REPRO_INCREMENTAL_GAMMA=0`` / :func:`set_incremental`.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "RoundView",
    "cached_equivariant_points",
    "cached_invariant",
    "clear_round_cache",
    "incremental_enabled",
    "prime_symmetry",
    "round_cache_bytes",
    "round_stats",
    "round_view",
    "set_incremental",
]

# Same retention bound as the congruence caches: a formation run
# touches a handful of classes per round; the bound only matters for
# long-lived processes sweeping many patterns.
_MAX_ENTRIES = 256


@dataclass
class _RoundEntry:
    """Canonical indexed data for one congruence class."""

    rel_unit: np.ndarray        # (n, 3), center-relative, unit scale
    radii_sorted: np.ndarray    # sorted point radii (prefilter)
    payloads: dict = field(default_factory=dict)


@dataclass(frozen=True)
class RoundView:
    """A certified alignment of a configuration onto a cache entry.

    ``rotation`` maps the entry's canonical points onto the query's
    unit-scaled relative points index-by-index; ``center``/``scale``
    complete the similarity into the query's raw coordinates.
    """

    entry: _RoundEntry
    rotation: np.ndarray
    center: np.ndarray
    scale: float

    def to_query(self, canonical: np.ndarray) -> np.ndarray:
        """Map canonical-frame points into the query's coordinates."""
        return self.center + self.scale * (canonical @ self.rotation.T)

    def to_canonical(self, points: np.ndarray) -> np.ndarray:
        """Map query-coordinate points into the canonical frame."""
        return ((np.asarray(points, dtype=float) - self.center)
                / self.scale) @ self.rotation


_round_cache: OrderedDict[tuple, list[_RoundEntry]] = OrderedDict()

_stats = {"hits": 0, "misses": 0, "bypass": 0, "evictions": 0}


def clear_round_cache() -> None:
    """Drop every indexed entry and reset the counters."""
    _round_cache.clear()
    for name in _stats:
        _stats[name] = 0


def round_stats() -> dict:
    """Hit/miss counters plus the number of retained entries."""
    snapshot = dict(_stats)
    snapshot["entries"] = sum(len(b) for b in _round_cache.values())
    return snapshot


def round_cache_bytes() -> int:
    """Approximate retained bytes across the indexed entries."""
    total = 0
    for bucket in _round_cache.values():
        for entry in bucket:
            total += entry.rel_unit.nbytes + entry.radii_sorted.nbytes
            for payload in entry.payloads.values():
                if isinstance(payload, np.ndarray):
                    total += payload.nbytes
    return total


def _kabsch(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """The rotation minimizing ``Σ |R src_i - dst_i|²`` (det +1)."""
    from repro.backend import get_backend

    return get_backend().kabsch(src, dst)


def round_view(config) -> RoundView | None:
    """Find-or-create the indexed entry for ``config`` (certified).

    Returns None (bypass) when caching is disabled or the
    configuration is degenerate (zero radius: no frame to align).
    The view is memoized on the configuration object — every robot's
    Observation builds a fresh ``Configuration``, but one robot's
    Compute phase may consult several payloads of the same view.
    """
    from repro.perf import cache as _cache

    if not _cache.is_enabled():
        return None
    cached = getattr(config, "_round_view", None)
    if cached is not None:
        return cached if isinstance(cached, RoundView) else None

    center = config.center
    scale = float(config.radius)
    tol = config.tol
    if scale <= tol.abs_tol:
        _stats["bypass"] += 1
        config._round_view = False
        return None

    points = config.as_array()
    rel_unit = (points - center) / scale
    radii = np.linalg.norm(rel_unit, axis=1)
    radii_sorted = np.sort(radii)
    slack = 10.0 * tol.geometric_slack(1.0)

    key = (points.shape[0],
           (float(tol.abs_tol), float(tol.rel_tol)))
    bucket = _round_cache.get(key)
    if bucket is not None:
        for entry in bucket:
            if np.abs(entry.radii_sorted - radii_sorted).max() > slack:
                continue
            rotation = _kabsch(entry.rel_unit, rel_unit)
            deviation = np.linalg.norm(
                entry.rel_unit @ rotation.T - rel_unit, axis=1)
            if deviation.max() > slack:
                continue
            _stats["hits"] += 1
            _round_cache.move_to_end(key)
            view = RoundView(entry=entry, rotation=rotation,
                             center=center, scale=scale)
            config._round_view = view
            return view

    _stats["misses"] += 1
    entry = _RoundEntry(rel_unit=rel_unit, radii_sorted=radii_sorted)
    if bucket is None:
        _round_cache[key] = [entry]
    else:
        bucket.append(entry)
    _round_cache.move_to_end(key)
    while len(_round_cache) > _MAX_ENTRIES:
        _, dropped = _round_cache.popitem(last=False)
        _stats["evictions"] += len(dropped)
    view = RoundView(entry=entry, rotation=np.eye(3),
                     center=center, scale=scale)
    config._round_view = view
    return view


# ----------------------------------------------------------------------
# Incremental γ(P) across rounds
# ----------------------------------------------------------------------
_INCREMENTAL_ENV = "REPRO_INCREMENTAL_GAMMA"
_incremental = os.environ.get(_INCREMENTAL_ENV, "1") != "0"


def set_incremental(flag: bool) -> None:
    """Enable or disable incremental γ(P) priming between rounds."""
    global _incremental  # reprolint: disable=REP003 -- audited lifecycle singleton: incremental-gamma toggle, rebound only by set_incremental()
    _incremental = bool(flag)


def incremental_enabled() -> bool:
    """True when round-to-round γ(P) priming is active."""
    return _incremental


def prime_symmetry(prev_config, new_config) -> bool:
    """Carry the previous round's certified ``γ(P)`` across one move.

    Called by the FSYNC scheduler with the configurations before and
    after a round (same robots, same index order).  When the previous
    world-frame report is at hand — computed earlier, or an L1 probe
    hit — and the displacement is coherent (see
    :func:`_conjugated_report`), the conjugated group is verified,
    seeded into the L1 cache and planted on ``new_config``, so neither
    the stop condition nor the next round's ``n`` robot observations
    re-detect from scratch.  Returns True iff priming succeeded; any
    guard failure simply falls back to the normal detection path.

    Soundness: coherence certifies that every radius shell of the new
    configuration is one uniformly scaled, commonly rotated shell of
    the previous one (bijectively).  Any rotation ``T`` preserving the
    new configuration then preserves each new shell, hence — after
    undoing the common rotation — each previous shell, hence the
    previous configuration: ``γ(new) = R γ(prev) Rᵀ``.  The conjugate
    is additionally batch-verified point-by-point before use, exactly
    like every other L1 hit.
    """
    from repro.perf import cache as _cache

    if not (_cache.is_enabled() and _incremental):
        return False
    prev_report = prev_config.__dict__.get("symmetry")
    if prev_report is None:
        prev_report = _cache.probe_symmetry(
            prev_config.points, prev_config.tol, ball=prev_config.ball)
    if (prev_report is None or prev_report.kind != "finite"
            or prev_report.group is None or prev_report.group.order == 1
            or prev_report.has_multiplicity
            or new_config.n != prev_config.n
            or new_config.tol != prev_config.tol):
        return False
    primed = _conjugated_report(prev_config, prev_report, new_config)
    _cache.note_incremental(primed is not None)
    if primed is None:
        return False
    new_config.__dict__["symmetry"] = primed
    return True


def _conjugated_report(prev_config, prev_report, new_config):
    """The seeded finite report of ``new_config``, or None.

    Guards, in order: the new configuration is finite-kind with all
    points distinct and the same center occupancy; its radius shells
    are in size-preserving bijection with the previous round's (each
    new shell gathers exactly one whole previous shell — a merge,
    split or center crossing falls back, since those can genuinely
    change the group); the shell-normalized displacement is one common
    rotation with Kabsch residual under the motion slack; and the
    conjugated group verifies against the new multiset.
    """
    from repro.backend import get_backend
    from repro.groups import detection as _detection
    from repro.perf import cache as _cache

    tol = new_config.tol
    n = new_config.n
    pre = _detection._prepare_multiset(new_config.points, tol,
                                       ball=new_config.ball)
    if len(pre.rel) != n or int(pre.mults.max()) != 1:
        return None
    report = _detection._base_report(pre, tol)
    if (report.kind != "finite"
            or report.center_occupied != prev_report.center_occupied):
        return None

    prev_rel = prev_config.as_array() - prev_config.center
    prev_radii = np.linalg.norm(prev_rel, axis=1)
    prev_slack = tol.geometric_slack(float(prev_config.radius))
    ones = np.ones(n, dtype=np.int64)
    p_idx, p_bounds = _detection._shell_slices(prev_radii, ones,
                                               prev_slack)
    n_idx, n_bounds = _detection._shell_slices(pre.radii, pre.mults,
                                               pre.slack)
    if (len(p_bounds) != len(n_bounds) or p_idx.size != n_idx.size
            or not np.array_equal(np.sort(p_idx), np.sort(n_idx))):
        return None

    shell_of_prev = np.full(n, -1, dtype=np.int64)
    for k in range(len(p_bounds) - 1):
        shell_of_prev[p_idx[p_bounds[k]:p_bounds[k + 1]]] = k
    scale_of = np.ones(n)
    for k in range(len(n_bounds) - 1):
        members = n_idx[n_bounds[k]:n_bounds[k + 1]]
        sources = np.unique(shell_of_prev[members])
        if sources.size != 1 or sources[0] < 0:
            return None
        source = int(sources[0])
        if len(members) != int(p_bounds[source + 1] - p_bounds[source]):
            return None
        scale_of[members] = (float(pre.radii[members].mean())
                             / float(prev_radii[members].mean()))

    backend = get_backend()
    off = np.sort(p_idx)
    src = prev_rel[off]
    dst = pre.rel[off] / scale_of[off, None]
    rotation = backend.kabsch(src, dst)
    residual = np.linalg.norm(src @ rotation.T - dst, axis=1)
    if float(residual.max()) > tol.motion_slack(float(pre.ball.radius)):
        return None

    group = prev_report.group.transformed(rotation)
    verifier = _detection._BatchVerifier(pre.rel, pre.mults,
                                         20 * pre.slack)
    if not bool(verifier(np.stack(group.elements)).all()):
        return None
    return _cache.seed_symmetry(pre, report, tol, group)


def cached_invariant(view: RoundView | None, key: tuple, compute):
    """Serve a similarity-invariant payload (tuples / index lists).

    ``compute`` runs at most once per congruence class; its result must
    be immutable (or treated as such by every caller).
    """
    if view is None:
        return compute()
    if key in view.entry.payloads:
        return view.entry.payloads[key]
    payload = compute()
    view.entry.payloads[key] = payload
    return payload


def cached_equivariant_points(view: RoundView | None, key: tuple, compute):
    """Serve an equivariant ``(m, 3)`` point payload.

    ``compute`` returns points in the query's coordinates; they are
    stored in the canonical frame and conjugated back into any later
    query's frame by that query's certified similarity.
    """
    if view is None:
        return np.asarray(compute(), dtype=float)
    canonical = view.entry.payloads.get(key)
    if canonical is None:
        result = np.asarray(compute(), dtype=float)
        view.entry.payloads[key] = view.to_canonical(result)
        return result
    return view.to_query(canonical)
