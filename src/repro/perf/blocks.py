"""Zero-copy shared-memory blocks for trial inputs.

The PR 2 runner pickled every trial's full input through the pool —
for the experiment drivers that meant serializing the same pattern
arrays once per trial.  This module packs the arrays into one
``multiprocessing.shared_memory`` block up front and hands workers
lightweight :class:`ArrayRef` descriptors (segment name, offset,
shape, dtype): the only thing pickled per trial is a few dozen bytes,
and every worker maps the same physical pages.

``ArrayRef.load()`` returns a **read-only** view.  In the parent (and
in fork-started workers, which inherit the registry) the original
array is returned directly without touching the segment, so the
inline ``jobs=1`` path pays nothing.
"""

from __future__ import annotations

import multiprocessing
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ArrayRef", "ShmArena", "packed_arrays", "release_attached"]

# (segment name, offset) -> original array, populated by the packing
# process.  Fork-started workers inherit it and skip the attach.
_LOCAL: dict[tuple[str, int], np.ndarray] = {}

# Segment name -> attached SharedMemory, for workers that must map.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


@dataclass(frozen=True)
class ArrayRef:
    """A picklable (segment, offset, shape, dtype) array descriptor."""

    shm_name: str
    offset: int
    shape: tuple
    dtype: str

    def load(self) -> np.ndarray:
        """The referenced array (read-only; zero-copy)."""
        local = _LOCAL.get((self.shm_name, self.offset))
        if local is not None:
            return local
        shm = _ATTACHED.get(self.shm_name)
        if shm is None:
            shm = shared_memory.SharedMemory(name=self.shm_name)
            if multiprocessing.get_start_method(allow_none=True) != "fork":
                # Spawn-started workers run their own resource tracker,
                # which would unlink the (parent-owned) segment at
                # worker exit unless the attach is unregistered.  Fork
                # workers share the parent's tracker — there the
                # attach-side registration is a set no-op and
                # unregistering would break the owner's unlink.
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:  # noqa: BLE001 — best-effort
                    pass
            _ATTACHED[self.shm_name] = shm
        array = np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                           buffer=shm.buf, offset=self.offset)
        array.flags.writeable = False
        return array


class ShmArena:
    """One packed segment holding a fixed set of arrays."""

    def __init__(self, shm: shared_memory.SharedMemory,
                 refs: list[ArrayRef]) -> None:
        self._shm = shm
        self.refs = refs

    @classmethod
    def pack(cls, arrays) -> "ShmArena":
        """Copy ``arrays`` into a fresh segment, one ref per array."""
        prepared = [np.ascontiguousarray(np.asarray(a, dtype=float))
                    for a in arrays]
        offsets = []
        cursor = 0
        for array in prepared:
            offsets.append(cursor)
            cursor += array.nbytes + (-array.nbytes) % 64
        shm = shared_memory.SharedMemory(create=True, size=max(cursor, 1))
        # The segment exists from here; copying can raise (e.g. a
        # buffer error), and nothing would unlink it — release on
        # failure before handing ownership to the arena (REP010).
        try:
            refs = []
            for array, offset in zip(prepared, offsets):
                view = np.ndarray(array.shape, dtype=array.dtype,
                                  buffer=shm.buf, offset=offset)
                view[...] = array
                view.flags.writeable = False
                ref = ArrayRef(shm_name=shm.name, offset=offset,
                               shape=tuple(array.shape),
                               dtype=array.dtype.str)
                _LOCAL[(shm.name, offset)] = view
                refs.append(ref)
        except BaseException:
            for key in [k for k in _LOCAL if k[0] == shm.name]:
                del _LOCAL[key]
            try:
                shm.close()
            except BufferError:
                pass  # a live view keeps the mapping; unlink still runs
            shm.unlink()
            raise
        return cls(shm, refs)

    def close(self) -> None:
        """Release the packing process's mapping and unlink the segment.

        Live views into the segment (the ``_LOCAL`` entries) keep the
        mapping valid until they are dropped; unlinking only removes
        the name.
        """
        for ref in self.refs:
            _LOCAL.pop((ref.shm_name, ref.offset), None)
        try:
            self._shm.close()
        except BufferError:
            pass  # a view outlived the arena; the segment dies with it
        try:
            self._shm.unlink()
        except OSError:
            pass


def release_attached(shm_name: str) -> None:
    """Drop this process's cached attachment of ``shm_name``.

    The trial pool attaches a handful of long-lived segments, so its
    ``_ATTACHED`` cache never needs eviction.  A long-running query
    worker sees one fresh segment *per request*; after it has copied
    the arrays out it calls this so mappings don't accumulate for the
    life of the worker.  A live view into the segment keeps the
    mapping valid (``BufferError`` is swallowed and the entry dropped
    — the segment then dies with the view).  No-op for unknown names.
    """
    shm = _ATTACHED.pop(shm_name, None)
    if shm is not None:
        try:
            shm.close()
        except BufferError:
            pass


@contextmanager
def packed_arrays(arrays):
    """``with packed_arrays(arrays) as refs:`` — refs valid inside."""
    arena = ShmArena.pack(arrays)
    try:
        yield arena.refs
    finally:
        arena.close()
