"""Shared infrastructure for the three-level cache hierarchy.

Two things live here because every level needs them:

* **Exact-byte digests.**  :func:`exact_digest` hashes the raw bytes
  of its operands (array buffers included, dtype/shape tagged) into a
  fixed-size key.  L2 and L3 key *only* on such digests: a stored
  value is a pure deterministic function of the key's preimage, so the
  key → value map is independent of which process (or which past run)
  computed it — the determinism argument for the whole hierarchy (see
  ``docs/PERFORMANCE.md``, "Cache hierarchy").
* **Uniform counters.**  :func:`hierarchy_stats` assembles one
  ``{"l1": ..., "l2": ..., "l3": ...}`` snapshot with ``hits`` /
  ``misses`` / ``evictions`` / ``bytes`` per level, pulling the L1
  numbers from the in-process congruence/round caches, the L2 numbers
  from the shared-memory store, and the L3 numbers from the on-disk
  store.  :func:`format_hierarchy` renders it for the CLI.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "exact_digest",
    "group_digest",
    "format_hierarchy",
    "hierarchy_stats",
]

_SEPARATOR = b"\x1f"


def exact_digest(*parts) -> bytes:
    """16-byte blake2b digest over the exact bytes of ``parts``.

    Arrays contribute their dtype, shape and raw buffer; floats are
    hashed via their IEEE-754 representation (``np.float64`` bytes),
    so two keys are equal iff every operand is bit-identical.
    """
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        if isinstance(part, np.ndarray):
            arr = np.ascontiguousarray(part)
            h.update(str(arr.dtype).encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        elif isinstance(part, bytes):
            h.update(part)
        elif isinstance(part, str):
            h.update(part.encode())
        elif isinstance(part, (float, np.floating)):
            h.update(np.float64(part).tobytes())
        elif isinstance(part, (int, bool, np.integer)):
            h.update(str(int(part)).encode())
        elif isinstance(part, (tuple, list)):
            h.update(b"(")
            h.update(exact_digest(*part))
            h.update(b")")
        elif part is None:
            h.update(b"none")
        else:
            # repr()/str() of floats is locale/precision hazard; any new
            # key part must get an explicit exact-byte branch above.
            raise TypeError(
                f"exact_digest: no exact-byte encoding for "
                f"{type(part).__name__!r} operands")
        h.update(_SEPARATOR)
    return h.digest()


def group_digest(group) -> bytes:
    """Digest of a concrete :class:`RotationGroup` arrangement.

    Includes the exact element stack *and* the derived axis data
    (directions, folds, orientation and occupancy flags): a cache hit
    served by the L1 congruence cache carries a *conjugated* group
    whose float noise depends on the alignment rotation, and any L2/L3
    value derived from the group must be keyed by those exact bytes,
    never by the group's abstract type alone.
    """
    axes = group.axes
    if axes:
        directions = np.asarray([a.direction for a in axes], dtype=float)
        meta = np.asarray(
            [(a.fold, int(a.oriented), int(a.occupied)) for a in axes],
            dtype=np.int64)
    else:
        directions = np.zeros((0, 3))
        meta = np.zeros((0, 3), dtype=np.int64)
    return exact_digest(b"group", group._stack, directions, meta)


def _l1_level() -> dict:
    from repro.perf import cache as _cache
    from repro.perf import round as _round

    stats = _cache.cache_stats()
    caches = {name: dict(stats[name])
              for name in ("symmetry", "symmetricity", "subgroups", "round")}
    level = {"hits": 0, "misses": 0, "evictions": 0}
    for counters in caches.values():
        for field in level:
            level[field] += counters.get(field, 0)
    level["bytes"] = _cache.cache_bytes() + _round.round_cache_bytes()
    level["caches"] = caches
    return level


def hierarchy_stats() -> dict:
    """One snapshot covering all three cache levels."""
    from repro.perf.disk import l3_stats
    from repro.perf.shared import l2_stats

    return {"l1": _l1_level(), "l2": l2_stats(), "l3": l3_stats()}


def format_hierarchy(stats: dict | None = None) -> str:
    """Render :func:`hierarchy_stats` in the unified metrics format.

    Delegates to :func:`repro.obs.metrics.render_cache_metrics` — one
    stable sorted ``cache.l*.name = value`` listing shared with every
    ``--cache-stats`` flag and the ``--metrics`` artifact, so no two
    surfaces can render the hierarchy differently.
    """
    from repro.obs.metrics import cache_metrics, render_cache_metrics

    return render_cache_metrics(
        cache_metrics(stats) if stats is not None else None)
