"""L3 — the on-disk persistent cache under ``.repro-cache/``.

Stores cold-start artifacts that are pure functions of the package
version plus exact key bytes: the standard-frame group catalog, the
subgroup lattices of the catalog groups, and the pattern-library
signatures.  Entries are ``.npz`` files (object payloads ride as
pickled ``uint8`` arrays) next to a small ``index.json``; both are
written atomically (temp file + ``os.replace``) so concurrent workers
can share one store.

Keys and invalidation:

* every entry is addressed by ``(kind, digest)`` where the digest
  covers the exact input bytes (see :func:`repro.perf.stats.exact_digest`);
* the index records the ``repro`` package version — opening a store
  written by a different version drops every entry (*stale-version
  invalidation*), so an upgrade can never serve artifacts computed by
  old code.

The store root is ``$REPRO_CACHE_DIR`` (default ``./.repro-cache``);
``REPRO_DISK_CACHE=0`` disables the level entirely.  The CLI exposes
``repro cache info`` / ``repro cache clear``.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import tempfile
from pathlib import Path

import numpy as np

__all__ = [
    "DiskCache",
    "configure",
    "disk_cache",
    "disk_get",
    "disk_get_object",
    "disk_put",
    "disk_put_object",
    "l3_stats",
]

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_DISK_CACHE"
_INDEX_NAME = "index.json"

_stats = {
    "hits": 0,
    "misses": 0,
    "writes": 0,
    "invalidations": 0,
    "bytes_read": 0,
    "bytes_written": 0,
    "kinds": {},
}

# Lazy singleton: None = not resolved yet, False = disabled.
_store: "DiskCache | None | bool" = None


def _package_version() -> str:
    from repro import __version__

    return __version__


def _kind_counters(kind: str) -> dict:
    counters = _stats["kinds"].get(kind)
    if counters is None:
        counters = {"hits": 0, "misses": 0, "writes": 0}
        _stats["kinds"][kind] = counters
    return counters


def _atomic_write(path: Path, data: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        Path(tmp).unlink(missing_ok=True)
        raise


class DiskCache:
    """One on-disk store rooted at ``root`` (created lazily)."""

    def __init__(self, root: Path, version: str | None = None) -> None:
        self.root = Path(root)
        self._version = version
        self._entries: dict[str, dict] | None = None

    @property
    def version(self) -> str:
        if self._version is None:
            self._version = _package_version()
        return self._version

    # -- index ---------------------------------------------------------
    def _load_index(self) -> dict[str, dict]:
        if self._entries is not None:
            return self._entries
        self.root.mkdir(parents=True, exist_ok=True)
        index_path = self.root / _INDEX_NAME
        entries: dict[str, dict] = {}
        if index_path.exists():
            try:
                data = json.loads(index_path.read_text())
            except (OSError, json.JSONDecodeError):
                data = {}
            if data.get("version") == self.version:
                entries = data.get("entries", {})
            elif data.get("entries"):
                # Stale-version invalidation: drop every entry written
                # by a different package version.
                _stats["invalidations"] += 1
                for record in data.get("entries", {}).values():
                    (self.root / record["file"]).unlink(missing_ok=True)
                self._write_index({})
        self._entries = entries
        return entries

    def _write_index(self, entries: dict[str, dict]) -> None:
        payload = {"version": self.version, "entries": entries}
        _atomic_write(self.root / _INDEX_NAME,
                      json.dumps(payload, indent=1).encode())

    def _merge_entry(self, name: str, record: dict) -> None:
        # Re-read the index before writing so concurrent writers only
        # race on the (idempotent) union, never clobber each other.
        index_path = self.root / _INDEX_NAME
        entries = dict(self._entries or {})
        if index_path.exists():
            try:
                data = json.loads(index_path.read_text())
                if data.get("version") == self.version:
                    entries.update(data.get("entries", {}))
            except (OSError, json.JSONDecodeError):
                pass
        entries[name] = record
        self._entries = entries
        self._write_index(entries)

    # -- entries -------------------------------------------------------
    @staticmethod
    def _entry_name(kind: str, key: bytes) -> str:
        return f"{kind}-{key.hex()}"

    def get(self, kind: str, key: bytes):
        """``(meta, arrays)`` for the entry, or ``None`` on miss."""
        entries = self._load_index()
        name = self._entry_name(kind, key)
        record = entries.get(name)
        counters = _kind_counters(kind)
        if record is None:
            _stats["misses"] += 1
            counters["misses"] += 1
            return None
        path = self.root / record["file"]
        try:
            raw = path.read_bytes()
            with np.load(io.BytesIO(raw), allow_pickle=False) as bundle:
                arrays = {field: bundle[field] for field in bundle.files}
        except (OSError, ValueError, KeyError):
            entries.pop(name, None)
            _stats["misses"] += 1
            counters["misses"] += 1
            return None
        _stats["hits"] += 1
        counters["hits"] += 1
        _stats["bytes_read"] += len(raw)
        return record.get("meta"), arrays

    def put(self, kind: str, key: bytes, arrays: dict | None = None,
            meta=None) -> None:
        """Persist one entry (atomic; concurrent writers tolerated)."""
        self._load_index()
        name = self._entry_name(kind, key)
        buffer = io.BytesIO()
        np.savez(buffer, **(arrays or {}))
        data = buffer.getvalue()
        _atomic_write(self.root / f"{name}.npz", data)
        self._merge_entry(name, {"kind": kind, "file": f"{name}.npz",
                                 "meta": meta, "bytes": len(data)})
        _stats["writes"] += 1
        _kind_counters(kind)["writes"] += 1
        _stats["bytes_written"] += len(data)

    # -- maintenance ---------------------------------------------------
    def info(self) -> dict:
        entries = self._load_index()
        per_kind: dict[str, dict] = {}
        total = 0
        for record in entries.values():
            kind = per_kind.setdefault(record["kind"],
                                       {"entries": 0, "bytes": 0})
            kind["entries"] += 1
            kind["bytes"] += record.get("bytes", 0)
            total += record.get("bytes", 0)
        return {"path": str(self.root), "version": self.version,
                "entries": len(entries), "bytes": total, "kinds": per_kind}

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        entries = self._load_index()
        count = len(entries)
        for record in entries.values():
            (self.root / record["file"]).unlink(missing_ok=True)
        self._entries = {}
        self._write_index({})
        return count


def configure(root=None, enabled: bool | None = None,
              version: str | None = None) -> None:
    """(Re)configure the module-level store — used by tests and the CLI.

    ``root=None`` restores the environment-driven default; ``enabled``
    overrides ``REPRO_DISK_CACHE``; ``version`` overrides the package
    version recorded in the index (for stale-version tests).
    """
    global _store  # reprolint: disable=REP003 -- audited lifecycle singleton: L3 store handle, rebound only by configure/reset
    if enabled is False:
        _store = False
        return
    if root is None and enabled is None:
        _store = None  # re-resolve from the environment on next use
        return
    _store = DiskCache(Path(root) if root is not None else _default_root(),
                       version=version)


def _default_root() -> Path:
    return Path(os.environ.get(_ENV_DIR) or ".repro-cache")


def disk_cache() -> DiskCache | None:
    """The active store, or ``None`` when the level is disabled."""
    global _store  # reprolint: disable=REP003 -- audited lifecycle singleton: lazy env-driven resolution of the L3 store
    if _store is None:
        if os.environ.get(_ENV_DISABLE, "").lower() in ("0", "false", "off"):
            _store = False
        else:
            _store = DiskCache(_default_root())
    return _store or None


def disk_get(kind: str, key: bytes):
    """``(meta, arrays)`` or ``None`` (miss / level disabled)."""
    store = disk_cache()
    if store is None:
        return None
    try:
        return store.get(kind, key)
    except OSError:
        return None


def disk_put(kind: str, key: bytes, arrays: dict | None = None,
             meta=None) -> None:
    store = disk_cache()
    if store is None:
        return
    try:
        store.put(kind, key, arrays=arrays, meta=meta)
    except OSError:
        pass  # a read-only or full filesystem never breaks computation


def disk_get_object(kind: str, key: bytes):
    """Unpickle an object entry, or ``None`` on miss."""
    found = disk_get(kind, key)
    if found is None:
        return None
    _, arrays = found
    try:
        return pickle.loads(arrays["pickle"].tobytes())
    except (KeyError, pickle.UnpicklingError):
        return None


def disk_put_object(kind: str, key: bytes, obj) -> None:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    disk_put(kind, key,
             arrays={"pickle": np.frombuffer(data, dtype=np.uint8)})


def l3_stats() -> dict:
    """Uniform counters for the hierarchy snapshot."""
    store = disk_cache()
    snapshot = {
        "hits": _stats["hits"],
        "misses": _stats["misses"],
        "writes": _stats["writes"],
        "invalidations": _stats["invalidations"],
        "bytes": _stats["bytes_read"] + _stats["bytes_written"],
        "kinds": {kind: dict(counters)
                  for kind, counters in _stats["kinds"].items()},
        "entries": 0,
        "path": None,
    }
    if store is not None:
        snapshot["path"] = str(store.root)
        if store._entries is not None:
            snapshot["entries"] = len(store._entries)
    return snapshot
