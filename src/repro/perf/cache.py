"""The congruence-class caches behind :mod:`repro.perf`.

Three caches, all invalidated together by :func:`clear_caches`:

* **symmetry** — ``γ(P)`` reports keyed by congruence class.  An entry
  stores the detected group and the distinct points of the *first*
  configuration of the class (unit-scaled, center-relative: the
  canonical frame).  A query of the same class is served by finding one
  rotation ``R`` aligning the canonical points onto the query points
  (:func:`repro.groups.detection.align_rotation`) and conjugating the
  stored group by ``R``.  ``R`` is verified against the full multiset
  before use, so a cache hit is *certified*, never heuristic; when no
  alignment verifies, the query falls back to full detection and is
  appended as a sibling entry under the same structural key.
* **symmetricity** — ``ϱ(P)`` results attached to symmetry entries.
  Specs are congruence invariants and are shared; witness arrangements
  are stored in the canonical frame and conjugated per query.
* **subgroups** — concrete subgroup enumerations keyed by the exact
  element-key set of the group arrangement.

Keys contain only exact integers (plus the tolerance parameters);
continuous data is compared tolerantly per entry.  See
``docs/PERFORMANCE.md`` for why this split is load-bearing.

These caches are the **L1** level of the cache hierarchy.  On an L1
miss the finite-group detection, the ``ϱ(P)`` computation, and the
subgroup enumeration additionally consult the cross-process **L2**
store (:mod:`repro.perf.shared`) under digests of their *exact* input
bytes — the center-relative point array, the concrete group element
stack and axis data — so sibling workers of a parallel run share the
pure recomputation without ever sharing the history-dependent
(conjugation-noisy) L1 state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.signatures import congruence_signature
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance
from repro.groups import detection as _detection

__all__ = [
    "cache_bytes",
    "cache_stats",
    "cached_subgroups",
    "cached_symmetricity",
    "cached_symmetry",
    "clear_caches",
    "is_enabled",
    "note_incremental",
    "probe_symmetry",
    "seed_symmetry",
    "set_enabled",
]

# Upper bound on retained congruence classes (and on memoized subgroup
# enumerations).  Formation runs touch a handful of classes per round;
# the bound only matters for long-lived processes scanning many
# patterns.
_MAX_CLASSES = 256

_enabled = True

_symmetry_cache: OrderedDict[tuple, list] = OrderedDict()
_subgroup_cache: OrderedDict[tuple, list] = OrderedDict()

_stats = {
    "symmetry": {"hits": 0, "misses": 0, "bypass": 0, "evictions": 0,
                 "incremental_hits": 0, "incremental_fallbacks": 0},
    "symmetricity": {"hits": 0, "misses": 0},
    "subgroups": {"hits": 0, "misses": 0, "evictions": 0},
}


@dataclass
class _ClassEntry:
    """Canonical data for one congruence class of configurations."""

    rel_unit: np.ndarray
    mults: np.ndarray
    radii_unit: np.ndarray
    radii_sorted: np.ndarray
    group: object
    symmetricity: tuple | None = field(default=None)


def set_enabled(flag: bool) -> None:
    """Globally enable or disable the congruence caches."""
    global _enabled  # reprolint: disable=REP003 -- audited lifecycle singleton: cache enable flag, toggled only by set_enabled()
    _enabled = bool(flag)


def is_enabled() -> bool:
    """True when the congruence caches are active."""
    return _enabled


def clear_caches() -> None:
    """Drop every cached entry and reset the hit/miss counters."""
    from repro.perf.round import clear_round_cache

    _symmetry_cache.clear()
    _subgroup_cache.clear()
    clear_round_cache()
    for counters in _stats.values():
        for name in counters:
            counters[name] = 0


def cache_stats() -> dict:
    """Snapshot of cache effectiveness.

    Returns a plain dict (one sub-dict per cache with ``hits`` /
    ``misses`` counters, plus entry counts and the enabled flag) so
    callers — the CLI, the scheduler, tests — can diff snapshots
    without touching cache internals.
    """
    from repro.perf.round import round_stats

    snapshot = {name: dict(counters) for name, counters in _stats.items()}
    snapshot["symmetry"]["classes"] = sum(
        len(bucket) for bucket in _symmetry_cache.values())
    snapshot["subgroups"]["entries"] = len(_subgroup_cache)
    snapshot["round"] = round_stats()
    snapshot["enabled"] = _enabled
    return snapshot


def cache_bytes() -> int:
    """Approximate retained bytes across the congruence caches."""
    total = 0
    for bucket in _symmetry_cache.values():
        for entry in bucket:
            total += (entry.rel_unit.nbytes + entry.mults.nbytes
                      + entry.radii_unit.nbytes + entry.radii_sorted.nbytes)
            group = entry.group
            if group is not None:
                total += group._stack.nbytes
    for subgroups in _subgroup_cache.values():
        total += sum(sub._stack.nbytes for sub in subgroups)
    return total


def _trim(cache: OrderedDict, stats_key: str) -> None:
    counters = _stats[stats_key]
    while len(cache) > _MAX_CLASSES:
        _, dropped = cache.popitem(last=False)
        counters["evictions"] += (len(dropped)
                                  if stats_key == "symmetry" else 1)


def _tol_key(tol: Tolerance) -> tuple:
    return (float(tol.abs_tol), float(tol.rel_tol))


def cached_symmetry(points, tol: Tolerance = DEFAULT_TOL, ball=None):
    """``detect_rotation_group`` memoized per congruence class.

    Collinear and degenerate configurations bypass the cache — their
    reports are cheap (no candidate enumeration) and carry
    query-specific data (the line direction) anyway.
    """
    if not _enabled:
        return _detection.detect_rotation_group(points, tol, ball=ball)

    pre = _detection._prepare_multiset(points, tol, ball)
    report = _detection._base_report(pre, tol)
    if report.kind != "finite":
        _stats["symmetry"]["bypass"] += 1
        return report

    scale = max(pre.ball.radius, 1e-300)
    rel_unit = pre.rel / scale
    radii_unit = pre.radii / scale
    slack = tol.geometric_slack(1.0)
    mults = np.asarray(pre.mults, dtype=np.int64)
    key = congruence_signature(len(points), mults) + (_tol_key(tol),)

    bucket = _symmetry_cache.get(key)
    if bucket is not None:
        radii_sorted = np.sort(radii_unit)
        for entry in bucket:
            if np.abs(entry.radii_sorted - radii_sorted).max() > 10 * slack:
                continue
            rotation = _detection.align_rotation(
                entry.rel_unit, entry.mults, entry.radii_unit,
                rel_unit, mults, radii_unit, slack)
            if rotation is None:
                continue
            _stats["symmetry"]["hits"] += 1
            _symmetry_cache.move_to_end(key)
            report.group = entry.group.transformed(rotation)
            report._perf_entry = entry
            report._perf_rotation = rotation
            return report

    _stats["symmetry"]["misses"] += 1
    # L2: the detected group is a pure function of the exact
    # center-relative array, multiplicities, ball radius, tolerance —
    # and the active array backend, whose kernels may round detection
    # arithmetic differently, so its name is part of the key (the one
    # L2 payload whose bytes are backend-dependent) — siblings of a
    # parallel run observing byte-identical world configurations share
    # one detection.
    from repro.backend import backend_name
    from repro.perf import shared as _shared

    report.group = _shared.shared_get_or_compute(
        "gamma",
        (b"gamma", backend_name().encode("ascii"), pre.rel, mults,
         float(pre.ball.radius), _tol_key(tol)),
        lambda: _detection._finish_finite_report(report, pre, tol).group)
    entry = _ClassEntry(rel_unit=rel_unit, mults=mults,
                        radii_unit=radii_unit,
                        radii_sorted=np.sort(radii_unit),
                        group=report.group)
    if bucket is None:
        _symmetry_cache[key] = [entry]
    else:
        bucket.append(entry)
    _symmetry_cache.move_to_end(key)
    _trim(_symmetry_cache, "symmetry")
    report._perf_entry = entry
    report._perf_rotation = np.eye(3)
    return report


def probe_symmetry(points, tol: Tolerance = DEFAULT_TOL, ball=None):
    """Hit-only L1 lookup: a report iff the class is already cached.

    Mirrors :func:`cached_symmetry`'s hit path but returns None on a
    miss instead of running detection, and never touches the hit/miss
    counters — a probe is a peek, not a query.  Non-finite reports
    (collinear / degenerate) are complete without detection and are
    returned directly.  The incremental round-priming path uses this
    to pick up the world-frame report of the previous configuration —
    whose congruence class the robots' observations populated during
    the round — without ever paying a full detection.
    """
    if not _enabled:
        return None
    pre = _detection._prepare_multiset(points, tol, ball)
    report = _detection._base_report(pre, tol)
    if report.kind != "finite":
        return report

    scale = max(pre.ball.radius, 1e-300)
    rel_unit = pre.rel / scale
    radii_unit = pre.radii / scale
    slack = tol.geometric_slack(1.0)
    mults = np.asarray(pre.mults, dtype=np.int64)
    key = congruence_signature(len(points), mults) + (_tol_key(tol),)
    bucket = _symmetry_cache.get(key)
    if bucket is None:
        return None
    radii_sorted = np.sort(radii_unit)
    for entry in bucket:
        if np.abs(entry.radii_sorted - radii_sorted).max() > 10 * slack:
            continue
        rotation = _detection.align_rotation(
            entry.rel_unit, entry.mults, entry.radii_unit,
            rel_unit, mults, radii_unit, slack)
        if rotation is None:
            continue
        report.group = entry.group.transformed(rotation)
        report._perf_entry = entry
        report._perf_rotation = rotation
        return report
    return None


def seed_symmetry(pre, report, tol: Tolerance, group):
    """Install an externally certified group as a fresh L1 class entry.

    ``pre``/``report`` are the new configuration's prepared multiset
    and finite base report; ``group`` must already be *verified*
    against it (the incremental γ(P) path conjugates the previous
    round's group and batch-checks every element before seeding).
    The entry is indistinguishable from one produced by a full
    detection miss, so the robots' congruent observations of the next
    round hit it through the normal alignment path.  Returns the
    completed report.
    """
    report.group = group
    if not _enabled:
        return report
    scale = max(pre.ball.radius, 1e-300)
    rel_unit = pre.rel / scale
    mults = np.asarray(pre.mults, dtype=np.int64)
    entry = _ClassEntry(rel_unit=rel_unit, mults=mults,
                        radii_unit=pre.radii / scale,
                        radii_sorted=np.sort(pre.radii / scale),
                        group=group)
    key = congruence_signature(int(mults.sum()), mults) + (_tol_key(tol),)
    bucket = _symmetry_cache.get(key)
    if bucket is None:
        _symmetry_cache[key] = [entry]
    else:
        bucket.append(entry)
    _symmetry_cache.move_to_end(key)
    _trim(_symmetry_cache, "symmetry")
    report._perf_entry = entry
    report._perf_rotation = np.eye(3)
    return report


def note_incremental(hit: bool) -> None:
    """Count one incremental-γ(P) priming attempt (hit or fallback)."""
    name = "incremental_hits" if hit else "incremental_fallbacks"
    _stats["symmetry"][name] += 1


def cached_symmetricity(config, report, tol: Tolerance, compute):
    """Serve ``ϱ(P)`` from the report's congruence-class entry.

    ``compute`` is the uncached finite-case implementation
    (dependency-injected to keep the import graph acyclic).  The first
    call of a class runs it and stores the result with witnesses
    rotated back into the canonical frame; later calls of the class
    conjugate the stored witnesses by the query's alignment rotation.
    """
    entry = getattr(report, "_perf_entry", None)
    if not _enabled or entry is None:
        return compute(config, report, tol)
    from repro.core.symmetricity import Symmetricity

    rotation = report._perf_rotation
    if entry.symmetricity is None:
        _stats["symmetricity"]["misses"] += 1
        # L2 key: exact configuration bytes PLUS the exact (possibly
        # conjugated) group bytes — the L1-served report group carries
        # alignment noise, so the group's abstract type alone would
        # not determine the witness arrangements bit-exactly.
        from repro.perf import shared as _shared
        from repro.perf.stats import group_digest

        def _compute_stripped():
            result = compute(config, report, tol)
            return (frozenset(result.specs), tuple(result.maximal),
                    result.witnesses)
        specs, maximal, witnesses = _shared.shared_get_or_compute(
            "rho",
            (b"rho", config.as_array(), group_digest(report.group),
             _tol_key(tol)),
            _compute_stripped)
        result = Symmetricity(specs=set(specs), maximal=list(maximal),
                              witnesses=witnesses, report=report)
        inverse = rotation.T
        canonical_witnesses = {
            spec: [w.transformed(inverse) for w in arrangements]
            for spec, arrangements in result.witnesses.items()
        }
        entry.symmetricity = (frozenset(result.specs),
                              tuple(result.maximal),
                              canonical_witnesses)
        return result
    _stats["symmetricity"]["hits"] += 1
    specs, maximal, canonical_witnesses = entry.symmetricity
    witnesses = {
        spec: [w.transformed(rotation) for w in arrangements]
        for spec, arrangements in canonical_witnesses.items()
    }
    return Symmetricity(specs=set(specs), maximal=list(maximal),
                        witnesses=witnesses, report=report)


def _subgroups_via_l3(group, tol: Tolerance, compute) -> list:
    """L3 leg of the chain: persist catalog-group lattices on disk.

    Only groups built by :mod:`repro.groups.catalog` carry the
    ``_catalog_key`` marker — their element stacks are bit-stable
    across runs, so the enumeration is worth persisting.  Detected
    (noise-carrying) arrangements never reach the disk.
    """
    catalog_key = getattr(group, "_catalog_key", None)
    if catalog_key is None:
        return compute(group, tol)
    from repro.perf import disk as _disk
    from repro.perf.stats import exact_digest

    key = exact_digest(b"lattice", catalog_key, group._stack, _tol_key(tol))
    cached = _disk.disk_get_object("lattice", key)
    if cached is not None:
        return cached
    result = compute(group, tol)
    _disk.disk_put_object("lattice", key, result)
    return result


def cached_subgroups(group, tol: Tolerance, compute) -> list:
    """Memoize subgroup enumeration by the exact element-key set.

    Unlike the congruence caches this key is *arrangement*-exact
    (rounded element matrices), so it only deduplicates repeat
    enumerations of identical arrangements — e.g. the paper's tables,
    or re-detected canonical groups — without any alignment step.

    Misses walk down the hierarchy: the L2 store under the exact
    element/axis bytes, then (for catalog groups) the L3 disk store,
    then the actual enumeration.
    """
    if not _enabled:
        return compute(group, tol)
    key = (frozenset(group._element_keys), _tol_key(tol))
    cached = _subgroup_cache.get(key)
    if cached is not None:
        _stats["subgroups"]["hits"] += 1
        _subgroup_cache.move_to_end(key)
        return list(cached)
    _stats["subgroups"]["misses"] += 1
    from repro.perf import shared as _shared
    from repro.perf.stats import group_digest

    result = _shared.shared_get_or_compute(
        "subgroups", (b"subgroups", group_digest(group), _tol_key(tol)),
        lambda: _subgroups_via_l3(group, tol, compute))
    _subgroup_cache[key] = list(result)
    _trim(_subgroup_cache, "subgroups")
    return list(result)
