"""The unified query façade: typed queries, one evaluator, versioned.

Two layers share this module:

* **Runs** — :func:`run_experiment` is the entrypoint behind the
  CLI's ``experiment`` command and the benchmark harness.  It
  dispatches a name (``lemma7``, ``theorem41``, ``theorem11``,
  ``figure1``, ``plane_formation``, ``baseline_2d``) to its driver in
  :mod:`repro.analysis.experiments`, runs it under an active tracer
  and a metrics window, and returns a :class:`RunResult` carrying the
  rows *and* the run's manifest and logical-metric snapshot.
* **Queries** — the typed request/response records shared by the CLI,
  the campaign layer and the query server (:mod:`repro.serve`):
  :class:`FormabilityQuery` (is ``ϱ(P) ⊆ ϱ(F)``?, Theorem 1.1),
  :class:`SymmetricityQuery` (``γ(P)`` / ``ϱ(P)`` classification) and
  :class:`RunQuery` (a full experiment run), all answered by
  :func:`evaluate_query` with a structured :class:`QueryResult`.
  ``run_experiment`` is a thin wrapper over the same internal runner
  the query surface uses.

Every record carries ``schema_version`` (:data:`API_SCHEMA_VERSION`)
so serialized requests, campaign cell digests and manifests are
forward-compatible: a consumer seeing a newer version than it
understands must reject rather than misread.

Determinism contract: the rows, the manifest's
:func:`repro.obs.manifest.deterministic_view` and
:meth:`QueryResult.deterministic_view` are pure functions of the
query — wall-clock readings appear only in traces, the manifest's
``timing`` section and the result's ``timing``/``cache`` sidecars,
never in rows (REP005), and the parallel runner merges worker metric
deltas so ``jobs=1`` and ``jobs=N`` report identical logical
counters.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Union

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover — annotation-only imports
    from repro.core.configuration import Configuration
    from repro.groups.group import GroupSpec

__all__ = ["API_SCHEMA_VERSION", "ExperimentSpec", "FormabilityQuery",
           "Query", "QueryResult", "RunQuery", "RunResult",
           "SymmetricityQuery", "as_points", "evaluate_query",
           "experiment_names", "resolved_spec_record", "run_experiment",
           "spec_record"]

#: Version of the typed query/spec records.  Bumped whenever a field
#: is added, renamed or changes meaning; serialized records carry it
#: and decoders reject versions they do not understand.
API_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything that parameterizes one experiment run.

    ``trials`` of ``None`` means the driver's own default (drivers
    without a trial sweep — ``theorem11``, ``plane_formation``,
    ``baseline_2d`` — ignore it).  ``cache`` of ``None`` inherits the
    process's current cache-enablement; True/False force it for the
    duration of the run and restore the prior setting afterwards.
    ``backend`` of ``None`` likewise inherits the process's active
    array backend; a name (``"numpy"``, ``"numba"``, ``"cupy"``)
    forces it for the run — with the usual graceful fallback to NumPy
    when the requested backend is unavailable — and restores the
    prior backend afterwards.  The three ``*_path`` fields request
    artifacts; ``None`` writes nothing.
    """

    trials: int | None = None
    seed: int = 0
    jobs: int = 1
    cache: bool | None = None
    backend: str | None = None
    trace_path: str | Path | None = None
    metrics_path: str | Path | None = None
    manifest_path: str | Path | None = None
    schema_version: int = API_SCHEMA_VERSION


@dataclass(frozen=True)
class RunResult:
    """What one :func:`run_experiment` call produced.

    ``rows`` is exactly what the driver returned (dicts or dataclass
    rows); ``manifest`` is the full run manifest (also written to
    ``spec.manifest_path`` when set); ``metrics`` is the run's
    logical-counter delta in snapshot form.
    """

    name: str
    rows: list = field(default_factory=list)
    manifest: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)


#: Points travel as a named-library pattern (``"cube"``) or an
#: immutable tuple of ``(x, y, z)`` tuples — hashable, serializable,
#: and exactly representable on the wire.
Points = "tuple[tuple[float, ...], ...]"
PointsLike = Union[str, "tuple[tuple[float, ...], ...]"]


def as_points(value: object) -> PointsLike:
    """Canonicalize a pattern reference for a query record.

    A library name passes through unchanged (the evaluator resolves
    it); anything array-like becomes the immutable tuple-of-tuples
    form.  Raises :class:`ReproError` for inputs that are neither.
    """
    if isinstance(value, str):
        return value
    try:
        rows = [tuple(float(c) for c in row) for row in value]  # type: ignore[union-attr]
    except (TypeError, ValueError) as exc:
        raise ReproError(
            f"points must be a pattern name or an n x 3 coordinate "
            f"array, got {type(value).__name__}") from exc
    return tuple(rows)


@dataclass(frozen=True)
class FormabilityQuery:
    """Is target pattern ``F`` formable from ``P`` (Theorem 1.1)?"""

    initial: PointsLike
    target: PointsLike
    schema_version: int = API_SCHEMA_VERSION


@dataclass(frozen=True)
class SymmetricityQuery:
    """Classify ``γ(P)`` and ``ϱ(P)`` of one configuration.

    ``multiset`` selects the Definition 6 semantics (points may carry
    multiplicity, as target patterns do); without it a configuration
    with repeated points is rejected, exactly like
    :func:`repro.core.symmetricity.symmetricity`.
    """

    points: PointsLike
    multiset: bool = False
    schema_version: int = API_SCHEMA_VERSION


@dataclass(frozen=True)
class RunQuery:
    """One full experiment run through the façade."""

    name: str
    spec: ExperimentSpec = field(default_factory=ExperimentSpec)
    schema_version: int = API_SCHEMA_VERSION


Query = Union[FormabilityQuery, SymmetricityQuery, RunQuery]


@dataclass(frozen=True)
class QueryResult:
    """The structured answer to any :data:`Query`.

    ``verdict`` is the one-word outcome (``"formable"`` /
    ``"unformable"``, the ``γ(P)`` spec string, ``"completed"``);
    ``groups`` names the rotation groups involved (``ϱ(P)`` / ``ϱ(F)``
    maximal elements for formability, ``γ``/``ϱ`` for symmetricity);
    ``explanation`` is :meth:`FormabilityReport.explain`-style prose;
    ``payload`` carries kind-specific detail (experiment rows and
    their digest, full spec lists, group orders).  ``cache`` (hit/miss
    provenance — did warm state serve this answer?) and ``timing``
    (audited-clock wall time) are *sidecars*: they depend on cache
    luck and machine speed, so :meth:`deterministic_view` strips them
    — two evaluations of one query, on any transport, must agree on
    the view byte-for-byte.
    """

    kind: str
    verdict: str
    groups: dict = field(default_factory=dict)
    explanation: str = ""
    payload: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    timing: dict = field(default_factory=dict)
    schema_version: int = API_SCHEMA_VERSION

    def deterministic_view(self) -> dict:
        """The result minus the luck- and clock-dependent sidecars."""
        return {
            "kind": self.kind,
            "schema_version": self.schema_version,
            "verdict": self.verdict,
            "groups": self.groups,
            "explanation": self.explanation,
            "payload": self.payload,
        }


# name -> (driver attribute in repro.analysis.experiments,
#          spec fields the driver consumes)
_REGISTRY: dict[str, tuple[str, tuple[str, ...]]] = {
    "lemma7": ("_lemma7_rows", ("trials", "seed", "jobs")),
    "theorem41": ("_theorem41_rows", ("trials", "seed", "jobs")),
    "theorem11": ("_theorem11_rows", ("seed", "jobs")),
    "figure1": ("_figure1_rows", ("trials", "seed", "jobs")),
    "plane_formation": ("_plane_formation_rows", ("seed",)),
    "baseline_2d": ("_baseline_2d_rows", ("seed",)),
}


def experiment_names() -> list[str]:
    """The registered experiment names, sorted."""
    return sorted(_REGISTRY)


def _driver_call(name: str, spec: ExperimentSpec):
    """Resolve the driver and the kwargs it consumes from the spec."""
    from repro.analysis import experiments as _experiments

    attr, params = _REGISTRY[name]
    driver = getattr(_experiments, attr)
    kwargs = {}
    for param in params:
        value = getattr(spec, param)
        if param == "trials" and value is None:
            continue  # keep the driver's documented default
        kwargs[param] = value
    return driver, kwargs


def _spec_record(name: str, spec: ExperimentSpec,
                 params: tuple[str, ...]) -> dict:
    """The manifest's ``spec`` section: consumed params only."""
    record = {param: getattr(spec, param) for param in params}
    if "trials" in record and record["trials"] is None:
        # Resolve the driver default so the manifest is explicit.
        import inspect

        from repro.analysis import experiments as _experiments

        driver = getattr(_experiments, _REGISTRY[name][0])
        record["trials"] = inspect.signature(
            driver).parameters["trials"].default
    record["cache"] = spec.cache
    record["backend"] = spec.backend
    record["schema_version"] = spec.schema_version
    return record


def resolved_spec_record(name: str, spec: ExperimentSpec) -> dict:
    """The manifest ``spec`` section for ``(name, spec)``, pre-run.

    Only the driver-consumed parameters appear (plus ``cache`` and
    ``backend``), with ``trials=None`` resolved to the driver's
    documented default — exactly what :func:`run_experiment` will
    record in the manifest.  The campaign layer keys cells on a digest
    of this record *before* running them, so resume can skip a cell
    without recomputing it.  Raises :class:`repro.errors.ReproError`
    for an unknown ``name``.
    """
    if name not in _REGISTRY:
        known = ", ".join(experiment_names())
        raise ReproError(f"unknown experiment {name!r} (known: {known})")
    return _spec_record(name, spec, _REGISTRY[name][1])


def run_experiment(name: str, spec: ExperimentSpec | None = None) -> RunResult:
    """Run one registered experiment under tracing and metrics.

    A thin wrapper over the typed query surface: equivalent to
    evaluating ``RunQuery(name, spec)`` and keeping the full
    :class:`RunResult`.  Raises :class:`repro.errors.ReproError` for
    an unknown ``name``.
    """
    return _execute_run(name, spec if spec is not None else ExperimentSpec())


def _execute_run(name: str, spec: ExperimentSpec) -> RunResult:
    """The one internal runner behind ``run_experiment`` and
    ``RunQuery`` evaluation."""
    from repro.obs import manifest as _manifest
    from repro.obs import metrics as _metrics
    from repro.obs.trace import AggregatingTracer, JsonlTracer, activated

    if name not in _REGISTRY:
        known = ", ".join(experiment_names())
        raise ReproError(f"unknown experiment {name!r} (known: {known})")
    driver, kwargs = _driver_call(name, spec)

    prior_cache = None
    if spec.cache is not None:
        from repro import perf as _perf

        prior_cache = _perf.is_enabled()
        _perf.set_enabled(spec.cache)
    prior_backend = None
    if spec.backend is not None:
        from repro import backend as _backend

        prior_backend = _backend.backend_name()
        _backend.set_backend(spec.backend)
    tracer = JsonlTracer(spec.trace_path) if spec.trace_path \
        else AggregatingTracer()
    reg = _metrics.registry()
    before = reg.snapshot()
    try:
        with activated(tracer):
            with tracer.span("experiment", experiment=name):
                reg.inc("experiment.runs")
                rows = driver(**kwargs)
    finally:
        tracer.close()
        if prior_cache is not None:
            from repro import perf as _perf

            _perf.set_enabled(prior_cache)
        if prior_backend is not None:
            from repro import backend as _backend

            _backend.set_backend(prior_backend)

    full_delta = _metrics.snapshot_delta(before, reg.snapshot())
    logical, performance = _metrics.split_performance(
        full_delta.get("counters", {}))
    # The manifest's deterministic view embeds the metrics section, so
    # it gets the logical delta only; the jobs-dependent backend
    # performance counters travel on the result and the artifact.
    logical_delta = {"counters": logical,
                     "histograms": full_delta.get("histograms", {})}
    run_metrics = {**logical_delta,
                   "backend": dict(sorted(performance.items()))}
    artifacts = {"trace": spec.trace_path, "metrics": spec.metrics_path,
                 "manifest": spec.manifest_path}
    manifest = _manifest.build_manifest(
        experiment=name,
        spec=_spec_record(name, spec, _REGISTRY[name][1]),
        rows=rows,
        metrics=logical_delta,
        phase_totals=tracer.phase_totals(),
        seed_streams=logical.get("seeds.spawned", 0),
        artifacts={k: v for k, v in artifacts.items() if v is not None})
    if spec.metrics_path is not None:
        _metrics.write_metrics(spec.metrics_path, run_metrics,
                               extra={"experiment": name})
    if spec.manifest_path is not None:
        _manifest.write_manifest(spec.manifest_path, manifest)
    return RunResult(name=name, rows=rows, manifest=manifest,
                     metrics=run_metrics)


def spec_record(spec: ExperimentSpec) -> dict:
    """The spec as a JSON-friendly dict (paths stringified).

    Carries ``schema_version`` like every serialized record of the
    query surface; this is the canonical name of what used to be
    ``spec_as_dict``.
    """
    record = asdict(spec)
    for key in ("trace_path", "metrics_path", "manifest_path"):
        if record[key] is not None:
            record[key] = str(record[key])
    return record


def spec_as_dict(spec: ExperimentSpec) -> dict:
    """Deprecated pre-versioning name of :func:`spec_record`.

    The record gained ``schema_version`` in the query-surface
    redesign; this shim preserves the historical shape (no version
    field) for callers that pinned it.
    """
    warnings.warn(
        "repro.api.spec_as_dict() is deprecated; use "
        "repro.api.spec_record() (the record now carries "
        "schema_version)", DeprecationWarning, stacklevel=2)
    record = spec_record(spec)
    record.pop("schema_version", None)
    return record


# ---------------------------------------------------------------------------
# Query evaluation
# ---------------------------------------------------------------------------


def _resolve_configuration(points: PointsLike) -> "Configuration":
    """A :class:`repro.core.configuration.Configuration` for a query
    pattern reference (library name or coordinate tuples)."""
    import numpy as np

    from repro.core.configuration import Configuration

    if isinstance(points, str):
        from repro.patterns.library import named_pattern

        rows = named_pattern(points)
    else:
        rows = [np.asarray(row, dtype=float) for row in points]
    return Configuration(rows)


def _specs_sorted(specs: "set[GroupSpec]") -> list[str]:
    """Group specs as a deterministically ordered list of names."""
    return [str(spec) for spec in sorted(specs)]  # type: ignore[type-var]


def _cache_provenance(before: dict, after: dict) -> dict:
    """Hit/miss provenance of one evaluation (cache-luck sidecar)."""
    from repro.obs.metrics import l1_delta
    from repro.perf import is_enabled

    delta = l1_delta(before, after)
    summary: dict = {"enabled": is_enabled(), "l1": {}}
    for cache_name in sorted(delta):
        counters = {key: value for key, value
                    in sorted(delta[cache_name].items())
                    if key in ("hits", "misses") and value}
        if counters:
            summary["l1"][cache_name] = counters
    return summary


def _evaluate_formability(query: FormabilityQuery,
                          ) -> tuple[str, dict, str, dict]:
    from repro.core.formability import formability_report

    initial = _resolve_configuration(query.initial)
    target = _resolve_configuration(query.target)
    report = formability_report(initial, target)
    verdict = "formable" if report.formable else "unformable"
    groups = {
        "rho_initial": [str(s) for s in
                        report.initial_symmetricity.maximal],
        "rho_target": [str(s) for s in
                       report.target_symmetricity.maximal],
        "blocking": [str(s) for s in report.blocking],
    }
    payload = {
        "n": initial.n,
        "rho_initial_specs": _specs_sorted(
            report.initial_symmetricity.specs),
        "rho_target_specs": _specs_sorted(
            report.target_symmetricity.specs),
    }
    return verdict, groups, report.explain(), payload


def _evaluate_symmetricity(query: SymmetricityQuery,
                           ) -> tuple[str, dict, str, dict]:
    from repro.core.symmetricity import (
        symmetricity,
        symmetricity_of_multiset,
    )

    config = _resolve_configuration(query.points)
    report = config.symmetry
    classify = symmetricity_of_multiset if query.multiset else symmetricity
    rho = classify(config)
    if report.kind == "finite":
        gamma = str(report.group.spec)
        order = int(report.group.order)
    else:
        gamma = report.kind if report.infinite_kind is None \
            else f"{report.kind}:{report.infinite_kind.value}"
        order = 0
    maximal = [str(s) for s in rho.maximal]
    groups = {"gamma": gamma, "rho_maximal": maximal}
    payload = {
        "n": config.n,
        "gamma_order": order,
        "rho_specs": _specs_sorted(rho.specs),
    }
    explanation = (f"gamma(P) = {gamma}; varrho(P) maximal = "
                   f"{{{', '.join(maximal)}}}.")
    return gamma, groups, explanation, payload


def _evaluate_run(query: RunQuery) -> tuple[str, dict, str, dict]:
    from repro.obs.manifest import jsonable_rows, rows_digest

    result = _execute_run(query.name, query.spec)
    rows = jsonable_rows(result.rows)
    record = resolved_spec_record(query.name, query.spec)
    payload = {
        "experiment": query.name,
        "spec": record,
        "rows": rows,
        "rows_sha256": rows_digest(rows),
        "row_count": len(rows),
    }
    explanation = (f"experiment {query.name} completed: {len(rows)} "
                   f"rows, sha256 {payload['rows_sha256'][:12]}…")
    return "completed", {}, explanation, payload


def evaluate_query(query: Query) -> QueryResult:
    """Answer one typed query with a structured :class:`QueryResult`.

    The one evaluator behind the CLI's ``query`` subcommands and the
    query server's workers: every transport produces byte-identical
    :meth:`QueryResult.deterministic_view` payloads because they all
    route through here.  Raises :class:`ReproError` subclasses for
    invalid queries (unknown pattern, robot-count mismatch, unknown
    experiment, unsupported schema version).
    """
    from repro.obs import clock
    from repro.obs.metrics import l1_snapshot
    from repro.obs.trace import get_tracer

    if query.schema_version > API_SCHEMA_VERSION:
        raise ReproError(
            f"query schema_version {query.schema_version} is newer "
            f"than this library understands ({API_SCHEMA_VERSION})")
    evaluators = {
        FormabilityQuery: ("formability", _evaluate_formability),
        SymmetricityQuery: ("symmetricity", _evaluate_symmetricity),
        RunQuery: ("run", _evaluate_run),
    }
    try:
        kind, evaluator = evaluators[type(query)]
    except KeyError:
        raise ReproError(
            f"unknown query type {type(query).__name__}") from None
    cache_before = l1_snapshot()
    started = clock.monotonic()
    with get_tracer().span("query", kind=kind):
        verdict, groups, explanation, payload = evaluator(query)
    elapsed_ms = (clock.monotonic() - started) * 1000.0
    return QueryResult(
        kind=kind,
        verdict=verdict,
        groups=groups,
        explanation=explanation,
        payload=payload,
        cache=_cache_provenance(cache_before, l1_snapshot()),
        timing={"elapsed_ms": round(elapsed_ms, 3)},
    )
