"""The unified run façade: one call per experiment, observability included.

:func:`run_experiment` is the single entrypoint behind the CLI's
``experiment`` command and the benchmark harness.  It dispatches a
name (``lemma7``, ``theorem41``, ``theorem11``, ``figure1``,
``plane_formation``, ``baseline_2d``) to its driver in
:mod:`repro.analysis.experiments`, runs it under an active tracer and
a metrics window, and returns a :class:`RunResult` carrying the rows
*and* the run's manifest and logical-metric snapshot.  Artifacts
(JSONL trace, JSON metrics, JSON manifest) are written when the
:class:`ExperimentSpec` names paths for them.

Determinism contract: the rows and the manifest's
:func:`repro.obs.manifest.deterministic_view` are pure functions of
``(name, spec)`` — wall-clock readings appear only in the trace and
the manifest's ``timing`` section, never in rows (REP005), and the
parallel runner merges worker metric deltas so ``jobs=1`` and
``jobs=N`` report identical logical counters.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import ReproError

__all__ = ["ExperimentSpec", "RunResult", "experiment_names",
           "resolved_spec_record", "run_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything that parameterizes one experiment run.

    ``trials`` of ``None`` means the driver's own default (drivers
    without a trial sweep — ``theorem11``, ``plane_formation``,
    ``baseline_2d`` — ignore it).  ``cache`` of ``None`` inherits the
    process's current cache-enablement; True/False force it for the
    duration of the run and restore the prior setting afterwards.
    ``backend`` of ``None`` likewise inherits the process's active
    array backend; a name (``"numpy"``, ``"numba"``, ``"cupy"``)
    forces it for the run — with the usual graceful fallback to NumPy
    when the requested backend is unavailable — and restores the
    prior backend afterwards.  The three ``*_path`` fields request
    artifacts; ``None`` writes nothing.
    """

    trials: int | None = None
    seed: int = 0
    jobs: int = 1
    cache: bool | None = None
    backend: str | None = None
    trace_path: str | Path | None = None
    metrics_path: str | Path | None = None
    manifest_path: str | Path | None = None


@dataclass(frozen=True)
class RunResult:
    """What one :func:`run_experiment` call produced.

    ``rows`` is exactly what the driver returned (dicts or dataclass
    rows); ``manifest`` is the full run manifest (also written to
    ``spec.manifest_path`` when set); ``metrics`` is the run's
    logical-counter delta in snapshot form.
    """

    name: str
    rows: list = field(default_factory=list)
    manifest: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)


# name -> (driver attribute in repro.analysis.experiments,
#          spec fields the driver consumes)
_REGISTRY: dict[str, tuple[str, tuple[str, ...]]] = {
    "lemma7": ("_lemma7_rows", ("trials", "seed", "jobs")),
    "theorem41": ("_theorem41_rows", ("trials", "seed", "jobs")),
    "theorem11": ("_theorem11_rows", ("seed", "jobs")),
    "figure1": ("_figure1_rows", ("trials", "seed", "jobs")),
    "plane_formation": ("_plane_formation_rows", ("seed",)),
    "baseline_2d": ("_baseline_2d_rows", ("seed",)),
}


def experiment_names() -> list[str]:
    """The registered experiment names, sorted."""
    return sorted(_REGISTRY)


def _driver_call(name: str, spec: ExperimentSpec):
    """Resolve the driver and the kwargs it consumes from the spec."""
    from repro.analysis import experiments as _experiments

    attr, params = _REGISTRY[name]
    driver = getattr(_experiments, attr)
    kwargs = {}
    for param in params:
        value = getattr(spec, param)
        if param == "trials" and value is None:
            continue  # keep the driver's documented default
        kwargs[param] = value
    return driver, kwargs


def _spec_record(name: str, spec: ExperimentSpec,
                 params: tuple[str, ...]) -> dict:
    """The manifest's ``spec`` section: consumed params only."""
    record = {param: getattr(spec, param) for param in params}
    if "trials" in record and record["trials"] is None:
        # Resolve the driver default so the manifest is explicit.
        import inspect

        from repro.analysis import experiments as _experiments

        driver = getattr(_experiments, _REGISTRY[name][0])
        record["trials"] = inspect.signature(
            driver).parameters["trials"].default
    record["cache"] = spec.cache
    record["backend"] = spec.backend
    return record


def resolved_spec_record(name: str, spec: ExperimentSpec) -> dict:
    """The manifest ``spec`` section for ``(name, spec)``, pre-run.

    Only the driver-consumed parameters appear (plus ``cache`` and
    ``backend``), with ``trials=None`` resolved to the driver's
    documented default — exactly what :func:`run_experiment` will
    record in the manifest.  The campaign layer keys cells on a digest
    of this record *before* running them, so resume can skip a cell
    without recomputing it.  Raises :class:`repro.errors.ReproError`
    for an unknown ``name``.
    """
    if name not in _REGISTRY:
        known = ", ".join(experiment_names())
        raise ReproError(f"unknown experiment {name!r} (known: {known})")
    return _spec_record(name, spec, _REGISTRY[name][1])


def run_experiment(name: str, spec: ExperimentSpec | None = None) -> RunResult:
    """Run one registered experiment under tracing and metrics.

    Raises :class:`repro.errors.ReproError` for an unknown ``name``.
    """
    from repro.obs import manifest as _manifest
    from repro.obs import metrics as _metrics
    from repro.obs.trace import AggregatingTracer, JsonlTracer, activated

    if name not in _REGISTRY:
        known = ", ".join(experiment_names())
        raise ReproError(f"unknown experiment {name!r} (known: {known})")
    spec = spec if spec is not None else ExperimentSpec()
    driver, kwargs = _driver_call(name, spec)

    prior_cache = None
    if spec.cache is not None:
        from repro import perf as _perf

        prior_cache = _perf.is_enabled()
        _perf.set_enabled(spec.cache)
    prior_backend = None
    if spec.backend is not None:
        from repro import backend as _backend

        prior_backend = _backend.backend_name()
        _backend.set_backend(spec.backend)
    tracer = JsonlTracer(spec.trace_path) if spec.trace_path \
        else AggregatingTracer()
    reg = _metrics.registry()
    before = reg.snapshot()
    try:
        with activated(tracer):
            with tracer.span("experiment", experiment=name):
                reg.inc("experiment.runs")
                rows = driver(**kwargs)
    finally:
        tracer.close()
        if prior_cache is not None:
            from repro import perf as _perf

            _perf.set_enabled(prior_cache)
        if prior_backend is not None:
            from repro import backend as _backend

            _backend.set_backend(prior_backend)

    full_delta = _metrics.snapshot_delta(before, reg.snapshot())
    logical, performance = _metrics.split_performance(
        full_delta.get("counters", {}))
    # The manifest's deterministic view embeds the metrics section, so
    # it gets the logical delta only; the jobs-dependent backend
    # performance counters travel on the result and the artifact.
    logical_delta = {"counters": logical,
                     "histograms": full_delta.get("histograms", {})}
    run_metrics = {**logical_delta,
                   "backend": dict(sorted(performance.items()))}
    artifacts = {"trace": spec.trace_path, "metrics": spec.metrics_path,
                 "manifest": spec.manifest_path}
    manifest = _manifest.build_manifest(
        experiment=name,
        spec=_spec_record(name, spec, _REGISTRY[name][1]),
        rows=rows,
        metrics=logical_delta,
        phase_totals=tracer.phase_totals(),
        seed_streams=logical.get("seeds.spawned", 0),
        artifacts={k: v for k, v in artifacts.items() if v is not None})
    if spec.metrics_path is not None:
        _metrics.write_metrics(spec.metrics_path, run_metrics,
                               extra={"experiment": name})
    if spec.manifest_path is not None:
        _manifest.write_manifest(spec.manifest_path, manifest)
    return RunResult(name=name, rows=rows, manifest=manifest,
                     metrics=run_metrics)


def spec_as_dict(spec: ExperimentSpec) -> dict:
    """The spec as a JSON-friendly dict (paths stringified)."""
    record = asdict(spec)
    for key in ("trace_path", "metrics_path", "manifest_path"):
        if record[key] is not None:
            record[key] = str(record[key])
    return record
