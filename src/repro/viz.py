"""Dependency-free SVG rendering of configurations and executions.

Produces simple orthographic projections so examples and debugging
sessions can *see* formations without any plotting stack: robots as
filled circles (radius modulated by depth), optional target pattern as
open circles, optional traces between consecutive configurations.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.geometry.tolerance import SPAN_FLOOR

__all__ = ["render_svg", "render_execution_svg"]

_VIEW = 480.0
_MARGIN = 40.0

# Default orthographic camera: rotate slightly so all three axes show.
_CAMERA = np.array([
    [0.866, 0.0, -0.5],
    [-0.25, 0.866, -0.433],
    [0.433, 0.5, 0.75],
])


def _project(points, camera=_CAMERA):
    arr = np.asarray([np.asarray(p, dtype=float) for p in points])
    rotated = arr @ camera.T
    return rotated[:, :2], rotated[:, 2]


def _fit(points_2d):
    lo = points_2d.min(axis=0)
    hi = points_2d.max(axis=0)
    span = float(max(hi[0] - lo[0], hi[1] - lo[1], SPAN_FLOOR))
    scale = (_VIEW - 2 * _MARGIN) / span
    center = (lo + hi) / 2.0

    def to_screen(p):
        x = _MARGIN + (_VIEW - 2 * _MARGIN) / 2.0 + (p[0] - center[0]) * scale
        y = _MARGIN + (_VIEW - 2 * _MARGIN) / 2.0 - (p[1] - center[1]) * scale
        return float(x), float(y)

    return to_screen


def render_svg(points, path, target=None, title: str | None = None) -> str:
    """Render a configuration (and optional target pattern) to SVG.

    Returns the SVG text; ``path`` may be None to skip writing.
    """
    pts = [np.asarray(p, dtype=float) for p in points]
    if not pts:
        raise ReproError("nothing to render")
    everything = list(pts) + ([np.asarray(p, dtype=float)
                               for p in target] if target else [])
    flat, depth = _project(everything)
    to_screen = _fit(flat)
    depth_lo, depth_hi = float(depth.min()), float(depth.max())
    depth_span = max(depth_hi - depth_lo, SPAN_FLOOR)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_VIEW:.0f}" '
        f'height="{_VIEW:.0f}" viewBox="0 0 {_VIEW:.0f} {_VIEW:.0f}">',
        f'<rect width="{_VIEW:.0f}" height="{_VIEW:.0f}" fill="#ffffff"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_VIEW / 2:.0f}" y="24" text-anchor="middle" '
            f'font-family="sans-serif" font-size="15">{title}</text>')

    if target:
        for i in range(len(pts), len(everything)):
            x, y = to_screen(flat[i])
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="7" fill="none" '
                'stroke="#c0392b" stroke-width="1.5" '
                'stroke-dasharray="3,2"/>')

    order = sorted(range(len(pts)), key=lambda i: depth[i])
    for i in order:
        x, y = to_screen(flat[i])
        t = (float(depth[i]) - depth_lo) / depth_span
        radius = 4.0 + 4.0 * t
        shade = int(40 + 120 * (1.0 - t))
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius:.1f}" '
            f'fill="rgb({shade},{shade + 30},{200})" '
            'stroke="#1b2631" stroke-width="1"/>')
    parts.append("</svg>")
    svg = "\n".join(parts)
    if path is not None:
        Path(path).write_text(svg)
    return svg


def render_execution_svg(configurations, path,
                         target=None, columns: int = 4) -> str:
    """Render an execution trace as a grid of per-round panels."""
    configs = list(configurations)
    if not configs:
        raise ReproError("empty execution trace")
    rows = (len(configs) + columns - 1) // columns
    width = columns * _VIEW
    height = rows * _VIEW
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">']
    for index, config in enumerate(configs):
        points = getattr(config, "points", config)
        panel = render_svg(points, path=None, target=target,
                           title=f"round {index}")
        inner = panel.split(">", 1)[1].rsplit("</svg>", 1)[0]
        col = index % columns
        row = index // columns
        parts.append(f'<g transform="translate({col * _VIEW:.0f},'
                     f'{row * _VIEW:.0f})">{inner}</g>')
    parts.append("</svg>")
    svg = "\n".join(parts)
    if path is not None:
        Path(path).write_text(svg)
    return svg
