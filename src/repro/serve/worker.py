"""The pool-side query runner: one ``evaluate_query`` per task.

:func:`run_query_task` is the :class:`repro.campaign.pool.WarmPool`
``runner`` for the serve dispatcher — a module-level callable (it
crosses the process boundary by pickling) that decodes one wire
query, answers it through the one façade evaluator, and returns the
wire result.  The inline dispatcher calls the same
:func:`evaluate_wire_query` in a thread, so both dispatch paths
produce the same bytes for the same query.

Zero-copy inputs: the dispatcher may replace a query's coordinate
lists with :class:`repro.perf.blocks.ArrayRef` descriptors packed
into a per-request ``ShmArena``.  The worker materializes each ref
into the immutable tuple form and immediately releases its mapping
(:func:`repro.perf.blocks.release_attached`) — a query worker sees a
fresh segment per request, so holding attachments would accumulate
mappings for the life of the worker.

Error taxonomy: :class:`repro.errors.ReproError` means the *query*
was bad or unanswerable (unknown pattern, robot-count mismatch,
unsupported schema) — the runner catches it and returns a structured
error payload the server maps to 422.  Anything else is a *server*
bug and propagates, surfacing as the pool's ``"err"`` outcome → 500.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ReproError

__all__ = ["evaluate_wire_query", "run_query_task"]


def _materialized(value: Any) -> Any:
    """Coordinate rows for a wire field that may be an ``ArrayRef``."""
    from repro.perf.blocks import ArrayRef, release_attached

    if not isinstance(value, ArrayRef):
        return value
    array = value.load()
    rows = [[float(c) for c in row] for row in array]
    del array  # the copy is complete; let the mapping go
    release_attached(value.shm_name)
    return rows


def evaluate_wire_query(wire: Mapping[str, Any]) -> dict:
    """Decode, evaluate and re-encode one wire query.

    The shared core of both dispatch paths; raises
    :class:`ReproError` for invalid queries.
    """
    from repro.api import evaluate_query
    from repro.serve.protocol import decode_query, encode_result

    resolved = dict(wire)
    for fname in ("initial", "target", "points"):
        if fname in resolved:
            resolved[fname] = _materialized(resolved[fname])
    query = decode_query(resolved)
    if resolved.get("kind") == "run":
        # A run's rows must be byte-identical to the inline reference
        # path regardless of which queries shared this worker — same
        # L1-reset rule as repro.campaign.pool.run_cell_task.  The
        # geometric queries keep L1 warm: their deterministic views
        # are discrete (verdicts, group names), never float-bearing.
        from repro import perf

        perf.clear_caches()
    return encode_result(evaluate_query(query))


def run_query_task(task: "tuple[str, dict]") -> dict:
    """Execute one serve task ``(task_id, wire_query)`` in-process.

    Returns ``{"status": 200, "result": wire_result}`` on success and
    ``{"status": 422, "error": message}`` for invalid queries.
    """
    _task_id, wire = task
    try:
        return {"status": 200, "result": evaluate_wire_query(wire)}
    except ReproError as exc:
        return {"status": 422, "error": str(exc)}
