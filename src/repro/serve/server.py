"""The asyncio query server: admission, coalescing, deadlines, drain.

One event loop owns the sockets and the bookkeeping; dispatchers
(:mod:`repro.serve.dispatch`) own the CPU.  The request path:

1. **Admission** — at most ``queue_depth`` queries are in flight;
   request ``queue_depth + 1`` is answered ``429`` immediately
   (``serve.rejected``).  Refusing loudly beats queueing silently:
   a client that sees 429 can back off, a client whose request sits
   in an unbounded queue just sees latency.
2. **Coalescing** — the decoded query's
   :func:`repro.serve.protocol.query_key` is looked up in the
   in-flight table.  A hit (``serve.coalesced``) awaits the *same*
   future as the original request — one computation, one L2/L3 cache
   entry, N responses.  Equal keys imply byte-identical deterministic
   views, so sharing is invisible to clients (the ``served`` sidecar
   reports it for the curious).
3. **Deadline** — every waiter is bounded by
   ``asyncio.wait_for(asyncio.shield(future), deadline)``.  The
   shield matters twice over: a timed-out waiter (``504``,
   ``serve.timeouts``) must not cancel the computation its coalesced
   siblings still await, and even an answer nobody is left to receive
   still lands in the warm caches for the next asker.
4. **Drain** — SIGTERM/SIGINT stops the listener, lets in-flight
   queries finish (bounded by the deadline), then closes the
   dispatcher — which releases the worker pool, its L2 segment and
   every per-request arena (REP010: nothing leaks on any exit path).

Counters live in the ``serve.`` namespace of the process
:class:`repro.obs.metrics.MetricsRegistry` (performance-class: they
depend on arrival timing); every request runs under a
``serve.request`` trace span.
"""

from __future__ import annotations

import asyncio
import itertools
import signal
from dataclasses import dataclass

from repro.errors import ReproError, ServiceError
from repro.serve.http import HttpRequest, read_request, response_bytes

__all__ = ["QueryServer", "ServeConfig", "serve_main"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything that parameterizes one server instance.

    ``workers=0`` evaluates inline on server threads (development,
    tests); ``workers>0`` runs a warm process pool.  ``port=0`` binds
    an ephemeral port (the bound address is printed / exposed via
    :attr:`QueryServer.address`).  ``queue_depth`` bounds admitted
    queries, not TCP connections.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 0
    queue_depth: int = 16
    deadline_s: float = 30.0


class QueryServer:
    """One listener + dispatcher + in-flight table.

    ``dispatcher`` is injectable for tests (anything with
    ``await dispatch(task_id, wire) -> payload`` and ``close()``);
    by default :attr:`ServeConfig.workers` picks inline vs pool.
    """

    def __init__(self, config: ServeConfig | None = None,
                 dispatcher=None) -> None:
        self.config = config if config is not None else ServeConfig()
        self._dispatcher = dispatcher
        self._server: asyncio.AbstractServer | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._admitted = 0
        self._draining = False
        self._task_ids = itertools.count(1)

    @property
    def address(self) -> "tuple[str, int]":
        """The bound ``(host, port)`` (resolves ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("server is not listening", status=503)
        name = self._server.sockets[0].getsockname()
        return str(name[0]), int(name[1])

    async def start(self) -> None:
        """Build the dispatcher and start listening."""
        if self._dispatcher is None:
            from repro.serve.dispatch import (
                InlineDispatcher,
                PoolDispatcher,
            )

            self._dispatcher = (
                PoolDispatcher(self.config.workers)
                if self.config.workers > 0 else InlineDispatcher())
        # The dispatcher may own processes and shared memory from
        # here: release it if the listener fails to bind (REP010).
        try:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.config.host,
                port=self.config.port)
        except BaseException:
            self._dispatcher.close()
            raise

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work, release everything.

        Idempotent; bounded by one deadline interval — anything still
        unfinished after that is failed by the dispatcher teardown.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [future for future in self._inflight.values()
                   if not future.done()]
        if pending:
            await asyncio.wait(pending,
                               timeout=self.config.deadline_s)
        if self._dispatcher is not None:
            self._dispatcher.close()
            self._dispatcher = None

    # ------------------------------------------------------------------
    # Connection / routing
    # ------------------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ServiceError as exc:
                    writer.write(response_bytes(
                        exc.status, {"error": str(exc)}, close=True))
                    await writer.drain()
                    break
                if request is None:
                    break
                close = request.headers.get(
                    "connection", "").lower() == "close"
                status, payload = await self._route(request)
                writer.write(response_bytes(status, payload,
                                            close=close))
                await writer.drain()
                if close:
                    break
        except asyncio.CancelledError:
            # Loop teardown cancelled an idle keep-alive connection;
            # finishing quietly (instead of re-raising) keeps the
            # stream protocol's done-callback from logging it.
            pass
        except (ConnectionResetError, BrokenPipeError):
            pass  # the client hung up; nothing left to tell it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, request: HttpRequest,
                     ) -> "tuple[int, dict]":
        if request.path == "/v1/query":
            if request.method != "POST":
                return 405, {"error": "query endpoint takes POST"}
            return await self._handle_query(request)
        if request.path == "/v1/healthz":
            if request.method != "GET":
                return 405, {"error": "healthz endpoint takes GET"}
            return 200, self._health_payload()
        if request.path == "/v1/metrics":
            if request.method != "GET":
                return 405, {"error": "metrics endpoint takes GET"}
            return 200, self._metrics_payload()
        return 404, {"error": f"unknown path {request.path!r}"}

    def _health_payload(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "workers": self.config.workers,
            "queue_depth": self.config.queue_depth,
            "in_flight": self._admitted,
        }

    def _metrics_payload(self) -> dict:
        from repro.obs import metrics as _metrics

        snap = _metrics.registry().snapshot()
        return {
            "serve": {
                "counters": {
                    name: value for name, value
                    in snap.get("counters", {}).items()
                    if name.startswith("serve.")},
                "histograms": {
                    name: value for name, value
                    in snap.get("histograms", {}).items()
                    if name.startswith("serve.")},
            },
            "cache": _metrics.cache_metrics(),
        }

    # ------------------------------------------------------------------
    # The query path
    # ------------------------------------------------------------------

    async def _handle_query(self, request: HttpRequest,
                            ) -> "tuple[int, dict]":
        from repro.obs import clock
        from repro.obs import metrics as _metrics
        from repro.obs.trace import get_tracer
        from repro.serve.protocol import decode_query, query_key

        reg = _metrics.registry()
        reg.inc("serve.requests")
        if self._draining:
            reg.inc("serve.rejected")
            return 503, {"error": "server is draining"}
        if self._admitted >= self.config.queue_depth:
            reg.inc("serve.rejected")
            return 429, {"error": f"queue depth "
                                  f"{self.config.queue_depth} reached; "
                                  f"retry later"}
        try:
            wire = request.json()
            key = query_key(decode_query(wire))
        except ServiceError as exc:
            reg.inc("serve.errors")
            return exc.status, {"error": str(exc)}
        except ReproError as exc:
            reg.inc("serve.errors")
            return 422, {"error": str(exc)}

        self._admitted += 1
        started = clock.monotonic()
        kind = str(wire.get("kind", "?"))
        try:
            with get_tracer().span("serve.request", kind=kind):
                future = self._inflight.get(key)
                coalesced = future is not None
                if coalesced:
                    reg.inc("serve.coalesced")
                else:
                    reg.inc("serve.dispatched")
                    future = asyncio.ensure_future(
                        self._dispatch(key, wire))
                    self._inflight[key] = future
                try:
                    payload = await asyncio.wait_for(
                        asyncio.shield(future),
                        timeout=self.config.deadline_s)
                except asyncio.TimeoutError:
                    reg.inc("serve.timeouts")
                    return 504, {"error":
                                 f"deadline of "
                                 f"{self.config.deadline_s}s exceeded"}
                except ServiceError as exc:
                    reg.inc("serve.errors")
                    return exc.status, {"error": str(exc)}
            status = int(payload.get("status", 500))
            if status != 200:
                reg.inc("serve.errors")
                return status, {"error": str(payload.get(
                    "error", "query failed"))}
            elapsed_ms = (clock.monotonic() - started) * 1000.0
            reg.inc("serve.completed")
            reg.observe("serve.latency_ms", elapsed_ms)
            response = dict(payload["result"])
            response["served"] = {"coalesced": coalesced,
                                  "elapsed_ms": round(elapsed_ms, 3)}
            return 200, response
        finally:
            self._admitted -= 1

    async def _dispatch(self, key: str, wire: dict) -> dict:
        task_id = f"q{next(self._task_ids)}"
        try:
            return await self._dispatcher.dispatch(task_id, wire)
        finally:
            # Retire the in-flight entry only if it is still ours: a
            # completed-then-reissued key may already map to a newer
            # future.
            if self._inflight.get(key) is asyncio.current_task():
                self._inflight.pop(key, None)


def serve_main(config: ServeConfig | None = None) -> int:
    """Run one server until SIGTERM/SIGINT, then drain.  Returns 0.

    Prints exactly one ``serving on HOST:PORT`` line once the socket
    is bound — the CLI, the smoke job and the benchmark harness all
    parse it to discover an ephemeral port.
    """
    config = config if config is not None else ServeConfig()

    async def _main() -> int:
        server = QueryServer(config)
        await server.start()
        host, port = server.address
        print(f"serving on {host}:{port}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        hooked = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                hooked.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without loop signal support
        try:
            await stop.wait()
        finally:
            for signum in hooked:
                loop.remove_signal_handler(signum)
            await server.drain()
        print("drained", flush=True)
        return 0

    return asyncio.run(_main())
