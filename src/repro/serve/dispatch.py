"""Dispatchers: where a query's CPU-bound kernel actually runs.

The event loop must never execute a symmetry detection itself — a
``γ(P)`` classification can take milliseconds to seconds, and one
slow query would stall every concurrent client.  Two dispatchers
implement the same ``await dispatch(task_id, wire) -> payload``
surface:

* :class:`InlineDispatcher` (``workers=0``) runs
  :func:`repro.serve.worker.evaluate_wire_query` on a thread via
  ``asyncio.to_thread``.  The GIL means heavy numeric queries still
  steal cycles from the loop, but nothing *blocks* it — right for
  tests, development and the CLI's default.
* :class:`PoolDispatcher` (``workers>0``) owns a
  :class:`repro.campaign.pool.WarmPool` whose runner is
  :func:`repro.serve.worker.run_query_task`: long-lived worker
  processes with a shared warm L2 store, exactly the campaign's
  machinery with a different task type.  A single pump thread polls
  the pool's result queue and completes per-request futures with
  ``loop.call_soon_threadsafe`` — the only thread-to-loop crossing.

Coordinate payloads ride the :class:`repro.perf.blocks.ShmArena`
zero-copy path: the dispatcher packs each query's arrays into one
per-request segment and submits lightweight refs; the worker
materializes and releases them.  The arena is parent-owned and closed
when the outcome arrives (or on any submit/teardown failure — REP010:
every exit path releases it exactly once).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Mapping

from repro.errors import ReproError, ServiceError, SimulationError

__all__ = ["InlineDispatcher", "PoolDispatcher"]

_PUMP_POLL_SECONDS = 0.1


class InlineDispatcher:
    """Evaluate queries on threads inside the server process."""

    jobs = 0

    async def dispatch(self, task_id: str,
                       wire: Mapping[str, Any]) -> dict:
        from repro.serve.worker import evaluate_wire_query

        def _run() -> dict:
            try:
                return {"status": 200,
                        "result": evaluate_wire_query(wire)}
            except ReproError as exc:
                return {"status": 422, "error": str(exc)}

        return await asyncio.to_thread(_run)

    def close(self) -> None:
        """Nothing to release; present for dispatcher symmetry."""


class PoolDispatcher:
    """Evaluate queries on a campaign-style warm worker pool."""

    def __init__(self, jobs: int) -> None:
        from repro.campaign.pool import WarmPool
        from repro.serve.worker import run_query_task

        self.jobs = max(1, int(jobs))
        self._pool = WarmPool(self.jobs, runner=run_query_task)
        # The pool owns live processes and an L2 segment from here:
        # any construction failure below must tear it down (REP010).
        try:
            self._pending: dict[str, tuple] = {}
            self._lock = threading.Lock()
            self._stop = threading.Event()
            self._pump = threading.Thread(
                target=self._pump_main, name="serve-pool-pump",
                daemon=True)
            self._pump.start()
        except BaseException:
            self._pool.close()
            raise
        self._closed = False

    def _packed(self, wire: Mapping[str, Any]) -> "tuple[Any, dict]":
        """``(arena, wire-with-refs)`` for one query's coordinates."""
        from repro.perf.blocks import ArrayRef, ShmArena

        fields = [fname for fname in ("initial", "target", "points")
                  if isinstance(wire.get(fname), list)]
        if not fields:
            return None, dict(wire)
        try:
            arena = ShmArena.pack([wire[fname] for fname in fields])
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                f"query coordinates are not rectangular numeric "
                f"arrays: {exc}", status=422) from None
        try:
            packed = dict(wire)
            for fname, ref in zip(fields, arena.refs):
                assert isinstance(ref, ArrayRef)
                packed[fname] = ref
        except BaseException:
            arena.close()
            raise
        return arena, packed

    async def dispatch(self, task_id: str,
                       wire: Mapping[str, Any]) -> dict:
        if self._closed:
            raise ServiceError("dispatcher is closed", status=503)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        arena, packed = self._packed(wire)
        with self._lock:
            self._pending[task_id] = (loop, future, arena)
        try:
            self._pool.submit((task_id, packed))
        except BaseException:
            with self._lock:
                self._pending.pop(task_id, None)
            if arena is not None:
                arena.close()
            raise
        return await future

    def _complete(self, future: asyncio.Future, payload: dict,
                  error: Exception | None) -> None:
        if future.done():  # drain raced a deadline-abandoned future
            return
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(payload)

    def _pump_main(self) -> None:
        while not self._stop.is_set():
            try:
                outcome = self._pool.poll(timeout=_PUMP_POLL_SECONDS)
            except SimulationError as exc:
                self._fail_pending(ServiceError(str(exc), status=500))
                return
            except (OSError, ValueError):
                return  # queues closed under us during teardown
            if outcome is None:
                continue
            status, task_id, payload = outcome
            with self._lock:
                entry = self._pending.pop(task_id, None)
            if entry is None:
                continue
            loop, future, arena = entry
            if arena is not None:
                arena.close()
            error = None
            if status == "err":
                error = ServiceError(
                    f"query worker failed:\n{payload}", status=500)
                payload = {}
            loop.call_soon_threadsafe(self._complete, future, payload,
                                      error)

    def _fail_pending(self, error: Exception) -> None:
        with self._lock:
            entries = list(self._pending.values())
            self._pending.clear()
        for loop, future, arena in entries:
            if arena is not None:
                arena.close()
            loop.call_soon_threadsafe(self._complete, future, {},
                                      error)

    def pending_count(self) -> int:
        """Tasks submitted but not yet completed (drain telemetry)."""
        with self._lock:
            return len(self._pending)

    def close(self) -> None:
        """Stop the pump, fail unserved requests, release the pool
        and every outstanding arena.  Idempotent."""
        if getattr(self, "_closed", True):
            return
        self._closed = True
        self._stop.set()
        self._pump.join(timeout=5.0)
        self._fail_pending(ServiceError("server shut down before the "
                                        "query completed", status=503))
        self._pool.close()
