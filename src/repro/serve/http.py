"""A minimal HTTP/1.1 layer over ``asyncio`` streams.

Just enough protocol for the query service — request line, headers,
``Content-Length`` bodies, JSON responses — with hard limits instead
of liberal parsing: the server speaks to its own client and to smoke
harnesses, not to arbitrary browsers, so anything outside the narrow
shape is a 4xx, never a guess.  Stdlib only (the no-new-runtime-deps
constraint of the serve tentpole).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

from repro.errors import ServiceError

__all__ = ["HttpRequest", "read_request", "response_bytes"]

#: One header line / request line budget.  A request line longer than
#: this is not a query, it is a mistake (or an attack) — drop it.
_MAX_LINE_BYTES = 8192
#: Body budget.  The largest legitimate payload is a run query's spec
#: or a few hundred robot coordinates — far under a megabyte.
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: method, path, headers, raw body."""

    method: str
    path: str
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body as a JSON object; :class:`ServiceError` (400)
        otherwise."""
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}",
                               status=400) from None
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object",
                               status=400)
        return payload


async def read_request(reader: asyncio.StreamReader,
                       ) -> HttpRequest | None:
    """Parse one request off ``reader``.

    Returns ``None`` on a clean EOF before any bytes (client closed a
    keep-alive connection); raises :class:`ServiceError` with an HTTP
    status for every malformed or over-budget request.
    """
    try:
        request_line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ServiceError("truncated request line", status=400) from None
    except asyncio.LimitOverrunError:
        raise ServiceError("request line too long", status=400) from None
    if len(request_line) > _MAX_LINE_BYTES:
        raise ServiceError("request line too long", status=400)
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ServiceError("malformed request line", status=400)
    method, path, _version = parts

    headers: dict[str, str] = {}
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            raise ServiceError("truncated headers", status=400) from None
        if len(line) > _MAX_LINE_BYTES:
            raise ServiceError("header line too long", status=400)
        if line == b"\r\n":
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ServiceError("malformed header line", status=400)
        headers[name.strip().lower()] = value.strip()

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ServiceError(
            f"bad Content-Length {length_text!r}", status=400) from None
    if length < 0:
        raise ServiceError("negative Content-Length", status=400)
    if length > MAX_BODY_BYTES:
        raise ServiceError(
            f"request body of {length} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte budget", status=413)
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ServiceError("truncated request body",
                               status=400) from None
    return HttpRequest(method=method, path=path, headers=headers,
                       body=body)


def response_bytes(status: int, payload: dict, *,
                   close: bool = False) -> bytes:
    """One complete JSON response, ready for ``writer.write``."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n")
    return head.encode("latin-1") + body
