"""Formation-as-a-service: the asyncio query server over ``repro.api``.

The paper's central artifact is a *decidable question* — is pattern
``F`` formable from ``P``, i.e. does ``ϱ(P) ⊆ ϱ(F)`` hold (Theorem
1.1)?  This package serves that question, plus ``γ(P)``/``ϱ(P)``
classification and full experiment runs, to many concurrent clients
as a long-running service:

* :mod:`repro.serve.protocol` — the versioned wire form of the typed
  query records (:class:`repro.api.FormabilityQuery` & friends) and
  the congruence-digest coalescing keys;
* :mod:`repro.serve.http` — a minimal HTTP/1.1 layer over
  ``asyncio.start_server`` (stdlib only, no new runtime deps);
* :mod:`repro.serve.worker` — the process-pool task runner (one
  :func:`repro.api.evaluate_query` per request) and the
  :class:`repro.perf.blocks.ShmArena` zero-copy unpacking;
* :mod:`repro.serve.dispatch` — inline (thread) and warm-pool
  (:class:`repro.campaign.pool.WarmPool`) dispatchers that keep
  CPU-bound kernels off the event loop;
* :mod:`repro.serve.server` — queue-depth backpressure (429),
  per-request deadlines (504), congruence-keyed coalescing of
  in-flight queries, ``serve.*`` metrics, per-request trace spans and
  graceful drain on SIGTERM;
* :mod:`repro.serve.client` — the blocking client behind
  ``repro query … --server`` and the smoke/benchmark harness.

See ``docs/SERVICE.md`` for the protocol and operational contract.
"""

from __future__ import annotations

from repro.serve.client import ServeClient
from repro.serve.protocol import (
    WIRE_SCHEMA_VERSION,
    decode_query,
    decode_result,
    encode_query,
    encode_result,
    query_key,
)
from repro.serve.server import QueryServer, ServeConfig, serve_main

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "QueryServer",
    "ServeClient",
    "ServeConfig",
    "decode_query",
    "decode_result",
    "encode_query",
    "encode_result",
    "query_key",
    "serve_main",
]
