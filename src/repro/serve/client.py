"""A small blocking client for the query service.

Backs ``repro query … --server HOST:PORT``, the smoke job and the
benchmark harness.  Stdlib ``http.client`` only — the client must not
need anything the server doesn't.  Every non-200 answer raises
:class:`repro.errors.ServiceError` carrying the HTTP status, so
callers branch on the refusal class (429 back-off vs 422 bad query)
without string matching.
"""

from __future__ import annotations

import http.client
import json

from repro.api import Query, QueryResult
from repro.errors import ServiceError
from repro.serve.protocol import decode_result, encode_query

__all__ = ["ServeClient"]


class ServeClient:
    """One keep-alive connection to a query server."""

    def __init__(self, host: str, port: int,
                 timeout: float = 60.0) -> None:
        self.host = str(host)
        self.port = int(port)
        self._conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout)

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            self._conn.request(method, path, body=body,
                               headers=headers)
            response = self._conn.getresponse()
            text = response.read().decode("utf-8")
        except (OSError, http.client.HTTPException) as exc:
            self._conn.close()  # poisoned keep-alive state
            raise ServiceError(
                f"query server at {self.host}:{self.port} "
                f"unreachable: {exc}", status=503) from None
        try:
            answer = json.loads(text)
        except json.JSONDecodeError:
            raise ServiceError(
                f"non-JSON response from server "
                f"(status {response.status})", status=502) from None
        if response.status != 200:
            message = answer.get("error", text) \
                if isinstance(answer, dict) else text
            raise ServiceError(str(message), status=response.status)
        return answer

    def query(self, query: Query) -> QueryResult:
        """Round-trip one typed query; the wire ``served`` sidecar is
        folded into the result's ``cache`` dict."""
        wire = self._request("POST", "/v1/query",
                             encode_query(query))
        served = wire.pop("served", None)
        result = decode_result(wire)
        if served is not None:
            cache = dict(result.cache)
            cache["served"] = served
            result = QueryResult(
                kind=result.kind, verdict=result.verdict,
                groups=result.groups, explanation=result.explanation,
                payload=result.payload, cache=cache,
                timing=result.timing,
                schema_version=result.schema_version)
        return result

    def health(self) -> dict:
        """The server's ``/v1/healthz`` payload."""
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict:
        """The server's ``serve.*`` counters and cache metrics."""
        return self._request("GET", "/v1/metrics")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
