"""The wire protocol: versioned query records and coalescing keys.

One JSON envelope per request/response.  A wire query is the typed
:data:`repro.api.Query` record in dict form plus the wire schema
version; a wire result is the full :class:`repro.api.QueryResult`
(deterministic view *and* the cache/timing sidecars).  The CLI, the
server, the pool workers and the tests all encode/decode through this
module, so there is exactly one serialization of the typed contract.

Coalescing keys (:func:`query_key`) are the serving-time analogue of
the L1 congruence cache's class keys: two in-flight queries with
equal keys are *the same computation* and may share one result.  For
the geometric queries the key is an exact-byte digest
(:func:`repro.perf.stats.exact_digest`) over the structural
congruence signature (:func:`repro.core.signatures.
congruence_signature`) and the similarity-canonicalized point bytes —
center-relative, unit-scale, lexicographically ordered — so
congruence-equivalent queries whose canonical forms are bit-identical
(same pattern at any exact translation/scale) coalesce onto one
kernel computation and one L2/L3 cache entry.  Rounding never enters
the key: near-congruent configurations that canonicalize to different
bytes simply run separately, which costs time but never correctness
(the same argument as the L1 key discipline).

``SPEC_WIRE_FIELDS`` pins the :class:`repro.api.ExperimentSpec`
fields a run query carries on the wire.  REP011 checks it against the
spec dataclass (no drift: a wire field with no spec field would be
silently dropped) and against the campaign's ``GRID_AXES`` (the wire
must be able to express any campaign axis).  Artifact paths are
deliberately absent: a server never writes client-named files.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api import (
    API_SCHEMA_VERSION,
    ExperimentSpec,
    FormabilityQuery,
    Query,
    QueryResult,
    RunQuery,
    SymmetricityQuery,
    resolved_spec_record,
)
from repro.errors import ReproError

__all__ = [
    "SPEC_WIRE_FIELDS",
    "WIRE_SCHEMA_VERSION",
    "canonical_result_text",
    "decode_query",
    "decode_result",
    "encode_query",
    "encode_result",
    "query_key",
]

#: Version of the JSON envelope itself (field names, nesting).  The
#: payload records additionally carry :data:`API_SCHEMA_VERSION`.
WIRE_SCHEMA_VERSION = 1

#: ExperimentSpec fields a RunQuery carries on the wire, in spec
#: declaration order.  Checked by REP011 against the dataclass fields
#: and the campaign GRID_AXES.
SPEC_WIRE_FIELDS = ("trials", "seed", "jobs", "cache", "backend",
                    "schema_version")


def _encode_points(points: Any) -> Any:
    if isinstance(points, str):
        return points
    return [list(row) for row in points]


def _decode_points(value: Any, what: str) -> Any:
    if isinstance(value, str):
        return value
    if isinstance(value, list):
        try:
            return tuple(tuple(float(c) for c in row) for row in value)
        except (TypeError, ValueError):
            pass
    raise ReproError(f"wire query field {what!r} must be a pattern "
                     f"name or a list of coordinate rows")


def encode_query(query: Query) -> dict:
    """The JSON-safe wire form of one typed query record."""
    envelope: dict[str, Any] = {
        "wire_schema": WIRE_SCHEMA_VERSION,
        "schema_version": query.schema_version,
    }
    if isinstance(query, FormabilityQuery):
        envelope["kind"] = "formability"
        envelope["initial"] = _encode_points(query.initial)
        envelope["target"] = _encode_points(query.target)
    elif isinstance(query, SymmetricityQuery):
        envelope["kind"] = "symmetricity"
        envelope["points"] = _encode_points(query.points)
        envelope["multiset"] = bool(query.multiset)
    elif isinstance(query, RunQuery):
        envelope["kind"] = "run"
        envelope["name"] = query.name
        envelope["spec"] = {name: getattr(query.spec, name)
                            for name in SPEC_WIRE_FIELDS}
    else:
        raise ReproError(
            f"unknown query type {type(query).__name__}")
    return envelope


def _check_envelope(wire: Mapping[str, Any]) -> None:
    if not isinstance(wire, Mapping):
        raise ReproError("wire query must be a JSON object")
    wire_schema = wire.get("wire_schema")
    if not isinstance(wire_schema, int) or \
            wire_schema > WIRE_SCHEMA_VERSION:
        raise ReproError(
            f"unsupported wire_schema {wire_schema!r} "
            f"(this server speaks {WIRE_SCHEMA_VERSION})")
    schema = wire.get("schema_version", API_SCHEMA_VERSION)
    if not isinstance(schema, int) or schema > API_SCHEMA_VERSION:
        raise ReproError(
            f"unsupported schema_version {schema!r} "
            f"(this server speaks {API_SCHEMA_VERSION})")


def decode_query(wire: Mapping[str, Any]) -> Query:
    """The typed query record behind one wire envelope.

    Raises :class:`ReproError` for unknown kinds, malformed fields
    and schema versions newer than this library.
    """
    _check_envelope(wire)
    kind = wire.get("kind")
    schema = int(wire.get("schema_version", API_SCHEMA_VERSION))
    if kind == "formability":
        return FormabilityQuery(
            initial=_decode_points(wire.get("initial"), "initial"),
            target=_decode_points(wire.get("target"), "target"),
            schema_version=schema)
    if kind == "symmetricity":
        return SymmetricityQuery(
            points=_decode_points(wire.get("points"), "points"),
            multiset=bool(wire.get("multiset", False)),
            schema_version=schema)
    if kind == "run":
        name = wire.get("name")
        if not isinstance(name, str):
            raise ReproError("wire run query needs a string 'name'")
        spec_fields = wire.get("spec", {})
        if not isinstance(spec_fields, Mapping):
            raise ReproError("wire run query 'spec' must be an object")
        unknown = set(spec_fields) - set(SPEC_WIRE_FIELDS)
        if unknown:
            raise ReproError(
                f"wire run query has unknown spec fields: "
                f"{', '.join(sorted(unknown))}")
        spec = ExperimentSpec(**dict(spec_fields))
        return RunQuery(name=name, spec=spec, schema_version=schema)
    raise ReproError(f"unknown wire query kind {kind!r}")


def encode_result(result: QueryResult) -> dict:
    """The JSON-safe wire form of one :class:`QueryResult`."""
    return {
        "wire_schema": WIRE_SCHEMA_VERSION,
        "schema_version": result.schema_version,
        "kind": result.kind,
        "verdict": result.verdict,
        "groups": dict(result.groups),
        "explanation": result.explanation,
        "payload": dict(result.payload),
        "cache": dict(result.cache),
        "timing": dict(result.timing),
    }


def decode_result(wire: Mapping[str, Any]) -> QueryResult:
    """The typed :class:`QueryResult` behind one wire envelope."""
    _check_envelope(wire)
    try:
        return QueryResult(
            kind=str(wire["kind"]),
            verdict=str(wire["verdict"]),
            groups=dict(wire.get("groups", {})),
            explanation=str(wire.get("explanation", "")),
            payload=dict(wire.get("payload", {})),
            cache=dict(wire.get("cache", {})),
            timing=dict(wire.get("timing", {})),
            schema_version=int(wire.get("schema_version",
                                        API_SCHEMA_VERSION)))
    except KeyError as exc:
        raise ReproError(
            f"wire result is missing field {exc.args[0]!r}") from None


def canonical_result_text(result: QueryResult) -> str:
    """Canonical JSON of the deterministic view (sorted, compact).

    The byte-identity contract's unit of comparison: direct façade
    evaluation and any number of server round-trips must render one
    query to this exact text.
    """
    import json

    return json.dumps(result.deterministic_view(), sort_keys=True,
                      separators=(",", ":"))


def _canonical_point_bytes(points: Any) -> "tuple[Any, Any]":
    """Similarity-canonical ``(coords, multiplicity)`` arrays.

    Center-relative, scaled to unit max radius, rows ordered
    lexicographically — a pure, rounding-free function of the point
    multiset, so congruent inputs with exactly-representable
    translations/scales canonicalize to identical bytes.
    """
    import numpy as np

    arr = np.asarray(points, dtype=float).reshape(len(points), -1)
    rel = arr - arr.mean(axis=0)
    scale = float(np.max(np.linalg.norm(rel, axis=1))) if len(rel) else 0.0
    if scale > 0.0:
        rel = rel / scale
    order = np.lexsort((rel[:, 2], rel[:, 1], rel[:, 0]))
    return rel[order], arr.shape[0]


def query_key(query: Query) -> str:
    """The coalescing key: equal keys ⇒ identical deterministic views.

    Geometric queries key on the structural congruence signature plus
    the exact bytes of the canonicalized points; run queries key on
    the resolved spec record (the same preimage the campaign layer
    digests for its cells).
    """
    from repro.core.signatures import congruence_signature
    from repro.perf.stats import exact_digest

    if isinstance(query, RunQuery):
        record = resolved_spec_record(query.name, query.spec)
        parts = tuple(item for pair in sorted(record.items())
                      for item in pair)
        digest = exact_digest(b"serve-run", query.name, parts)
        return f"run:{digest.hex()}"
    if isinstance(query, FormabilityQuery):
        sides = []
        for side in (query.initial, query.target):
            if isinstance(side, str):
                sides.append(exact_digest(b"name", side))
            else:
                canonical, n = _canonical_point_bytes(side)
                sides.append(exact_digest(
                    b"points",
                    tuple(congruence_signature(n, [1] * n)),
                    canonical))
        digest = exact_digest(b"serve-formability", *sides)
        return f"formability:{digest.hex()}"
    if isinstance(query, SymmetricityQuery):
        if isinstance(query.points, str):
            part = exact_digest(b"name", query.points)
        else:
            canonical, n = _canonical_point_bytes(query.points)
            part = exact_digest(
                b"points", tuple(congruence_signature(n, [1] * n)),
                canonical)
        digest = exact_digest(b"serve-symmetricity", part,
                              bool(query.multiset))
        return f"symmetricity:{digest.hex()}"
    raise ReproError(f"unknown query type {type(query).__name__}")
