"""Core notions of the paper: configurations, orbit decompositions,
local views, symmetricity ``ϱ(P)``, and the formability predicate.
"""

from repro.core.configuration import Configuration
from repro.core.decomposition import (
    orbit_decomposition,
    orbit_folding,
    is_transitive,
    principal_axis_of_d2,
    oriented_axis_direction,
)
from repro.core.local_views import local_view, ordered_orbits
from repro.core.symmetricity import (
    Symmetricity,
    symmetricity,
    symmetricity_of_multiset,
)
from repro.core.formability import is_formable, formability_report

__all__ = [
    "Configuration",
    "orbit_decomposition",
    "orbit_folding",
    "is_transitive",
    "principal_axis_of_d2",
    "oriented_axis_direction",
    "local_view",
    "ordered_orbits",
    "Symmetricity",
    "symmetricity",
    "symmetricity_of_multiset",
    "is_formable",
    "formability_report",
]
