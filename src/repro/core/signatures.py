"""Rotation-invariant geometric signatures of point sets.

Several constructions in the paper require a *canonical, equivariant
choice* among finitely many geometric candidates (a preferred direction
along an oriented axis, the principal axis of ``D_2``, one of the two
icosahedral extensions of a tetrahedral arrangement, ...).  All robots
must make the same choice from their own observations, so the choice
must be a function of the point set's geometry only.

This module provides comparable signature tuples:

* :func:`cylindrical_signature` — the configuration seen from an
  *oriented* axis; reflection-sensitive thanks to signed pair angles,
  so it distinguishes the two directions of an axis whenever the
  configuration does.
* :func:`line_signature` — the same, made sign-of-direction invariant.
* :func:`frame_signature` — coordinates in a full candidate frame.
* :func:`group_arrangement_signature` — per-axis profile of a whole
  candidate group arrangement.

Signatures are nested tuples of rounded floats, compared
lexicographically.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.tolerance import (
    ANGLE_WRAP_EPS,
    DEFAULT_TOL,
    canonical_round,
)
from repro.geometry.vectors import normalize, orthonormal_basis_for

__all__ = [
    "cylindrical_signature",
    "line_signature",
    "frame_signature",
    "group_arrangement_signature",
    "congruence_signature",
]

_DECIMALS = 6


def _rounded(value: float) -> float:
    return float(canonical_round(value, _DECIMALS))


def cylindrical_signature(rel_points, multiplicities, direction) -> tuple:
    """Signature of the points relative to an oriented axis direction.

    Components:

    1. the sorted multiset of per-point features
       ``(height along axis, perpendicular radius, multiplicity)``;
    2. the sorted multiset of ordered-pair features
       ``(h_p, r_p, h_q, r_q, signed angle from p to q about the
       axis)`` — the signed angle flips when the axis direction flips,
       so the signature distinguishes the two directions whenever the
       configuration is chiral about the axis.

    Invariant under rotations about the axis and under global rotation
    of points-plus-axis together (equivariance).
    """
    d = normalize(direction)
    u, v, _ = orthonormal_basis_for(d)
    singles = []
    projected = []
    for p, m in zip(rel_points, multiplicities):
        arr = np.asarray(p, dtype=float)
        h = float(np.dot(arr, d))
        perp_vec = arr - h * d
        r = float(np.linalg.norm(perp_vec))
        singles.append((_rounded(h), _rounded(r), int(m)))
        theta = float(np.arctan2(np.dot(perp_vec, v), np.dot(perp_vec, u)))
        projected.append((h, r, theta, int(m)))
    singles.sort()
    pairs = []
    for i, (hi, ri, ti, mi) in enumerate(projected):
        for j, (hj, rj, tj, mj) in enumerate(projected):
            if i == j:
                continue
            if (ri < DEFAULT_TOL.coincidence_slack(1.0)
                    or rj < DEFAULT_TOL.coincidence_slack(1.0)):
                continue  # on-axis points carry no angular information
            delta = (tj - ti) % (2.0 * np.pi)
            if delta >= 2.0 * np.pi - ANGLE_WRAP_EPS:
                # Collapse the 2π wraparound so -1e-16 and +1e-16
                # angle differences encode identically.
                delta = 0.0
            pairs.append((_rounded(hi), _rounded(ri), mi,
                          _rounded(hj), _rounded(rj), mj,
                          _rounded(delta)))
    pairs.sort()
    return (tuple(singles), tuple(pairs))


def line_signature(rel_points, multiplicities, direction) -> tuple:
    """Direction-sign-invariant signature of the points about a line."""
    plus = cylindrical_signature(rel_points, multiplicities, direction)
    minus = cylindrical_signature(rel_points, multiplicities,
                                  -np.asarray(direction, dtype=float))
    return min(plus, minus)


def frame_signature(rel_points, multiplicities, frame) -> tuple:
    """Signature of the points in a candidate right-handed frame.

    ``frame`` is a 3x3 matrix whose *columns* are the frame axes.
    Comparing frame signatures of candidate frames is equivariant:
    rotating points and candidates together leaves every signature
    unchanged.
    """
    basis = np.asarray(frame, dtype=float)
    rows = []
    for p, m in zip(rel_points, multiplicities):
        coords = basis.T @ np.asarray(p, dtype=float)
        rows.append((_rounded(coords[0]), _rounded(coords[1]),
                     _rounded(coords[2]), int(m)))
    rows.sort()
    return tuple(rows)


def congruence_signature(n: int, multiplicities) -> tuple:
    """Similarity-invariant *structural* signature of a point multiset.

    Two configurations related by a similarity transform (rotation,
    translation, uniform scaling) always produce equal signatures, so
    the signature can key a cache of per-congruence-class results
    (``γ(P)``, ``ϱ(P)``).  It deliberately contains **only exact
    integers** — total cardinality ``n``, support size, and the sorted
    multiplicity profile — never rounded floats: rounding a continuous
    quantity would split one congruence class across two keys whenever
    it straddles a rounding boundary.  The continuous part of the class
    (the radius profile) is compared tolerantly, entry by entry, by
    :mod:`repro.perf`, and candidate matches are certified by an
    explicit alignment rotation, so hash collisions here cost time but
    never correctness.
    """
    profile = tuple(sorted(int(m) for m in multiplicities))
    return (int(n), len(profile), profile)


def group_arrangement_signature(rel_points, multiplicities, group) -> tuple:
    """Signature of a candidate group arrangement relative to the points.

    For each axis of the candidate group, record ``(fold,
    line_signature of the points about the axis)``; the sorted list of
    those is invariant under rotating points and candidate together,
    so it can rank competing arrangements equivariantly.
    """
    entries = []
    for axis in group.axes:
        entries.append((int(axis.fold),
                        line_signature(rel_points, multiplicities,
                                       axis.direction)))
    entries.sort()
    return tuple(entries)
