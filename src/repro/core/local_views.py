"""Local views and the agreed total ordering of orbits (Theorem 3.1).

The *local view* of a robot is a coordinate-system-free encoding of the
whole configuration as seen from that robot: the innermost empty ball
``I(P)`` plays the earth, the line from ``b(P)`` through the robot is
the earth's axis, and a meridian is fixed by a robot nearest to
``I(P)``.  Robots in the same orbit of ``γ(P)`` have equal views;
robots in different orbits have different views (Property 2), which
lets all robots agree on a total ordering of the orbits.

All view components are scale-invariant (amplitudes are normalized by
``rad(B(P))``), so a robot computes identical views from its own local
observation regardless of its unit distance.
"""

from __future__ import annotations

import numpy as np

from repro.core.configuration import Configuration
from repro.errors import ConfigurationError
from repro.geometry.tolerance import canonical_round
from repro.groups.group import RotationGroup

__all__ = ["local_view", "ordered_orbits"]

_DECIMALS = 6


def _round(x: float) -> float:
    return float(canonical_round(x, _DECIMALS))


def local_view(config: Configuration, index: int) -> tuple:
    """The local view of robot ``index`` (a comparable nested tuple).

    The view of a robot at ``b(P)`` is a sentinel smaller than every
    other view (its axis is undefined; it is alone in its orbit).

    Views are memoized on the configuration object: orbit ordering and
    the formation algorithms ask for the same robot's view repeatedly,
    and each view costs a full pass over the configuration.
    """
    cache = getattr(config, "_view_cache", None)
    if cache is None:
        cache = {}
        config._view_cache = cache
    cached = cache.get(index)
    if cached is not None:
        return cached
    view = _compute_local_view(config, index)
    cache[index] = view
    return view


def _compute_local_view(config: Configuration, index: int) -> tuple:
    rel = config.relative_points()
    scale = max(config.radius, 1e-300)
    radii = [float(np.linalg.norm(p)) / scale for p in rel]
    slack = 1e-6
    own_r = radii[index]
    if own_r <= slack:
        return ((-1.0,), tuple(sorted(_round(r) for r in radii)))
    axis = rel[index] / (own_r * scale)

    inner_r = config.inner_ball.radius / scale
    candidates = []
    best_gap = None
    for j, p in enumerate(rel):
        perp = p / scale - float(np.dot(p / scale, axis)) * axis
        perp_len = float(np.linalg.norm(perp))
        if perp_len <= slack:
            continue
        gap = abs(radii[j] - inner_r)
        if best_gap is None or gap < best_gap - slack:
            best_gap = gap
            candidates = [(j, perp / perp_len)]
        elif abs(gap - best_gap) <= slack:
            candidates.append((j, perp / perp_len))
    if not candidates:
        # Every other robot is on the axis: encode the heights only.
        heights = sorted(_round(float(np.dot(p, axis)) / scale) for p in rel)
        return ((_round(own_r),), tuple(heights))

    best_view: tuple | None = None
    for meridian_index, u in candidates:
        v = np.cross(axis, u)
        entries = []
        for j, p in enumerate(rel):
            r = radii[j]
            if r <= slack:
                entries.append((0.0, 0.0, 0.0))
                continue
            unit = p / (r * scale)
            height = float(np.clip(np.dot(unit, axis), -1.0, 1.0))
            latitude = float(np.arcsin(height))
            perp = unit - height * axis
            perp_len = float(np.linalg.norm(perp))
            if perp_len <= slack:
                longitude = 0.0
            else:
                longitude = float(np.arctan2(np.dot(perp, v),
                                             np.dot(perp, u)))
                longitude %= 2.0 * np.pi
                # Collapse the 2π wraparound: an angle of -1e-16 must
                # encode as 0.0, not 6.283185 (observers would differ).
                if longitude >= 2.0 * np.pi - 5e-7:
                    longitude = 0.0
            entries.append((_round(r), _round(longitude), _round(latitude)))
        own = entries[index]
        meridian = entries[meridian_index]
        rest = sorted(entries[j] for j in range(len(entries))
                      if j not in (index, meridian_index))
        view = (own, meridian, tuple(rest))
        if best_view is None or view < best_view:
            best_view = view
    return best_view


def ordered_orbits(config: Configuration, group: RotationGroup,
                   orbits: list[list[int]] | None = None,
                   center=None) -> list[list[int]]:
    """The agreed total ordering of the ``group``-orbits of ``P``.

    Orbits are ordered primarily by their radius (distance from
    ``b(P)``), which realizes Property 2 (the first orbit lies on
    ``I(P)``, the last on ``B(P)``, and each next orbit lies on or
    outside the previous orbit's ball); ties are broken by the minimum
    local view of the orbit members, which differs across orbits by
    Theorem 3.1.

    Raises
    ------
    ConfigurationError
        If two distinct orbits cannot be separated (only possible for
        multisets, which the paper excludes from this agreement).
    """
    from repro.core.decomposition import orbit_decomposition

    if orbits is None:
        orbits = orbit_decomposition(config, group, center)
    c = np.asarray(center if center is not None else config.center,
                   dtype=float)
    scale = max(config.radius, 1e-300)

    # Sort by radius first; local views (quadratic to compute) are only
    # evaluated to break ties between orbits sharing a radius.
    by_radius: dict[float, list[list[int]]] = {}
    for orbit in orbits:
        radius = _round(
            float(np.linalg.norm(config.points[orbit[0]] - c)) / scale)
        by_radius.setdefault(radius, []).append(orbit)
    result: list[list[int]] = []
    for radius in sorted(by_radius):
        tied = by_radius[radius]
        if len(tied) == 1:
            result.extend(tied)
            continue
        keyed = sorted(
            (min(local_view(config, j) for j in orbit), orbit)
            for orbit in tied)
        for (view_a, _), (view_b, _) in zip(keyed, keyed[1:]):
            if view_a == view_b:
                raise ConfigurationError(
                    "orbits are not totally ordered (multiset ambiguity)")
        result.extend(orbit for _, orbit in keyed)
    return result
