"""Local views and the agreed total ordering of orbits (Theorem 3.1).

The *local view* of a robot is a coordinate-system-free encoding of the
whole configuration as seen from that robot: the innermost empty ball
``I(P)`` plays the earth, the line from ``b(P)`` through the robot is
the earth's axis, and a meridian is fixed by a robot nearest to
``I(P)``.  Robots in the same orbit of ``γ(P)`` have equal views;
robots in different orbits have different views (Property 2), which
lets all robots agree on a total ordering of the orbits.

All view components are scale-invariant (amplitudes are normalized by
``rad(B(P))``), so a robot computes identical views from its own local
observation regardless of its unit distance.  Because the views are
similarity-invariant *tuples*, the agreed orbit ordering is served
through the indexed round cache (:mod:`repro.perf.round`): all ``n``
robots of a round ask for the ordering of mutually congruent
configurations and share one computation.
"""

from __future__ import annotations

import numpy as np

from repro.core.configuration import Configuration
from repro.errors import ConfigurationError
from repro.geometry.tolerance import (
    ANGLE_WRAP_EPS,
    DEFAULT_TOL,
    canonical_round,
)
from repro.groups.group import RotationGroup

__all__ = ["local_view", "ordered_orbits"]

_DECIMALS = 6


def _round(x: float) -> float:
    return float(canonical_round(x, _DECIMALS))


def local_view(config: Configuration, index: int) -> tuple:
    """The local view of robot ``index`` (a comparable nested tuple).

    The view of a robot at ``b(P)`` is a sentinel smaller than every
    other view (its axis is undefined; it is alone in its orbit).

    Views are memoized on the configuration object: orbit ordering and
    the formation algorithms ask for the same robot's view repeatedly,
    and each view costs a full pass over the configuration.
    """
    cache = getattr(config, "_view_cache", None)
    if cache is None:
        cache = {}
        config._view_cache = cache
    cached = cache.get(index)
    if cached is not None:
        return cached
    view = _compute_local_view(config, index)
    cache[index] = view
    return view


def _compute_local_view(config: Configuration, index: int) -> tuple:
    """Array-at-once evaluation of one robot's view.

    Candidate meridians are selected by the same order-dependent gap
    clustering as always; the per-candidate spherical coordinates of
    all ``n`` points are then produced by batched transforms instead
    of a Python loop per point.
    """
    rel = np.asarray(config.relative_points(), dtype=float)
    n = rel.shape[0]
    scale = max(config.radius, 1e-300)
    radii = np.linalg.norm(rel, axis=1) / scale
    slack = DEFAULT_TOL.geometric_slack(1.0)
    own_r = float(radii[index])
    if own_r <= slack:
        return ((-1.0,), tuple(sorted(_round(float(r)) for r in radii)))
    axis = rel[index] / (own_r * scale)

    inner_r = config.inner_ball.radius / scale
    scaled = rel / scale
    proj = scaled @ axis
    perp = scaled - proj[:, None] * axis
    perp_len = np.linalg.norm(perp, axis=1)
    gaps = np.abs(radii - inner_r)

    candidates: list[int] = []
    best_gap = None
    for j in range(n):
        if perp_len[j] <= slack:
            continue
        gap = float(gaps[j])
        if best_gap is None or gap < best_gap - slack:
            best_gap = gap
            candidates = [j]
        elif abs(gap - best_gap) <= slack:
            candidates.append(j)
    if not candidates:
        # Every other robot is on the axis: encode the heights only.
        heights = sorted(_round(float(h)) for h in proj)
        return ((_round(own_r),), tuple(heights))

    off_axis = radii > slack
    units = np.zeros_like(scaled)
    units[off_axis] = rel[off_axis] / (radii[off_axis, None] * scale)
    heights = np.clip(units @ axis, -1.0, 1.0)
    latitudes = np.arcsin(heights)
    perp_units = units - heights[:, None] * axis
    perp_unit_len = np.linalg.norm(perp_units, axis=1)

    meridians = perp[candidates] / perp_len[candidates, None]   # (c, 3)
    binormals = np.cross(np.broadcast_to(axis, meridians.shape),
                         meridians)                             # (c, 3)
    longitudes = np.arctan2(perp_units @ binormals.T,
                            perp_units @ meridians.T)           # (n, c)
    longitudes %= 2.0 * np.pi
    # Collapse the 2π wraparound: an angle of -1e-16 must encode as
    # 0.0, not 6.283185 (observers would differ).
    longitudes[longitudes >= 2.0 * np.pi - ANGLE_WRAP_EPS] = 0.0
    longitudes[perp_unit_len <= slack, :] = 0.0

    radii_r = canonical_round(radii, _DECIMALS)
    lat_r = canonical_round(latitudes, _DECIMALS)
    lon_r = canonical_round(longitudes, _DECIMALS)

    best_view: tuple | None = None
    for c, meridian_index in enumerate(candidates):
        entries = [
            (0.0, 0.0, 0.0) if not off_axis[j]
            else (float(radii_r[j]), float(lon_r[j, c]), float(lat_r[j]))
            for j in range(n)
        ]
        own = entries[index]
        meridian = entries[meridian_index]
        rest = sorted(entries[j] for j in range(n)
                      if j not in (index, meridian_index))
        view = (own, meridian, tuple(rest))
        if best_view is None or view < best_view:
            best_view = view
    return best_view


def ordered_orbits(config: Configuration, group: RotationGroup,
                   orbits: list[list[int]] | None = None,
                   center=None) -> list[list[int]]:
    """The agreed total ordering of the ``group``-orbits of ``P``.

    Orbits are ordered primarily by their radius (distance from
    ``b(P)``), which realizes Property 2 (the first orbit lies on
    ``I(P)``, the last on ``B(P)``, and each next orbit lies on or
    outside the previous orbit's ball); ties are broken by the minimum
    local view of the orbit members, which differs across orbits by
    Theorem 3.1.

    When called with the configuration's own full rotation group (the
    only caller pattern on the hot path), both the orbit partition and
    the ordering are similarity invariants — congruent configurations
    share them index-for-index — so the result is served through the
    indexed round cache and computed once per congruence class.

    Raises
    ------
    ConfigurationError
        If two distinct orbits cannot be separated (only possible for
        multisets, which the paper excludes from this agreement).
    """
    report = config.__dict__.get("symmetry")
    if (orbits is None and center is None and report is not None
            and getattr(report, "group", None) is group):
        from repro.perf import cached_invariant, round_view

        cached = cached_invariant(
            round_view(config), ("ordered_orbits",),
            lambda: tuple(tuple(o) for o in
                          _ordered_orbits_impl(config, group, None, None)))
        return [list(orbit) for orbit in cached]
    return _ordered_orbits_impl(config, group, orbits, center)


def _ordered_orbits_impl(config: Configuration, group: RotationGroup,
                         orbits: list[list[int]] | None,
                         center) -> list[list[int]]:
    from repro.core.decomposition import orbit_decomposition

    if orbits is None:
        orbits = orbit_decomposition(config, group, center)
    c = np.asarray(center if center is not None else config.center,
                   dtype=float)
    scale = max(config.radius, 1e-300)

    # Sort by radius first; local views (quadratic to compute) are only
    # evaluated to break ties between orbits sharing a radius.
    by_radius: dict[float, list[list[int]]] = {}
    for orbit in orbits:
        radius = _round(
            float(np.linalg.norm(config.points[orbit[0]] - c)) / scale)
        by_radius.setdefault(radius, []).append(orbit)
    result: list[list[int]] = []
    for radius in sorted(by_radius):
        tied = by_radius[radius]
        if len(tied) == 1:
            result.extend(tied)
            continue
        keyed = sorted(
            (min(local_view(config, j) for j in orbit), orbit)
            for orbit in tied)
        for (view_a, _), (view_b, _) in zip(keyed, keyed[1:]):
            if view_a == view_b:
                raise ConfigurationError(
                    "orbits are not totally ordered (multiset ambiguity)")
        result.extend(orbit for _, orbit in keyed)
    return result
