"""Symmetricity ``ϱ(P)`` of configurations (Definitions 5 and 6).

``ϱ(P)`` is the set of rotation groups ``G`` that can act on ``P``
with *every* rotation axis unoccupied — equivalently, the symmetries an
adversarial arrangement of local coordinate systems can impose on the
robots, which no algorithm can ever break (Lemma 4).

Operationally (for a set of points): ``G ∈ ϱ(P)`` iff ``G`` has an
embedding onto unoccupied rotation axes of ``γ(P)``; if all axes of
``γ(P)`` are occupied, ``ϱ(P) = {C_1}``.  For multisets (target
patterns with multiplicity, Definition 6) a point on a ``k``-fold axis
must carry multiplicity divisible by ``k``.

The result keeps *witnesses*: for each admissible type, the concrete
subgroup arrangements of ``γ(P)`` realizing it.  Witnesses drive both
the worst-case adversary (``repro.robots.adversary``) and the target
embedding of the formation algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.configuration import Configuration
from repro.errors import ConfigurationError
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance
from repro.groups.detection import SymmetryReport
from repro.groups.group import GroupKind, GroupSpec, RotationGroup
from repro.groups.infinite import InfiniteGroupKind
from repro.groups.subgroups import (
    enumerate_concrete_subgroups,
    is_abstract_subgroup,
    maximal_elements,
)

__all__ = ["Symmetricity", "symmetricity", "symmetricity_of_multiset"]


@dataclass
class Symmetricity:
    """The symmetricity of a configuration.

    Attributes
    ----------
    specs:
        Every admissible group type (downward closed under ``⪯``).
    maximal:
        The maximal elements of ``specs`` — the paper's usual way of
        writing ``ϱ(P)``.
    witnesses:
        Concrete subgroup arrangements of ``γ(P)`` realizing each
        spec (finite case; empty for collinear/degenerate inputs,
        where axes are not pinned down by the configuration).
    report:
        The underlying symmetry report (contains ``γ(P)``).
    """

    specs: set[GroupSpec]
    maximal: list[GroupSpec]
    witnesses: dict[GroupSpec, list[RotationGroup]] = field(
        default_factory=dict)
    report: SymmetryReport | None = None

    def __contains__(self, spec: GroupSpec) -> bool:
        return spec in self.specs

    def is_subset_of(self, other: "Symmetricity") -> bool:
        """Theorem 1.1's condition ``ϱ(P) ⊆ ϱ(F)``."""
        return self.specs <= other.specs

    def witness(self, spec: GroupSpec) -> RotationGroup | None:
        """One concrete arrangement realizing ``spec``, if recorded."""
        arrangements = self.witnesses.get(spec)
        return arrangements[0] if arrangements else None

    def __repr__(self) -> str:
        inner = ", ".join(str(s) for s in self.maximal)
        return f"Symmetricity({{{inner}}})"


def symmetricity(config: Configuration,
                 tol: Tolerance = DEFAULT_TOL) -> Symmetricity:
    """Compute ``ϱ(P)`` of a configuration without multiplicity.

    Raises
    ------
    ConfigurationError
        If the configuration contains multiplicities — use
        :func:`symmetricity_of_multiset` for target patterns that do.
    """
    if config.has_multiplicity:
        raise ConfigurationError(
            "symmetricity() requires a set of points; "
            "use symmetricity_of_multiset() for multisets")
    return symmetricity_of_multiset(config, tol)


def symmetricity_of_multiset(config: Configuration,
                             tol: Tolerance = DEFAULT_TOL) -> Symmetricity:
    """Compute ``ϱ(P)`` of a point multiset (Definition 6)."""
    report = config.symmetry
    if report.kind == "degenerate":
        return _degenerate_symmetricity(config, report)
    if report.kind == "collinear":
        return _collinear_symmetricity(config, report, tol)
    from repro.perf import cached_symmetricity

    return cached_symmetricity(config, report, tol,
                               compute=_finite_symmetricity)


def _trivial() -> GroupSpec:
    return GroupSpec(GroupKind.CYCLIC, 1)


def _finite_symmetricity(config: Configuration, report: SymmetryReport,
                         tol: Tolerance) -> Symmetricity:
    gamma = report.group
    center = report.center
    is_set = not report.has_multiplicity
    unoccupied_lines = {axis.line_key() for axis in gamma.axes
                        if not axis.occupied}

    specs: set[GroupSpec] = {_trivial()}
    witnesses: dict[GroupSpec, list[RotationGroup]] = {}
    for sub in enumerate_concrete_subgroups(gamma, tol):
        if sub.is_trivial:
            continue
        if report.center_occupied:
            if is_set:
                continue
            center_mult = _center_multiplicity(report, tol)
            if center_mult % sub.order != 0:
                continue
        if is_set:
            valid = all(axis.line_key() in unoccupied_lines
                        for axis in sub.axes)
        else:
            valid = _multiset_valid(report, sub, center)
        if valid:
            specs.add(sub.spec)
            witnesses.setdefault(sub.spec, []).append(sub)
    return Symmetricity(specs=specs, maximal=maximal_elements(specs),
                        witnesses=witnesses, report=report)


def _center_multiplicity(report: SymmetryReport,
                         tol: Tolerance = DEFAULT_TOL) -> int:
    slack = tol.geometric_slack(report.radius)
    for p, m in zip(report.distinct_points, report.multiplicities):
        if float(np.linalg.norm(np.asarray(p) - report.center)) <= slack:
            return m
    return 0


def _multiset_valid(report: SymmetryReport, sub: RotationGroup,
                    center) -> bool:
    """Definition 6: each point's multiplicity is divisible by the
    size of its stabilizer in the candidate subgroup."""
    for p, m in zip(report.distinct_points, report.multiplicities):
        stab = sub.stabilizer_size(np.asarray(p) - center)
        if m % stab != 0:
            return False
    return True


def _collinear_symmetricity(config: Configuration,
                            report: SymmetryReport,
                            tol: Tolerance = DEFAULT_TOL) -> Symmetricity:
    """Symmetricity of a configuration on a line through ``b(P)``.

    Only finitely many finite rotation groups can act with unoccupied
    axes: rotations about the line fix every point (the line is
    occupied unless multiplicities allow it), and the only other
    symmetries are half-turns about perpendicular axes (which require
    the multiset to be symmetric against the center).
    """
    specs: set[GroupSpec] = {_trivial()}
    mults = report.multiplicities
    center_mult = _center_multiplicity(report, tol)
    slack = tol.geometric_slack(report.radius)
    line_mults = [m for p, m in zip(report.distinct_points, mults)
                  if float(np.linalg.norm(np.asarray(p) - report.center))
                  > slack]
    gcd_all = int(np.gcd.reduce(line_mults + [center_mult or 0])) \
        if line_mults else max(center_mult, 1)
    symmetric = report.infinite_kind is InfiniteGroupKind.D_INF

    # C_k about the line: every point is on the k-fold axis, so k must
    # divide every multiplicity (center included when occupied).
    for k in range(2, max(gcd_all, 1) + 1):
        if gcd_all % k == 0:
            specs.add(GroupSpec(GroupKind.CYCLIC, k))

    if symmetric:
        # C_2 about a perpendicular axis through the center: free
        # orbits pair p with -p; the center (if occupied) lies on the
        # axis and needs even multiplicity.
        if center_mult % 2 == 0:
            specs.add(GroupSpec(GroupKind.CYCLIC, 2))
        # D_l with the line as principal axis: point stabilizers along
        # the principal have order l; the center has order 2l.
        for l in range(2, max(gcd_all, 2) + 1):
            if gcd_all % l == 0 and center_mult % (2 * l) == 0:
                specs.add(GroupSpec(GroupKind.DIHEDRAL, l))

    specs = _downward_closure(specs)
    return Symmetricity(specs=specs, maximal=maximal_elements(specs),
                        witnesses={}, report=report)


def _degenerate_symmetricity(config: Configuration,
                             report: SymmetryReport) -> Symmetricity:
    """All robots at one point: ``G ∈ ϱ`` iff ``|G|`` divides ``n``."""
    n = config.n
    specs: set[GroupSpec] = {_trivial()}
    for k in range(2, n + 1):
        if n % k == 0:
            specs.add(GroupSpec(GroupKind.CYCLIC, k))
    for l in range(2, n // 2 + 1):
        if n % (2 * l) == 0:
            specs.add(GroupSpec(GroupKind.DIHEDRAL, l))
    if n % 12 == 0:
        specs.add(GroupSpec(GroupKind.TETRAHEDRAL))
    if n % 24 == 0:
        specs.add(GroupSpec(GroupKind.OCTAHEDRAL))
    if n % 60 == 0:
        specs.add(GroupSpec(GroupKind.ICOSAHEDRAL))
    return Symmetricity(specs=specs, maximal=maximal_elements(specs),
                        witnesses={}, report=report)


def _downward_closure(specs: set[GroupSpec]) -> set[GroupSpec]:
    """Close a spec set under taking abstract subgroups."""
    closed: set[GroupSpec] = set()
    for spec in specs:
        closed.add(spec)
        from repro.groups.subgroups import proper_abstract_subgroups

        closed.update(proper_abstract_subgroups(spec))
    return closed
