"""Orbit decompositions of configurations under rotation groups.

Implements the ``γ(P)``-decomposition (Theorem 3.1) and the
``G``-decomposition for arbitrary subgroups ``G ⪯ γ(P)``, the folding
``μ`` of transitive sets (Lemma 1), the recognizable principal axis of
``D_2`` (Property 1), and point-set-derived axis orientations.
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.errors import DetectionError, GroupError
from repro.core.configuration import Configuration
from repro.core.signatures import cylindrical_signature, line_signature
from repro.geometry.tolerance import AXIS_NORM_FLOOR, DEFAULT_TOL, Tolerance
from repro.groups.group import GroupKind, RotationGroup

__all__ = [
    "orbit_decomposition",
    "orbit_folding",
    "is_transitive",
    "principal_axis_of_d2",
    "oriented_axis_direction",
]


def _match_slack(config: Configuration) -> float:
    return DEFAULT_TOL.alignment_slack(config.radius)


def orbit_decomposition(config: Configuration, group: RotationGroup,
                        center=None) -> list[list[int]]:
    """Partition robot indices into orbits of ``group``'s action.

    ``group`` must act on the configuration (every rotated point must
    be a point of the configuration); the group's rotations are taken
    about ``center`` (default ``b(P)``).

    Returns a list of orbits, each a list of indices into
    ``config.points``.  Coincident robots (multiplicities) are spread
    over the matching positions, so the result is a partition of all
    ``n`` indices.

    The greedy claim semantics of the historical per-image scan are
    preserved exactly — each image claims the unclaimed robot of
    minimal ``(distance, index)`` within the slack, a position already
    claimed by this orbit is a stabilizer hit — but candidates come
    from one k-d range query per orbit instead of an
    ``O(n · |G| · n)`` Python scan.  The query radius is inflated by
    one relative floor and candidates are re-checked with the exact
    norm, so the claimed sets cannot differ from the exact scan's.
    """
    c = np.asarray(center if center is not None else config.center,
                   dtype=float)
    n = len(config.points)
    if group.order == 1:
        # Identity-only action: every robot claims itself at distance
        # zero, exactly what the greedy matcher would produce.
        return [[i] for i in range(n)]
    backend = get_backend()
    pts = np.asarray([np.asarray(p, dtype=float)
                      for p in config.points]) - c
    slack = _match_slack(config)
    stack = np.stack(group.elements)
    tree = backend.neighbor_index(pts)
    radius = slack * (1.0 + AXIS_NORM_FLOOR)
    assigned = np.zeros(n, dtype=bool)
    orbits: list[list[int]] = []
    seed = 0
    while seed < n:
        if assigned[seed]:
            seed += 1
            continue
        images = backend.einsum("gij,j->gi", stack, pts[seed])
        hits = tree.query_ball(images, radius)
        orbit: list[int] = []
        in_orbit = np.zeros(n, dtype=bool)
        for image, cand in zip(images, hits):
            best = -1
            best_d = None
            stabilizer = False
            for idx in sorted(cand):
                d = float(np.linalg.norm(pts[idx] - image))
                if d > slack:
                    continue
                if in_orbit[idx]:
                    stabilizer = True
                elif not assigned[idx] and (best_d is None or d < best_d):
                    best = idx
                    best_d = d
            if best >= 0:
                orbit.append(best)
                in_orbit[best] = True
            elif not stabilizer:
                raise GroupError(
                    "group does not act on the configuration "
                    "(orbit image has no matching robot)")
        for idx in orbit:
            assigned[idx] = True
        orbits.append(sorted(orbit))
    return orbits


def orbit_folding(config: Configuration, group: RotationGroup,
                  orbit: list[int], center=None) -> int:
    """Folding ``μ`` of a transitive orbit (Lemma 1): ``|G| / |orbit|``.

    Coincident robots in the orbit count once (the folding is a
    property of positions, not of robots).
    """
    c = np.asarray(center if center is not None else config.center,
                   dtype=float)
    slack = _match_slack(config)
    distinct: list[np.ndarray] = []
    for idx in orbit:
        p = config.points[idx] - c
        if not any(float(np.linalg.norm(p - q)) <= slack for q in distinct):
            distinct.append(p)
    size = len(distinct)
    if group.order % size != 0:
        raise GroupError("orbit size does not divide the group order")
    return group.order // size


def is_transitive(config: Configuration, group: RotationGroup,
                  center=None) -> bool:
    """True if the whole configuration is a single orbit of ``group``."""
    try:
        orbits = orbit_decomposition(config, group, center)
    except GroupError:
        return False
    return len(orbits) == 1


def principal_axis_of_d2(config: Configuration,
                         group: RotationGroup) -> np.ndarray:
    """The recognizable principal axis of a ``D_2`` arrangement.

    Property 1: when ``γ(P) = D_2`` the three 2-fold axes are always
    distinguishable from the point set — otherwise the rotation group
    would be strictly larger.  We pick the axis whose line signature is
    lexicographically smallest (strictly below the other two when the
    arrangement is genuinely ``D_2``).
    """
    if group.spec.kind is not GroupKind.DIHEDRAL or group.spec.param != 2:
        raise GroupError("principal_axis_of_d2 requires a D_2 group")
    rel = config.relative_points()
    mults = [1] * len(rel)
    scored = sorted(
        (line_signature(rel, mults, axis.direction), i)
        for i, axis in enumerate(group.axes)
    )
    return group.axes[scored[0][1]].direction


def oriented_axis_direction(config: Configuration, direction,
                            group: RotationGroup | None = None
                            ) -> np.ndarray | None:
    """Preferred direction along an axis, derived from the point set.

    Returns the direction ``d`` (unit) such that the configuration's
    cylindrical signature about ``d`` dominates the one about ``-d``,
    or None when the two ends are equivalent (some symmetry of ``P``
    reverses the axis — the axis is unoriented in this arrangement).
    """
    d = np.asarray(direction, dtype=float)
    d = d / np.linalg.norm(d)
    grp = group if group is not None else config.rotation_group
    if grp is not None:
        for mat in grp.elements:
            if (float(np.linalg.norm(mat @ d + d))
                    <= DEFAULT_TOL.geometric_slack(1.0)):
                return None  # a group element reverses the axis
    rel = config.relative_points()
    mults = [1] * len(rel)
    plus = cylindrical_signature(rel, mults, d)
    minus = cylindrical_signature(rel, mults, -d)
    if plus == minus:
        return None
    return d if plus > minus else -d
