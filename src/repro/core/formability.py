"""The formability predicate (Theorems 1.1 and 7.1).

FSYNC robots can form target pattern ``F`` from initial configuration
``P`` iff ``ϱ(P) ⊆ ϱ(F)``.  ``P`` must be a set of at least three
points; ``F`` may contain multiplicities (Theorem 7.1 / Definition 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.core.symmetricity import (
    Symmetricity,
    symmetricity,
    symmetricity_of_multiset,
)
from repro.errors import ConfigurationError
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance
from repro.groups.group import GroupSpec

__all__ = ["FormabilityReport", "is_formable", "formability_report"]


@dataclass
class FormabilityReport:
    """Outcome of the formability test with the evidence behind it."""

    formable: bool
    initial_symmetricity: Symmetricity
    target_symmetricity: Symmetricity
    blocking: list[GroupSpec]

    def explain(self) -> str:
        """Human-readable one-paragraph explanation."""
        rho_p = ", ".join(str(s) for s in self.initial_symmetricity.maximal)
        rho_f = ", ".join(str(s) for s in self.target_symmetricity.maximal)
        if self.formable:
            return (f"Formable: varrho(P) = {{{rho_p}}} is contained in "
                    f"varrho(F) = {{{rho_f}}} (Theorem 1.1).")
        blockers = ", ".join(str(s) for s in self.blocking)
        return (f"Unformable: varrho(P) = {{{rho_p}}} contains {blockers} "
                f"which is missing from varrho(F) = {{{rho_f}}}; an "
                "adversarial arrangement of local coordinate systems "
                "preserves that symmetry forever (Lemma 4).")


def formability_report(initial: Configuration, target: Configuration,
                       tol: Tolerance = DEFAULT_TOL) -> FormabilityReport:
    """Evaluate Theorem 1.1's condition and report the evidence.

    Raises
    ------
    ConfigurationError
        If the robot counts differ or ``P`` violates the
        initial-configuration assumptions (n >= 3, no multiplicity).
    """
    initial.require_initial()
    if initial.n != target.n:
        raise ConfigurationError(
            f"robot count mismatch: |P| = {initial.n}, |F| = {target.n}")
    rho_p = symmetricity(initial, tol)
    rho_f = symmetricity_of_multiset(target, tol)
    blocking = sorted(rho_p.specs - rho_f.specs)
    return FormabilityReport(
        formable=not blocking,
        initial_symmetricity=rho_p,
        target_symmetricity=rho_f,
        blocking=blocking,
    )


def is_formable(initial: Configuration, target: Configuration,
                tol: Tolerance = DEFAULT_TOL) -> bool:
    """True iff ``F`` is formable from ``P`` (Theorem 1.1 / 7.1)."""
    return formability_report(initial, target, tol).formable
