"""Configurations: positions of the robot swarm as a point multiset.

A :class:`Configuration` is an immutable snapshot ``P(t)`` of robot
positions observed in some coordinate system.  It caches derived data
(smallest enclosing ball, symmetry report) since detection is the
expensive step everywhere in the library.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.balls import Ball, innermost_empty_ball, smallest_enclosing_ball
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance
from repro.geometry.transforms import Similarity, are_similar
from repro.groups.detection import SymmetryReport
from repro.groups.group import RotationGroup

__all__ = ["Configuration"]


class Configuration:
    """An immutable multiset of robot positions in 3-space."""

    def __init__(self, points, tol: Tolerance = DEFAULT_TOL) -> None:
        pts = [np.asarray(p, dtype=float) for p in points]
        if not pts:
            raise ConfigurationError("a configuration cannot be empty")
        for p in pts:
            if p.shape != (3,):
                raise ConfigurationError("points must be 3-vectors")
            if not np.all(np.isfinite(p)):
                raise ConfigurationError("points must be finite")
        self._points = [p.copy() for p in pts]
        for p in self._points:
            p.setflags(write=False)
        self._tol = tol

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def points(self) -> list[np.ndarray]:
        """The positions (read-only arrays; order is meaningless)."""
        return list(self._points)

    @property
    def n(self) -> int:
        """Number of robots (multiset cardinality)."""
        return len(self._points)

    @property
    def tol(self) -> Tolerance:
        """The tolerance this configuration was built with."""
        return self._tol

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __getitem__(self, index: int) -> np.ndarray:
        return self._points[index]

    def as_array(self) -> np.ndarray:
        """Positions as an ``(n, 3)`` array (a copy)."""
        return np.asarray(self._points, dtype=float)

    # ------------------------------------------------------------------
    # Derived geometry (cached)
    # ------------------------------------------------------------------
    @cached_property
    def ball(self) -> Ball:
        """Smallest enclosing ball ``B(P)``."""
        return smallest_enclosing_ball(self._points, self._tol)

    @property
    def center(self) -> np.ndarray:
        """Center ``b(P)`` of the smallest enclosing ball."""
        return self.ball.center

    @property
    def radius(self) -> float:
        """Radius of ``B(P)``."""
        return self.ball.radius

    @cached_property
    def inner_ball(self) -> Ball:
        """Innermost empty ball ``I(P)``."""
        return innermost_empty_ball(self._points, center=self.center,
                                    tol=self._tol)

    @cached_property
    def symmetry(self) -> SymmetryReport:
        """Full symmetry report (computes ``γ(P)``).

        Served through the congruence cache (:mod:`repro.perf`): the
        scheduler observes each configuration once per robot in
        rotated/scaled local frames, and all those observations share
        one congruence class.  The precomputed enclosing ball is handed
        down so detection never repeats the Welzl pass.
        """
        from repro.perf import cached_symmetry

        return cached_symmetry(self._points, self._tol, ball=self.ball)

    @property
    def rotation_group(self) -> RotationGroup | None:
        """``γ(P)`` when finite, else None (collinear / degenerate)."""
        return self.symmetry.group

    @cached_property
    def has_multiplicity(self) -> bool:
        """True if two robots share a position."""
        return self.symmetry.has_multiplicity

    def require_initial(self) -> "Configuration":
        """Validate the paper's initial-configuration assumptions.

        Initial configurations have ``n >= 3`` robots on distinct
        positions.  Returns self for chaining.
        """
        if self.n < 3:
            raise ConfigurationError(
                f"initial configurations need n >= 3 robots, got {self.n}")
        if self.has_multiplicity:
            raise ConfigurationError(
                "initial configurations must not contain multiplicities")
        return self

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def is_similar_to(self, other, tol: Tolerance | None = None) -> bool:
        """Pattern similarity ``P ≃ F`` (rotation+translation+scaling)."""
        other_pts = other.points if isinstance(other, Configuration) else other
        return are_similar(self._points, list(other_pts),
                           tol or self._tol)

    def transformed(self, similarity: Similarity) -> "Configuration":
        """Image of this configuration under a similarity transform."""
        return Configuration(similarity.apply_all(self._points), self._tol)

    def translated_to_origin(self) -> "Configuration":
        """Copy with ``b(P)`` moved to the origin."""
        c = self.center
        return Configuration([p - c for p in self._points], self._tol)

    def relative_points(self) -> list[np.ndarray]:
        """Positions relative to ``b(P)``."""
        c = self.center
        return [p - c for p in self._points]

    def __repr__(self) -> str:
        return f"Configuration(n={self.n})"
