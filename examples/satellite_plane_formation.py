"""Satellite constellation: maneuver into a common orbital plane.

The plane formation problem (the paper's predecessor, DISC 2015) asks
a swarm to land on one plane without collisions.  This models a small
satellite constellation deployed as a 3D cluster that must reach a
common orbital plane using only relative sensing: solvable exactly
when no 3D rotation group survives in the symmetricity — a swarm
released as a cuboctahedron can be *unable* to agree on a plane.

Run:  python examples/satellite_plane_formation.py
"""

from __future__ import annotations

import numpy as np

from repro import Configuration
from repro.patterns.library import compose_shells, named_pattern
from repro.planeformation import (
    is_coplanar,
    is_plane_formable,
    make_plane_formation_algorithm,
)
from repro.robots import FsyncScheduler, random_frames


def deploy(name: str) -> list[np.ndarray]:
    if name == "double shell":
        return compose_shells(named_pattern("octahedron"),
                              named_pattern("cube"))
    return named_pattern(name)


def main() -> None:
    constellations = ["tetrahedron", "cube", "dodecahedron",
                      "double shell", "cuboctahedron", "icosahedron"]
    for name in constellations:
        points = deploy(name)
        config = Configuration(points)
        solvable = is_plane_formable(config)
        print(f"Deployment '{name}' ({config.n} satellites, "
              f"gamma = {config.rotation_group.spec}):")
        if not solvable:
            print("  UNSOLVABLE — the tetrahedral group survives in "
                  "varrho(P); an adversarial attitude assignment keeps "
                  "the constellation three-dimensional forever.\n")
            continue
        frames = random_frames(config.n, np.random.default_rng(11))
        scheduler = FsyncScheduler(make_plane_formation_algorithm(),
                                   frames)
        result = scheduler.run(
            points, stop_condition=lambda c: is_coplanar(c.points),
            max_rounds=20)
        assert result.reached
        final = result.final
        normal = _plane_normal(final.points)
        print(f"  plane reached in {result.rounds} cycles, "
              f"normal = {np.round(normal, 3)}, "
              f"collision-free: {not final.has_multiplicity}\n")


def _plane_normal(points) -> np.ndarray:
    arr = np.asarray(points)
    centered = arr - arr.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return vt[-1]


if __name__ == "__main__":
    main()
