"""Quickstart: form a regular octagon from a cube (the paper's Figure 1).

Eight anonymous, oblivious robots occupy the vertices of a cube.  The
cube's rotation group is the octahedral group ``O``, but its
*symmetricity* — the symmetry an adversary can make unbreakable via
local coordinate systems — is only ``{D4}``.  A regular octagon admits
``D4`` on free axes, so by Theorem 1.1 the formation is possible; this
script runs the full oblivious FSYNC algorithm and verifies it.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Configuration,
    form_pattern,
    formability_report,
)
from repro.patterns import named_pattern


def main() -> None:
    cube = named_pattern("cube")
    octagon = named_pattern("octagon")

    initial = Configuration(cube)
    target = Configuration(octagon)

    print("Initial configuration: cube (8 robots)")
    print(f"  gamma(P) = {initial.rotation_group.spec}")
    print("Target pattern: regular octagon")
    print(f"  gamma(F) = {target.rotation_group.spec}")

    report = formability_report(initial, target)
    print("\nTheorem 1.1 check:")
    print(" ", report.explain())

    print("\nRunning the oblivious FSYNC algorithm psi_PF "
          "(random local frames)...")
    result = form_pattern(cube, octagon, seed=2026)

    print(f"  formed the octagon in {result.rounds} "
          "Look-Compute-Move cycles")
    for t, config in enumerate(result.configurations):
        spec = (config.rotation_group.spec
                if config.symmetry.kind == "finite"
                else config.symmetry.kind)
        similar = config.is_similar_to(target)
        print(f"  round {t}: gamma = {spec}, similar to F: {similar}")

    final = result.final
    assert final.is_similar_to(target)
    print("\nFinal positions (rounded):")
    for p in final.points:
        print("  ", np.round(p, 3))


if __name__ == "__main__":
    main()
