"""Drone light show: a swarm cycling through 3D formations.

The paper's motivation: swarms of drones that must self-organize
without global coordinates or identifiers.  This script models a
12-drone show that starts from an arbitrary scanned layout and chains
several target formations, re-checking Theorem 1.1 before each leg
(formability depends on the *current* configuration's symmetricity —
a symmetric intermediate pattern can make a later pattern unreachable,
which is exactly what the characterization predicts).

Run:  python examples/drone_light_show.py
"""

from __future__ import annotations

import numpy as np

from repro import Configuration, form_pattern, formability_report
from repro.patterns import antiprism, prism, regular_polygon_pattern
from repro.patterns.library import named_pattern


def scanned_start(n: int, seed: int = 7) -> list[np.ndarray]:
    """The drones' initial, arbitrary (asymmetric) takeoff layout."""
    rng = np.random.default_rng(seed)
    return [rng.normal(scale=5.0, size=3) + np.array([0, 0, 20.0])
            for _ in range(n)]


def main() -> None:
    show = [
        ("hexagonal antiprism", antiprism(6)),
        ("hexagonal prism", prism(6)),
        ("flat 12-ring", regular_polygon_pattern(12)),
        ("icosahedron", named_pattern("icosahedron")),
        ("gather finale", [np.zeros(3)] * 12),
    ]

    points = scanned_start(12)
    print(f"12 drones take off from an arbitrary layout "
          f"(gamma = {Configuration(points).rotation_group.spec})\n")

    for leg, (name, target) in enumerate(show, start=1):
        current = Configuration(points)
        report = formability_report(current, Configuration(target))
        print(f"Leg {leg}: -> {name}")
        print(f"  varrho(P) = "
              f"{[str(s) for s in report.initial_symmetricity.maximal]}, "
              f"varrho(F) = "
              f"{[str(s) for s in report.target_symmetricity.maximal]}")
        if not report.formable:
            print(f"  SKIPPED — {report.explain()}\n")
            continue
        result = form_pattern(points, target, seed=leg)
        points = [p.copy() for p in result.final.points]
        print(f"  formed in {result.rounds} synchronized cycles\n")

    # The flat ring locks in symmetricity {C12, D6}, so the
    # icosahedron leg above is correctly SKIPPED (Theorem 1.1's
    # impossibility direction) — while the gather finale is always
    # reachable, since every surviving group's order divides n.
    print("Post-show check: could the gathered swarm do the "
          "icosahedron now?")
    try:
        formability_report(Configuration(points),
                           Configuration(named_pattern("icosahedron")))
    except Exception as exc:
        # The paper's model: coincident oblivious robots with identical
        # frames can never separate again — gathering is irreversible.
        print(f"  No — {exc} (gathering is a one-way move for "
              "oblivious robots).")


if __name__ == "__main__":
    main()
