"""Symmetry breaking: what ψ_SYM can and cannot do.

The paper's key insight is that robots in 3-space can *lower* the
rotation group of their positions — a cube (group ``O``, order 24)
can be broken down to ``D4`` or further — but never below the
symmetricity ``ϱ(P)`` imposed by an adversarial arrangement of local
coordinate systems.  This script shows both sides:

* under *random* frames, one go-to-center step usually lands at
  ``C1`` (full symmetry breaking);
* under *worst-case symmetric* frames realizing ``σ(P) = G`` for a
  maximal ``G ∈ ϱ(P)``, the group never drops below ``G`` — and
  ``ψ_SYM`` still terminates with ``γ(P') = G`` exactly.

Run:  python examples/symmetry_breaking_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import Configuration, symmetricity
from repro.patterns.library import compose_shells, named_pattern
from repro.robots import FsyncScheduler, random_frames, symmetric_frames
from repro.robots.algorithms import psi_sym
from repro.robots.algorithms.sym import is_sym_terminal

POLYHEDRA = ["tetrahedron", "octahedron", "cube", "cuboctahedron",
             "icosahedron", "dodecahedron", "icosidodecahedron"]


def spec_name(config: Configuration) -> str:
    report = config.symmetry
    return str(report.spec) if report.kind == "finite" else report.kind


def run_sym(points, frames):
    scheduler = FsyncScheduler(psi_sym, frames)
    return scheduler.run(points, stop_condition=is_sym_terminal,
                         max_rounds=20)


def main() -> None:
    print("=== Random local frames (generic symmetry breaking) ===")
    for name in POLYHEDRA:
        points = named_pattern(name)
        config = Configuration(points)
        rho = symmetricity(config)
        frames = random_frames(len(points), np.random.default_rng(1))
        result = run_sym(points, frames)
        print(f"{name:18s} gamma={spec_name(config):3s} "
              f"rho={[str(s) for s in rho.maximal]!s:14s} "
              f"-> gamma'={spec_name(result.final):3s} "
              f"({result.rounds} rounds)")

    print("\n=== Worst-case symmetric frames (the lower bound) ===")
    for name in ["cube", "icosahedron", "cuboctahedron"]:
        points = named_pattern(name)
        config = Configuration(points)
        rho = symmetricity(config)
        for spec in rho.maximal:
            witness = rho.witness(spec)
            frames = symmetric_frames(config, witness,
                                      np.random.default_rng(2))
            result = run_sym(points, frames)
            print(f"{name:16s} sigma(P)={str(spec):3s} "
                  f"-> gamma'={spec_name(result.final):3s} "
                  f"(cannot go lower: Lemma 2)")

    print("\n=== Composite configuration (Figure 26) ===")
    points = compose_shells(named_pattern("octahedron"),
                            named_pattern("cube"))
    config = Configuration(points)
    rho = symmetricity(config)
    print(f"octahedron + cube: gamma={spec_name(config)}, "
          f"rho={[str(s) for s in rho.maximal]}")
    frames = random_frames(len(points), np.random.default_rng(3))
    result = run_sym(points, frames)
    print("round-by-round:")
    for t, cfg in enumerate(result.configurations):
        print(f"  round {t}: gamma = {spec_name(cfg)}")


if __name__ == "__main__":
    main()
