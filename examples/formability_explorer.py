"""Formability explorer: the full Theorem 1.1 matrix over the library.

Prints, for every same-size pair of library patterns, whether the
pattern formation instance is solvable and why — a compact map of the
characterization.  Also demonstrates the 2D corner: the 3D condition
``ϱ(P) ⊆ ϱ(F)`` restricted to coplanar patterns recovers the classic
divisibility flavor of the 2D result.

Run:  python examples/formability_explorer.py
"""

from __future__ import annotations

import numpy as np

from repro import Configuration, formability_report, symmetricity
from repro.patterns import polyhedra
from repro.patterns.library import named_pattern


def build_library() -> dict[str, list[np.ndarray]]:
    rng = np.random.default_rng(0)
    return {
        # 8-robot family
        "cube": named_pattern("cube"),
        "octagon": named_pattern("octagon"),
        "antiprism4": named_pattern("square_antiprism"),
        "prism4": polyhedra.prism(4),
        "generic8": [rng.normal(size=3) for _ in range(8)],
        # 12-robot family
        "icosahedron": named_pattern("icosahedron"),
        "cuboctahedron": named_pattern("cuboctahedron"),
        "12-gon": polyhedra.regular_polygon_pattern(12),
        "prism6": polyhedra.prism(6),
        "antiprism6": polyhedra.antiprism(6),
    }


def main() -> None:
    library = build_library()

    print("Symmetricities:")
    for name, points in library.items():
        rho = symmetricity(Configuration(points))
        gamma = Configuration(points).rotation_group.spec
        print(f"  {name:14s} n={len(points):2d}  gamma={str(gamma):3s}  "
              f"varrho = {{{', '.join(str(s) for s in rho.maximal)}}}")

    by_size: dict[int, list[str]] = {}
    for name, points in library.items():
        by_size.setdefault(len(points), []).append(name)

    for size, names in sorted(by_size.items()):
        print(f"\nFormability matrix (n = {size}; row = from, "
              "col = to; Y/n):")
        width = max(len(n) for n in names)
        print(" " * (width + 2)
              + "  ".join(n[:6].center(6) for n in names))
        for p_name in names:
            cells = []
            for f_name in names:
                report = formability_report(
                    Configuration(library[p_name]),
                    Configuration(library[f_name]))
                cells.append(("Y" if report.formable else "n").center(6))
            print(f"{p_name.ljust(width + 2)}" + "  ".join(cells))

    print("\nWhy is octagon -> cube impossible?")
    report = formability_report(Configuration(library["octagon"]),
                                Configuration(library["cube"]))
    print(" ", report.explain())


if __name__ == "__main__":
    main()
