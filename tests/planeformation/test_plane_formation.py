"""Tests for the plane formation subsystem (DISC 2015)."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.symmetricity import symmetricity
from repro.patterns import polyhedra
from repro.patterns.library import compose_shells, named_pattern
from repro.planeformation import (
    is_coplanar,
    is_plane_formable,
    make_plane_formation_algorithm,
)
from repro.robots.adversary import random_frames, symmetric_frames
from repro.robots.scheduler import FsyncScheduler
from tests.conftest import generic_cloud


def run_plane(points, frames=None, seed=0, max_rounds=20):
    if frames is None:
        frames = random_frames(len(points), np.random.default_rng(seed))
    scheduler = FsyncScheduler(make_plane_formation_algorithm(), frames)
    return scheduler.run(points,
                         stop_condition=lambda c: is_coplanar(c.points),
                         max_rounds=max_rounds)


class TestIsCoplanar:
    def test_planar_points(self):
        assert is_coplanar(polyhedra.regular_polygon_pattern(6))

    def test_three_points_always(self):
        assert is_coplanar(generic_cloud(3, seed=1))

    def test_cube_is_not(self, cube):
        assert not is_coplanar(cube)

    def test_collinear_is_coplanar(self):
        assert is_coplanar([np.array([0, 0, z], dtype=float)
                            for z in range(4)])


class TestCharacterization:
    """DISC 2015: unsolvable iff a 3D group survives in ϱ(P)."""

    @pytest.mark.parametrize("name,expected", [
        ("tetrahedron", True),      # rho = {D2}, 2D
        ("octahedron", True),       # rho = {D3}
        ("cube", True),             # rho = {D4}
        ("cuboctahedron", False),   # T in rho
        ("icosahedron", False),     # T in rho
        ("dodecahedron", True),     # rho = {D5, D2}
        ("icosidodecahedron", True),  # rho = {C5, C3}
    ])
    def test_solvability(self, name, expected):
        config = Configuration(named_pattern(name))
        assert is_plane_formable(config) is expected

    def test_free_orbit_unsolvable(self):
        from repro.groups.catalog import tetrahedral_group
        from repro.patterns.orbits import transitive_set

        pts = transitive_set(tetrahedral_group(), mu=1)
        assert not is_plane_formable(Configuration(pts))

    def test_planar_configurations_trivially_solvable(self):
        config = Configuration(polyhedra.regular_polygon_pattern(8))
        assert is_plane_formable(config)


class TestFormationRuns:
    @pytest.mark.parametrize("name", [
        "tetrahedron", "octahedron", "cube", "dodecahedron",
        "icosidodecahedron"])
    def test_plane_formed(self, name):
        result = run_plane(named_pattern(name))
        assert result.reached
        assert not result.final.has_multiplicity

    def test_prism(self):
        result = run_plane(polyhedra.prism(5))
        assert result.reached
        assert not result.final.has_multiplicity

    def test_pyramid(self):
        result = run_plane(polyhedra.pyramid(4))
        assert result.reached

    def test_composite(self):
        pts = compose_shells(named_pattern("octahedron"),
                             named_pattern("cube"))
        result = run_plane(pts)
        assert result.reached
        assert not result.final.has_multiplicity

    def test_generic_cloud(self):
        result = run_plane(generic_cloud(9, seed=2))
        assert result.reached

    def test_worst_case_frames(self):
        pts = polyhedra.prism(5)
        config = Configuration(pts)
        rho = symmetricity(config)
        witness = rho.witness(rho.maximal[0])
        frames = symmetric_frames(config, witness,
                                  np.random.default_rng(7))
        result = run_plane(pts, frames=frames)
        assert result.reached
        assert not result.final.has_multiplicity

    def test_no_multiplicity_throughout(self):
        result = run_plane(named_pattern("cube"), seed=5)
        for config in result.configurations:
            assert not config.has_multiplicity
