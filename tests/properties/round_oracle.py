"""Reference (pre-batching) round-engine code, frozen as an oracle.

Verbatim copies of the repository's serial Look phase, local-view
computation, orbit ordering, and matching (``M(P, F̃)``) as they stood
before the batched FSYNC round engine: per-robot ``frame.observe``
loops, pure-Python O(n²) nearest/collapse scans, and no congruence
caching of orbit or destination data.  The randomized equivalence
suite replays hundreds of configurations through both this module and
the production pipeline and requires matching answers.  Do not
"improve" this file — its value is that it does not share code paths
with what it checks.

Seeding note: the equivalence suites draw their random configurations
from explicit ``default_rng(case_seed)`` generators, so they were
unaffected when the experiment drivers switched from the colliding
``default_rng(seed + t)`` per-trial convention to
``SeedSequence(seed).spawn(trials)`` child streams.  The oracle itself
is pure (no RNG state); any suite comparing driver *rows* across that
change must regenerate its expectations, not reuse rows recorded under
the old convention.
"""

from __future__ import annotations

import numpy as np

from repro.core.configuration import Configuration
from repro.errors import ConfigurationError, MatchingError, SimulationError
from repro.geometry.tolerance import canonical_round
from repro.groups.group import RotationGroup
from repro.robots.model import Observation

_DECIMALS = 6


def _round(x: float) -> float:
    return float(canonical_round(x, _DECIMALS))


# ----------------------------------------------------------------------
# Serial Look phase (the pre-einsum FsyncScheduler.step)
# ----------------------------------------------------------------------
def oracle_step(algorithm, frames, points, target=None,
                movement=None) -> list[np.ndarray]:
    """One FSYNC cycle with the original per-robot observe loop."""
    from repro.robots.movement import RigidMovement

    movement = movement if movement is not None else RigidMovement()
    if len(points) != len(frames):
        raise SimulationError("one frame per robot is required")
    destinations = []
    for i, (pos, frame) in enumerate(zip(points, frames)):
        local = [frame.observe(p, pos) for p in points]
        observation = Observation(local, self_index=i, target=target)
        d = np.asarray(algorithm(observation), dtype=float)
        if d.shape != (3,) or not np.all(np.isfinite(d)):
            raise SimulationError("algorithm must return a finite 3-vector")
        destinations.append(movement.execute(pos, frame.to_world(d, pos)))
    return destinations


# ----------------------------------------------------------------------
# Sequential local views (pre-vectorization core.local_views)
# ----------------------------------------------------------------------
def oracle_local_view(config: Configuration, index: int) -> tuple:
    cache = getattr(config, "_oracle_view_cache", None)
    if cache is None:
        cache = {}
        config._oracle_view_cache = cache
    cached = cache.get(index)
    if cached is not None:
        return cached
    view = _compute_local_view(config, index)
    cache[index] = view
    return view


def _compute_local_view(config: Configuration, index: int) -> tuple:
    rel = config.relative_points()
    scale = max(config.radius, 1e-300)
    radii = [float(np.linalg.norm(p)) / scale for p in rel]
    slack = 1e-6
    own_r = radii[index]
    if own_r <= slack:
        return ((-1.0,), tuple(sorted(_round(r) for r in radii)))
    axis = rel[index] / (own_r * scale)

    inner_r = config.inner_ball.radius / scale
    candidates = []
    best_gap = None
    for j, p in enumerate(rel):
        perp = p / scale - float(np.dot(p / scale, axis)) * axis
        perp_len = float(np.linalg.norm(perp))
        if perp_len <= slack:
            continue
        gap = abs(radii[j] - inner_r)
        if best_gap is None or gap < best_gap - slack:
            best_gap = gap
            candidates = [(j, perp / perp_len)]
        elif abs(gap - best_gap) <= slack:
            candidates.append((j, perp / perp_len))
    if not candidates:
        heights = sorted(_round(float(np.dot(p, axis)) / scale) for p in rel)
        return ((_round(own_r),), tuple(heights))

    best_view: tuple | None = None
    for meridian_index, u in candidates:
        v = np.cross(axis, u)
        entries = []
        for j, p in enumerate(rel):
            r = radii[j]
            if r <= slack:
                entries.append((0.0, 0.0, 0.0))
                continue
            unit = p / (r * scale)
            height = float(np.clip(np.dot(unit, axis), -1.0, 1.0))
            latitude = float(np.arcsin(height))
            perp = unit - height * axis
            perp_len = float(np.linalg.norm(perp))
            if perp_len <= slack:
                longitude = 0.0
            else:
                longitude = float(np.arctan2(np.dot(perp, v),
                                             np.dot(perp, u)))
                longitude %= 2.0 * np.pi
                if longitude >= 2.0 * np.pi - 5e-7:
                    longitude = 0.0
            entries.append((_round(r), _round(longitude), _round(latitude)))
        own = entries[index]
        meridian = entries[meridian_index]
        rest = sorted(entries[j] for j in range(len(entries))
                      if j not in (index, meridian_index))
        view = (own, meridian, tuple(rest))
        if best_view is None or view < best_view:
            best_view = view
    return best_view


def oracle_ordered_orbits(config: Configuration, group: RotationGroup,
                          orbits=None, center=None) -> list[list[int]]:
    from repro.core.decomposition import orbit_decomposition

    if orbits is None:
        orbits = orbit_decomposition(config, group, center)
    c = np.asarray(center if center is not None else config.center,
                   dtype=float)
    scale = max(config.radius, 1e-300)

    by_radius: dict[float, list[list[int]]] = {}
    for orbit in orbits:
        radius = _round(
            float(np.linalg.norm(config.points[orbit[0]] - c)) / scale)
        by_radius.setdefault(radius, []).append(orbit)
    result: list[list[int]] = []
    for radius in sorted(by_radius):
        tied = by_radius[radius]
        if len(tied) == 1:
            result.extend(tied)
            continue
        keyed = sorted(
            (min(oracle_local_view(config, j) for j in orbit), orbit)
            for orbit in tied)
        for (view_a, _), (view_b, _) in zip(keyed, keyed[1:]):
            if view_a == view_b:
                raise ConfigurationError(
                    "orbits are not totally ordered (multiset ambiguity)")
        result.extend(orbit for _, orbit in keyed)
    return result


# ----------------------------------------------------------------------
# Sequential matching M(P, F̃) (pre-kernel robots.algorithms.matching)
# ----------------------------------------------------------------------
def oracle_match(config: Configuration, embedded) -> list[np.ndarray]:
    targets = [np.asarray(p, dtype=float) for p in embedded]
    if len(targets) != config.n:
        raise MatchingError("embedded pattern size must match the swarm")
    slack = 1e-6 * max(config.radius, 1.0)

    direct = _direct_cases(config, targets, slack)
    if direct is not None:
        return direct

    group = config.rotation_group
    if group is None:
        raise MatchingError("matching requires a finite rotation group")

    p_orbits = oracle_ordered_orbits(config, group)
    positions, multiplicities = _collapse(targets, slack)
    f_orbits = _target_position_orbits(config, group, positions,
                                       multiplicities, slack)

    assignments = _assign_orbits(config, group, p_orbits, f_orbits)
    destinations: list[np.ndarray | None] = [None] * config.n
    for orbit, (orbit_positions, per_position) in assignments:
        _match_within_orbit(config, group, orbit, orbit_positions,
                            per_position, destinations, slack)
    assert all(d is not None for d in destinations)
    return destinations  # type: ignore[return-value]


def _direct_cases(config, targets, slack) -> list[np.ndarray] | None:
    distinct, _ = _collapse(targets, slack)
    if len(distinct) == 1:
        return [distinct[0].copy() for _ in range(config.n)]
    if len(distinct) == config.n and _same_point_set(
            config.points, targets, slack):
        return [p.copy() for p in config.points]
    return None


def _same_point_set(a, b, slack) -> bool:
    remaining = [np.asarray(q, dtype=float) for q in b]
    for p in a:
        hit = None
        for i, q in enumerate(remaining):
            if float(np.linalg.norm(p - q)) <= slack:
                hit = i
                break
        if hit is None:
            return False
        remaining.pop(hit)
    return True


def _collapse(points, slack):
    distinct: list[np.ndarray] = []
    multiplicities: list[int] = []
    for p in points:
        for i, q in enumerate(distinct):
            if float(np.linalg.norm(p - q)) <= slack:
                multiplicities[i] += 1
                break
        else:
            distinct.append(p)
            multiplicities.append(1)
    return distinct, multiplicities


def _target_position_orbits(config, group: RotationGroup, positions,
                            multiplicities, slack):
    center = config.center
    unassigned = list(range(len(positions)))
    orbits: list[list[int]] = []
    while unassigned:
        seed = unassigned[0]
        members: list[int] = []
        for mat in group.elements:
            image = center + mat @ (positions[seed] - center)
            idx = _find_index(positions, image, slack)
            if idx is None:
                raise MatchingError(
                    "gamma(P) does not act on the embedded pattern")
            if idx not in members:
                members.append(idx)
        if multiplicities[seed] != multiplicities[members[0]]:
            raise MatchingError("inconsistent multiplicities on an orbit")
        for idx in members:
            if idx in unassigned:
                unassigned.remove(idx)
        orbits.append(sorted(members))

    entries = []
    for orbit in orbits:
        stabilizer = group.order // len(orbit)
        mult = multiplicities[orbit[0]]
        if mult % stabilizer != 0:
            raise MatchingError(
                "multiplicity not divisible by the stabilizer size "
                "(embedded pattern violates Definition 6)")
        capacity = mult // stabilizer
        entries.append({
            "positions": [positions[i] for i in orbit],
            "per_position": stabilizer,
            "capacity": capacity,
        })
    return _order_target_orbits(config, entries)


def _order_target_orbits(config, entries):
    f_config = Configuration([p for e in entries for p in e["positions"]])
    views: dict[int, tuple] = {}
    flat = 0
    for ei, e in enumerate(entries):
        best = None
        for _ in e["positions"]:
            v = oracle_local_view(f_config, flat)
            best = v if best is None or v < best else best
            flat += 1
        views[ei] = best

    center = config.center
    scale = max(config.radius, 1e-300)

    def key(ei):
        e = entries[ei]
        radius = float(canonical_round(
            np.linalg.norm(e["positions"][0] - center) / scale, 6))
        profile = sorted(
            tuple(sorted(float(canonical_round(
                np.linalg.norm(f - p) / scale, 6))
                for p in config.points))
            for f in e["positions"])
        return (radius, views[ei], tuple(profile))

    order = sorted(range(len(entries)), key=key)
    keys = [key(ei) for ei in order]
    resolved: list[int] = []
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and keys[j + 1] == keys[i]:
            j += 1
        if j == i:
            resolved.append(order[i])
        else:
            tied = order[i:j + 1]
            chiral = sorted(
                (_orbit_chiral_key(config, entries[ei]["positions"]), ei)
                for ei in tied)
            for (a, _), (b, _) in zip(chiral, chiral[1:]):
                if a == b:
                    raise MatchingError(
                        "embedded pattern orbits are not totally ordered")
            resolved.extend(ei for _, ei in chiral)
        i = j + 1
    return [entries[ei] for ei in resolved]


def _orbit_chiral_key(config, positions) -> tuple:
    center = config.center
    scale = max(config.radius, 1e-300)
    rel_p = [(p - center) / scale for p in config.points]
    radii = [float(canonical_round(np.linalg.norm(r), 6)) for r in rel_p]
    profile = []
    for f in positions:
        rel_f = (f - center) / scale
        entries = []
        for i, p in enumerate(rel_p):
            for j in range(i + 1, len(rel_p)):
                q = rel_p[j]
                key_i = (float(canonical_round(
                    np.linalg.norm(rel_f - p), 6)), radii[i])
                key_j = (float(canonical_round(
                    np.linalg.norm(rel_f - q), 6)), radii[j])
                if key_i < key_j:
                    first, second, ka, kb = p, q, key_i, key_j
                else:
                    first, second, ka, kb = q, p, key_j, key_i
                det = float(np.linalg.det(
                    np.column_stack([rel_f, first, second])))
                if key_i == key_j:
                    det = abs(det)
                entries.append((ka, kb, float(canonical_round(det, 5))))
        entries.sort()
        profile.append(tuple(entries))
    profile.sort()
    return tuple(profile)


def _find_index(points, image, slack) -> int | None:
    for i, p in enumerate(points):
        if float(np.linalg.norm(p - image)) <= 10 * slack:
            return i
    return None


def _assign_orbits(config, group, p_orbits, f_entries):
    slots = []
    for entry in f_entries:
        for _ in range(entry["capacity"]):
            slots.append((entry["positions"], entry["per_position"]))
    if len(slots) != len(p_orbits):
        raise MatchingError(
            f"orbit count mismatch: {len(p_orbits)} robot orbits vs "
            f"{len(slots)} target capacity slots")
    for orbit, slot in zip(p_orbits, slots):
        expected = slot[1] * len(slot[0])
        if len(orbit) != expected:
            raise MatchingError(
                "orbit sizes do not line up with target capacities")
    return list(zip(p_orbits, slots))


def _match_within_orbit(config, group, orbit, positions, per_position,
                        destinations, slack):
    center = config.center
    nearest: dict[int, list[int]] = {}
    for robot in orbit:
        p = config.points[robot]
        dists = [float(np.linalg.norm(p - f)) for f in positions]
        d_min = min(dists)
        ties = [j for j, d in enumerate(dists) if d <= d_min + 10 * slack]
        nearest[robot] = ties

    chosen: dict[int, int] = {}
    for robot in orbit:
        ties = nearest[robot]
        if len(ties) == 1:
            chosen[robot] = ties[0]
        elif len(ties) == 2:
            chosen[robot] = _chirality_pick(
                group,
                config.points[robot] - center,
                positions[ties[0]] - center,
                positions[ties[1]] - center, ties, slack)
        else:
            raise MatchingError(
                f"robot has {len(ties)} nearest targets; Lemma 14 "
                "guarantees at most two for free orbits")

    counts = [0] * len(positions)
    for robot in orbit:
        counts[chosen[robot]] += 1
    if any(c != per_position for c in counts):
        raise MatchingError(
            "nearest matching is unbalanced; chirality rule failed "
            f"(counts {counts}, expected {per_position} each)")
    for robot in orbit:
        destinations[robot] = positions[chosen[robot]].copy()


def _chirality_pick(group, p_rel, f0_rel, f1_rel, ties, slack):
    det = float(np.linalg.det(np.column_stack([p_rel, f0_rel, f1_rel])))
    scale = (np.linalg.norm(p_rel) * np.linalg.norm(f0_rel)
             * np.linalg.norm(f1_rel))
    if abs(det) > 1e-7 * max(scale, 1e-300):
        return ties[0] if det > 0 else ties[1]

    from repro.geometry.rotations import rotation_angle, rotation_axis

    picks = set()
    for mat in group.elements:
        if float(np.linalg.norm(mat @ f0_rel - f1_rel)) > 10 * slack:
            continue
        if rotation_angle(mat) < 1e-9:
            continue
        axis = rotation_axis(mat)
        s0 = float(np.linalg.det(np.column_stack([axis, p_rel, f0_rel])))
        s1 = float(np.linalg.det(np.column_stack([axis, p_rel, f1_rel])))
        if abs(s0 - s1) <= 1e-9 * max(scale, 1e-300):
            continue
        picks.add(ties[0] if s0 > s1 else ties[1])
    if len(picks) != 1:
        raise MatchingError(
            "degenerate chirality tie between nearest targets")
    return picks.pop()
